"""PEP 517 backend shim for fully offline installs.

``pip install`` builds packages in an isolated environment and normally
downloads ``setuptools``/``wheel`` into it.  This sandbox has no network,
so the shim re-exposes the interpreter's ambient site-packages (where
setuptools already lives) inside the isolated environment and then
delegates everything to ``setuptools.build_meta``.

With network access this shim is equivalent to using setuptools directly.
"""

import os
import sys
import sysconfig

for _path in {sysconfig.get_path("purelib"), sysconfig.get_path("platlib")}:
    if _path and os.path.isdir(_path) and _path not in sys.path:
        sys.path.append(_path)

from setuptools.build_meta import *  # noqa: F401,F403,E402
from setuptools import build_meta as _backend  # noqa: E402


def _supported_features():  # pragma: no cover - pip capability probe
    return getattr(_backend, "_supported_features", lambda: [])()


def get_requires_for_build_wheel(config_settings=None):
    """No dynamic build requirements: wheel is on the ambient path."""
    return []


def get_requires_for_build_editable(config_settings=None):
    """No dynamic build requirements: wheel is on the ambient path."""
    return []


def get_requires_for_build_sdist(config_settings=None):
    """No dynamic build requirements."""
    return []

"""Shared fixtures and plan generators for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.authorization import ANY, Authorization, Policy
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import Relation, Schema
from repro.engine.table import Table
from repro.paper_example import RunningExample, build_running_example


@pytest.fixture()
def example() -> RunningExample:
    """The paper's running example (fresh per test)."""
    return build_running_example()


@pytest.fixture()
def example_tables() -> dict[str, Table]:
    """Concrete rows for Hosp and Ins matching the running example."""
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        ("s1", 1980, "stroke", "tpa"),
        ("s2", 1975, "stroke", "tpa"),
        ("s3", 1990, "flu", "rest"),
        ("s4", 1960, "stroke", "surgery"),
        ("s5", 1955, "stroke", "surgery"),
    ])
    ins = Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 60.0), ("s5", 50.0),
    ])
    return {"Hosp": hosp, "Ins": ins}


# ---------------------------------------------------------------------------
# Random plan/policy generation (shared by the property-based tests).
# ---------------------------------------------------------------------------

SUBJECT_NAMES = ("U", "S1", "S2", "S3")


class RandomScenario:
    """A randomly generated (schema, plan, policy, subjects) bundle."""

    def __init__(self, seed: int, relations: int = 3,
                 attrs_per_relation: int = 3) -> None:
        self.rng = random.Random(seed)
        self.schema = Schema()
        self.relations = []
        for r in range(relations):
            relation = self.schema.add(Relation(
                f"R{r}",
                [f"a{r}_{i}" for i in range(attrs_per_relation)],
                cardinality=100 * (r + 1),
            ))
            self.relations.append(relation)
        self.plan = QueryPlan(self._build_tree())
        self.policy = self._build_policy()
        self.subjects = list(SUBJECT_NAMES)

    # -- plan ------------------------------------------------------------
    def _leaf(self, relation: Relation) -> PlanNode:
        names = list(relation.attribute_names)
        keep = self.rng.sample(names, k=self.rng.randint(2, len(names)))
        return BaseRelationNode(relation, keep)

    def _maybe_select(self, node: PlanNode,
                      attrs: list[str]) -> tuple[PlanNode, list[str]]:
        choice = self.rng.random()
        if choice < 0.4 and attrs:
            attribute = self.rng.choice(attrs)
            op = self.rng.choice(
                [ComparisonOp.EQ, ComparisonOp.GT, ComparisonOp.LE]
            )
            node = Selection(
                node, AttributeValuePredicate(attribute, op, 7)
            )
        elif choice < 0.6 and len(attrs) >= 2:
            first, second = self.rng.sample(attrs, 2)
            node = Selection(node, AttributeComparisonPredicate(
                first, ComparisonOp.EQ, second))
        return node, attrs

    def _build_tree(self) -> PlanNode:
        subtrees: list[tuple[PlanNode, list[str]]] = []
        for relation in self.relations:
            leaf = self._leaf(relation)
            attrs = sorted(leaf.projection)
            node, attrs = self._maybe_select(leaf, attrs)
            subtrees.append((node, attrs))
        current, current_attrs = subtrees[0]
        for node, attrs in subtrees[1:]:
            left_key = self.rng.choice(current_attrs)
            right_key = self.rng.choice(attrs)
            current = Join(current, node, equals(left_key, right_key))
            current_attrs = current_attrs + attrs
        if self.rng.random() < 0.5 and len(current_attrs) >= 2:
            group = [current_attrs[0]]
            target = current_attrs[-1]
            if target not in group:
                if self.rng.random() < 0.8:
                    function = self.rng.choice(
                        [AggregateFunction.SUM, AggregateFunction.AVG,
                         AggregateFunction.MIN])
                    aggregate = Aggregate(function, target,
                                          alias="agg_out")
                else:
                    aggregate = Aggregate(AggregateFunction.COUNT,
                                          alias="agg_out")
                current = GroupBy(current, group, aggregate)
        elif self.rng.random() < 0.5 and len(current_attrs) >= 2:
            keep = self.rng.sample(
                current_attrs, k=self.rng.randint(1, len(current_attrs))
            )
            current = Projection(current, keep)
        return current

    # -- policy ----------------------------------------------------------
    def _build_policy(self) -> Policy:
        policy = Policy(self.schema)
        for relation in self.relations:
            names = list(relation.attribute_names)
            policy.grant(Authorization(relation, names, (), "U"))
            for subject in ("S1", "S2", "S3"):
                split = self.rng.randint(0, len(names))
                shuffled = names[:]
                self.rng.shuffle(shuffled)
                plaintext = shuffled[:split]
                encrypted_count = self.rng.randint(
                    0, len(names) - split
                )
                encrypted = shuffled[split:split + encrypted_count]
                if plaintext or encrypted:
                    policy.grant(Authorization(
                        relation, plaintext, encrypted, subject
                    ))
            if self.rng.random() < 0.3:
                policy.grant(Authorization(relation, (), names, ANY))
        return policy


@pytest.fixture(params=range(6))
def random_scenario(request) -> RandomScenario:
    """Six deterministic random scenarios (seeded)."""
    return RandomScenario(seed=request.param)

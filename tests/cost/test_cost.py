"""Pricing, network, estimation, and the §7 cost model."""

import pytest

from repro.core.extension import minimally_extend
from repro.core.requirements import EncryptionScheme, chosen_schemes
from repro.cost.estimator import PlanEstimator
from repro.cost.factors import encrypted_width
from repro.cost.model import CostModel, normalized_costs
from repro.cost.network import NetworkTopology
from repro.cost.pricing import (
    AUTHORITY_CPU_MULTIPLIER,
    PriceList,
    ResourceRates,
    USER_CPU_MULTIPLIER,
    provider_rates,
)
from repro.exceptions import EstimationError


class TestPricing:
    def test_paper_ratios(self, example):
        prices = PriceList.from_subjects(example.subjects)
        base = prices.rates("X").cpu_usd_per_second
        assert prices.rates("U").cpu_usd_per_second \
            == pytest.approx(base * USER_CPU_MULTIPLIER)
        assert prices.rates("H").cpu_usd_per_second \
            == pytest.approx(base * AUTHORITY_CPU_MULTIPLIER)

    def test_provider_spread(self):
        prices = PriceList.paper_defaults(
            ["P1", "P2"], ["A"], "U", provider_spread=0.5)
        assert prices.rates("P2").cpu_usd_per_second \
            == pytest.approx(prices.rates("P1").cpu_usd_per_second * 1.5)

    def test_synthetic_authority_fallback(self):
        prices = PriceList.paper_defaults(["P1"], [], "U")
        rate = prices.rates("authority:Hosp").cpu_usd_per_second
        assert rate == pytest.approx(
            provider_rates().cpu_usd_per_second
            * AUTHORITY_CPU_MULTIPLIER)

    def test_unknown_subject_without_default(self):
        prices = PriceList({"A": provider_rates()})
        with pytest.raises(EstimationError):
            prices.rates("B")

    def test_negative_rates_rejected(self):
        with pytest.raises(EstimationError):
            ResourceRates(cpu_usd_per_second=-1.0)

    def test_requires_exactly_one_user(self, example):
        with pytest.raises(EstimationError):
            PriceList.from_subjects(
                [s for s in example.subjects if s.name != "U"])


class TestNetwork:
    def test_paper_topology(self):
        topology = NetworkTopology.paper_defaults("U")
        assert topology.bandwidth_bps("H", "X") == 10_000_000_000
        assert topology.bandwidth_bps("U", "X") == 100_000_000
        assert topology.transfer_seconds(0, "H", "X") == 0.0
        assert topology.transfer_seconds(1000, "H", "H") == 0.0

    def test_transfer_time_scales(self):
        topology = NetworkTopology.paper_defaults("U")
        slow = topology.transfer_seconds(10**9, "U", "X")
        fast = topology.transfer_seconds(10**9, "H", "X")
        assert slow == pytest.approx(fast * 100)

    def test_override(self):
        topology = NetworkTopology.paper_defaults("U").with_override(
            "H", "X", 1_000.0)
        assert topology.bandwidth_bps("X", "H") == 1_000.0

    def test_negative_volume_rejected(self):
        with pytest.raises(EstimationError):
            NetworkTopology.paper_defaults("U").transfer_seconds(
                -1, "H", "X")


class TestEstimator:
    def test_leaf_estimates(self, example):
        estimator = PlanEstimator()
        estimates = estimator.estimate(example.plan)
        hosp = estimates[id(example.hosp_leaf)]
        assert hosp.rows == 10_000
        assert hosp.row_bytes > 0

    def test_selection_reduces_rows(self, example):
        estimates = PlanEstimator().estimate(example.plan)
        assert estimates[id(example.selection)].rows \
            < estimates[id(example.hosp_leaf)].rows

    def test_group_by_rows_bounded_by_groups(self, example):
        estimates = PlanEstimator().estimate(example.plan)
        group = estimates[id(example.group_by)]
        join = estimates[id(example.join)]
        assert group.rows <= join.rows

    def test_encrypted_widths_tracked(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        schemes = chosen_schemes(example.plan)
        estimates = PlanEstimator(schemes).estimate(extended.plan)
        root = estimates[id(extended.plan.root)]
        # P decrypted for the having: plaintext width again.
        assert root.scheme.get("P") is None

    def test_encrypted_width_function(self):
        assert encrypted_width(EncryptionScheme.DETERMINISTIC, 4) == 16
        assert encrypted_width(EncryptionScheme.DETERMINISTIC, 20) == 32
        assert encrypted_width(EncryptionScheme.OPE, 8) == 8
        assert encrypted_width(EncryptionScheme.PAILLIER, 8) == 128
        assert encrypted_width(EncryptionScheme.RANDOMIZED, 4) == 28

    def test_bytes_if_encrypted_grows(self, example):
        estimates = PlanEstimator().estimate(example.plan)
        join = estimates[id(example.join)]
        plain = join.output_bytes
        inflated = join.bytes_if_encrypted(
            frozenset({"S", "C"}),
            {"S": EncryptionScheme.RANDOMIZED,
             "C": EncryptionScheme.RANDOMIZED},
        )
        assert inflated > plain  # randomized adds an IV per value


class TestCostModel:
    def test_breakdown_components(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        prices = PriceList.from_subjects(example.subjects)
        model = CostModel(prices, NetworkTopology.paper_defaults("U"))
        breakdown = model.extended_plan_cost(extended, "U", example.owners)
        assert breakdown.total_usd == pytest.approx(
            breakdown.cpu_usd + breakdown.io_usd + breakdown.net_usd)
        assert breakdown.elapsed_seconds > 0
        assert set(breakdown.per_subject_usd) >= {"H", "I", "X", "Y"}

    def test_transfers_charged_to_sender(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        prices = PriceList.from_subjects(example.subjects)
        model = CostModel(prices, NetworkTopology.paper_defaults("U"))
        breakdown = model.extended_plan_cost(extended, "U", example.owners)
        transfer_labels = [l for l, _, _ in breakdown.per_node if "→" in l]
        assert transfer_labels  # at least H→X, I→X, X→Y, Y→U

    def test_normalized_costs(self):
        from repro.cost.model import CostBreakdown

        a, b = CostBreakdown(), CostBreakdown()
        a.charge("s", "x", cpu=2.0)
        b.charge("s", "x", cpu=1.0)
        ratios = normalized_costs({"UA": a, "enc": b}, "UA")
        assert ratios == {"UA": 1.0, "enc": 0.5}
        with pytest.raises(EstimationError):
            normalized_costs({"enc": b}, "UA")

"""Run the doctests embedded in the library's docstrings — and keep
the prose documentation honest too.

Every public-API example in a docstring is executable documentation.
The same standard applies one level up: the README quickstart snippet
must run, and every module path named in ``docs/architecture.md`` must
import, so the docs cannot drift from the code without failing CI.
"""

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

MODULES = [
    "repro.core.attrsets",
    "repro.core.authorization",
    "repro.core.equivalence",
    "repro.core.keys",
    "repro.core.plan",
    "repro.core.plancache",
    "repro.core.predicates",
    "repro.core.profile",
    "repro.core.requirements",
    "repro.core.visibility",
    "repro.cost.metering",
    "repro.cost.pricing",
    "repro.crypto.keymanager",
    "repro.crypto.ope",
    "repro.crypto.paillier",
    "repro.crypto.symmetric",
    "repro.engine.table",
    "repro.gateway.admission",
    "repro.gateway.gateway",
    "repro.gateway.quotas",
    "repro.obs.metrics",
    "repro.sql.parser",
    "repro.sql.planner",
    "repro.sql.tokenizer",
    "repro.tpch.datagen",
    "repro.tpch.scenarios",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"


def test_readme_quickstart_runs():
    """The README's first ```python fence is a working program."""
    readme = (REPO_ROOT / "README.md").read_text()
    snippets = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
    assert snippets, "README.md has no ```python quickstart snippet"
    namespace = {}
    exec(compile(snippets[0], "README.md:quickstart", "exec"), namespace)
    outcome = namespace["outcome"]
    assert sorted(outcome.result.rows) == [("tpa", 120.0)]
    assert outcome.cost_usd > 0


def _documented_modules():
    """Every `repro.x.y` path in backticks in docs/architecture.md."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    names = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
    # The data-flow diagram names modules without backticks too.
    names.update(re.findall(r"(repro(?:\.\w+)+)", text))
    return sorted(names)


@pytest.mark.parametrize("dotted", _documented_modules())
def test_architecture_doc_names_importable_modules(dotted):
    """docs/architecture.md may only name modules (or module attributes)
    that actually exist — renames must update the doc."""
    try:
        importlib.import_module(dotted)
        return
    except ImportError:
        pass
    parent, _, attribute = dotted.rpartition(".")
    module = importlib.import_module(parent)  # raises on drift
    assert hasattr(module, attribute), (
        f"docs/architecture.md names {dotted!r}, but {parent!r} has no "
        f"attribute {attribute!r}")

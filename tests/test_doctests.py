"""Run the doctests embedded in the library's docstrings.

Every public-API example in a docstring is executable documentation;
this module keeps them honest.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.attrsets",
    "repro.core.authorization",
    "repro.core.equivalence",
    "repro.core.keys",
    "repro.core.plan",
    "repro.core.plancache",
    "repro.core.predicates",
    "repro.core.profile",
    "repro.core.requirements",
    "repro.core.visibility",
    "repro.cost.pricing",
    "repro.crypto.keymanager",
    "repro.crypto.ope",
    "repro.crypto.paillier",
    "repro.crypto.symmetric",
    "repro.engine.table",
    "repro.sql.parser",
    "repro.sql.planner",
    "repro.sql.tokenizer",
    "repro.tpch.datagen",
    "repro.tpch.scenarios",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"

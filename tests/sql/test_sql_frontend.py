"""SQL tokenizer, parser, and planner."""

from datetime import date

import pytest

from repro.core.operators import (
    GroupBy,
    Join,
    Projection,
    Selection,
    BaseRelationNode,
)
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
)
from repro.exceptions import SqlAnalysisError, SqlSyntaxError
from repro.paper_example import build_schema
from repro.sql import parse_sql, plan_query, tokenize
from repro.sql.tokenizer import TokenType, unquote_string


class TestTokenizer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT T FROM Hosp")
        assert [t.type for t in tokens[:3]] == [
            TokenType.KEYWORD, TokenType.IDENTIFIER, TokenType.KEYWORD,
        ]
        assert tokens[0].value == "select"  # case-folded

    def test_numbers_strings_operators(self):
        tokens = tokenize("x >= 10.5 and y <> 'a''b'")
        values = [t.value for t in tokens[:-1]]
        assert "10.5" in values and ">=" in values and "<>" in values
        assert unquote_string("'a''b'") == "a'b"

    def test_comments_and_newlines(self):
        tokens = tokenize("select a -- note\nfrom R")
        assert [t.value for t in tokens[:-1]] == [
            "select", "a", "from", "R",
        ]
        assert tokens[2].line == 2

    def test_bad_character_reports_position(self):
        with pytest.raises(SqlSyntaxError) as error:
            tokenize("select @")
        assert error.value.column == 8

    def test_bang_equals_normalised(self):
        tokens = tokenize("a != 1")
        assert tokens[1].value == "<>"


class TestParser:
    def test_running_example_query(self):
        query = parse_sql(
            "select T, avg(P) from Hosp join Ins on S=C "
            "where D='stroke' group by T having avg(P)>100")
        assert len(query.select) == 2
        assert query.select[1].is_aggregate
        assert query.from_table.name == "Hosp"
        assert query.joins[0].table.name == "Ins"
        assert len(query.where) == 1 and len(query.having) == 1

    def test_in_between_like_date(self):
        query = parse_sql(
            "select a from R where a in (1, 2) and b between 3 and 4 "
            "and c like 'x%' and d >= date '1994-01-01'")
        ops = [c.op for c in query.where]
        assert ComparisonOp.IN in ops and ComparisonOp.LIKE in ops
        literal = query.where[-1].right
        assert literal.value == date(1994, 1, 1)

    def test_count_star_gets_default_alias(self):
        query = parse_sql("select count(*) from R group by a")
        call = query.select[0].expression
        assert call.alias == "count"

    def test_syntax_errors(self):
        for bad in ("select", "select a from", "select a from R where",
                    "select a,, b from R", "select a from R extra"):
            with pytest.raises(SqlSyntaxError):
                parse_sql(bad)

    def test_qualified_columns(self):
        query = parse_sql("select Hosp.T from Hosp")
        assert query.select[0].expression.table == "Hosp"

    def test_str_roundtrips_informally(self):
        query = parse_sql("select T from Hosp where D = 'x'")
        assert "select T" in str(query) and "where" in str(query)


class TestPlanner:
    def test_running_example_plan_shape(self):
        plan = plan_query(
            "select T, avg(P) from Hosp join Ins on S=C "
            "where D='stroke' group by T having avg(P)>100",
            build_schema())
        labels = [n.label() for n in plan.postorder()]
        # The paper's Figure 1(a) operators, in order (the planner may
        # interleave pruning projections that drop consumed attributes).
        core = [l for l in labels if not l.startswith("π[") or "Hosp" in l]
        assert core == [
            "π[S,D,T] Hosp(S,D,T)",
            "σ[D='stroke']",
            "Ins(C,P)",
            "⋈[S=C]",
            "γ[T; avg(P)]",
            "σ[P>100]",
        ]
        # D is consumed by the selection and pruned before the join.
        join = next(n for n in plan.postorder() if isinstance(n, Join))
        assert "D" not in plan.profiles()[join].visible

    def test_projection_pushdown_into_leaves(self):
        plan = plan_query("select T from Hosp where D='x'", build_schema())
        (leaf,) = plan.leaves()
        assert leaf.projection == frozenset({"T", "D"})

    def test_selection_pushed_below_join(self):
        plan = plan_query(
            "select T, P from Hosp join Ins on S=C where D='x'",
            build_schema())
        join = plan.root if isinstance(plan.root, Join) else \
            plan.root.left
        assert isinstance(join, Join)
        assert isinstance(join.left, (Selection, Projection))

    def test_where_join_condition_adopted(self):
        plan = plan_query(
            "select T, P from Hosp, Ins where S=C and D='x'",
            build_schema())
        joins = [n for n in plan.postorder() if isinstance(n, Join)]
        assert len(joins) == 1  # comma join upgraded via WHERE equality

    def test_between_expands_to_two_predicates(self):
        plan = plan_query(
            "select T from Hosp where B between 1960 and 1980",
            build_schema())
        selections = [n for n in plan.postorder()
                      if isinstance(n, Selection)]
        basics = [b for s in selections
                  for b in s.predicate.basic_conditions()]
        ops = sorted(str(b.op) for b in basics
                     if isinstance(b, AttributeValuePredicate))
        assert ops == ["<=", ">="]

    def test_having_on_aggregate_alias(self):
        plan = plan_query(
            "select T, sum(P) as total from Hosp join Ins on S=C "
            "group by T having sum(P) > 10", build_schema())
        having = plan.root
        assert isinstance(having, Selection)
        (basic,) = having.predicate.basic_conditions()
        assert basic.attribute == "total"

    def test_having_without_matching_aggregate_rejected(self):
        with pytest.raises(SqlAnalysisError):
            plan_query(
                "select T, sum(P) from Hosp join Ins on S=C "
                "group by T having min(P) > 10", build_schema())

    def test_unknown_relation_and_column(self):
        with pytest.raises(SqlAnalysisError):
            plan_query("select T from Nope", build_schema())
        with pytest.raises(SqlAnalysisError):
            plan_query("select zzz from Hosp", build_schema())

    def test_self_join_rejected(self):
        with pytest.raises(SqlAnalysisError):
            plan_query("select T from Hosp join Hosp on S=S",
                       build_schema())

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SqlAnalysisError):
            plan_query("select T from Hosp group by T", build_schema())

    def test_intra_relation_comparison_stays_local(self):
        plan = plan_query(
            "select l_orderkey from lineitem "
            "where l_commitdate < l_receiptdate",
            __import__("repro.tpch.schema",
                       fromlist=["build_tpch_schema"]).build_tpch_schema())
        selections = [n for n in plan.postorder()
                      if isinstance(n, Selection)]
        assert selections
        (basic,) = selections[0].predicate.basic_conditions()
        assert isinstance(basic, AttributeComparisonPredicate)

    def test_attribute_value_flipped_literal(self):
        plan = plan_query("select T from Hosp where 1980 < B",
                          build_schema())
        selections = [n for n in plan.postorder()
                      if isinstance(n, Selection)]
        (basic,) = selections[0].predicate.basic_conditions()
        assert basic.attribute == "B" and basic.op is ComparisonOp.GT

    def test_final_projection_added_when_narrower(self):
        plan = plan_query("select T from Hosp where B > 1", build_schema())
        assert isinstance(plan.root, Projection)

    def test_multi_aggregate_select(self):
        plan = plan_query(
            "select T, sum(P) as s, avg(P) as a, count(*) as n "
            "from Hosp join Ins on S=C group by T", build_schema())
        group = plan.root
        assert isinstance(group, GroupBy)
        assert {a.output_name for a in group.aggregates} == {"s", "a", "n"}

"""Hash-partitioned joins, compiled residuals, bulk table APIs, and the
plan-subtree result cache — the ISSUE-1 hot-path rebuild."""

import random

import pytest

from repro.core.operators import BaseRelationNode, Join, Projection, Selection
from repro.core.predicates import (
    AttributeComparisonPredicate,
    ComparisonOp,
    Conjunction,
    equals,
)
from repro.core.schema import Relation
from repro.engine import Executor, Table
from repro.exceptions import ExecutionError

R = Relation("R", ["a", "b"], cardinality=100)
S = Relation("S", ["k", "w"], cardinality=100)


def random_catalog(seed=1, left_rows=60, right_rows=80):
    rng = random.Random(seed)
    left = Table("R", ("a", "b"), [
        (rng.randrange(10), rng.randrange(100)) for _ in range(left_rows)
    ])
    right = Table("S", ("k", "w"), [
        (rng.randrange(10), rng.randrange(100)) for _ in range(right_rows)
    ])
    return {"R": left, "S": right}


def join_node(*predicates):
    return Join(BaseRelationNode(R), BaseRelationNode(S),
                Conjunction(list(predicates)))


def both_strategies(catalog, node):
    hashed = Executor(catalog).execute(node)
    reference = Executor(catalog, join_strategy="nested-loop").execute(node)
    return hashed, reference


class TestHashJoinEquivalence:
    def test_equality_plus_residual(self):
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"),
            AttributeComparisonPredicate("b", ComparisonOp.LT, "w"),
        )
        hashed, reference = both_strategies(random_catalog(), node)
        assert len(hashed) > 0
        assert hashed.same_content(reference)

    def test_flipped_equality_still_hash_joins(self):
        # The conjunct names the right operand's attribute first.
        node = join_node(
            AttributeComparisonPredicate("k", ComparisonOp.EQ, "a"),
            AttributeComparisonPredicate("w", ComparisonOp.GE, "b"),
        )
        hashed, reference = both_strategies(random_catalog(2), node)
        assert hashed.same_content(reference)

    def test_multi_equality_composite_key(self):
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"),
            AttributeComparisonPredicate("b", ComparisonOp.EQ, "w"),
        )
        hashed, reference = both_strategies(
            random_catalog(3, left_rows=200, right_rows=200), node)
        assert hashed.same_content(reference)

    def test_pure_theta_join_falls_back(self):
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.LT, "k"))
        hashed, reference = both_strategies(random_catalog(4), node)
        assert hashed.same_content(reference)

    def test_same_side_residual(self):
        # a = k is hashable; a < b compares two left-operand attributes.
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"),
            AttributeComparisonPredicate("a", ComparisonOp.LT, "b"),
        )
        hashed, reference = both_strategies(random_catalog(5), node)
        assert hashed.same_content(reference)

    def test_build_side_selection_is_transparent(self):
        # Equal results whichever operand is smaller (the hash table is
        # built on the smaller side).
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"),
            AttributeComparisonPredicate("b", ComparisonOp.NEQ, "w"),
        )
        small_left = random_catalog(6, left_rows=10, right_rows=150)
        small_right = random_catalog(6, left_rows=150, right_rows=10)
        for catalog in (small_left, small_right):
            hashed, reference = both_strategies(catalog, node)
            assert hashed.same_content(reference)

    def test_null_keys_behave_identically_across_strategies(self):
        catalog = {
            "R": Table("R", ("a", "b"), [(None, 1), (1, 2)]),
            "S": Table("S", ("k", "w"), [(None, 3), (1, 4)]),
        }
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"))
        hashed, reference = both_strategies(catalog, node)
        assert hashed.same_content(reference)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExecutionError):
            Executor({}, join_strategy="sort-merge")

    def test_incomparable_key_representations_raise_in_both_strategies(self):
        # Ciphertexts under different keys (or plaintext vs ciphertext)
        # can never hash-match; the reference strategy raises, so the
        # hash path must raise too instead of silently returning [].
        from repro.core.keys import QueryKey
        from repro.core.requirements import EncryptionScheme
        from repro.crypto.keymanager import KeyStore
        from repro.engine.codec import encrypt_value

        def det_store(names):
            return KeyStore.generate(
                [QueryKey(frozenset(names), EncryptionScheme.DETERMINISTIC)])

        k1 = det_store({"a"}).material_for_attribute("a")
        k2 = det_store({"k"}).material_for_attribute("k")
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"))
        cross_key = {
            "R": Table("R", ("a", "b"), [(encrypt_value(k1, 1), 0)]),
            "S": Table("S", ("k", "w"), [(encrypt_value(k2, 1), 0)]),
        }
        plain_vs_enc = {
            "R": Table("R", ("a", "b"), [(1, 0)]),
            "S": Table("S", ("k", "w"), [(encrypt_value(k2, 1), 0)]),
        }
        for catalog in (cross_key, plain_vs_enc):
            for strategy in ("hash", "nested-loop"):
                with pytest.raises(ExecutionError):
                    Executor(catalog,
                             join_strategy=strategy).execute(node)


class TestSubtreeCache:
    def test_repeated_execution_hits_cache(self):
        catalog = random_catalog()
        node = join_node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"))
        executor = Executor(catalog)
        first = executor.execute(node)
        assert executor.cache_hits == 0
        second = executor.execute(node)
        assert second is first
        assert executor.cache_hits == 1

    def test_shared_subtree_reused_across_plans(self):
        catalog = random_catalog()
        leaf = BaseRelationNode(R)
        selection = Selection(
            leaf, AttributeComparisonPredicate("a", ComparisonOp.LT, "b"))
        executor = Executor(catalog)
        subtree_result = executor.execute(selection)
        projection = Projection(selection, ["a"])
        executor.execute(projection)
        # The projection's child came from the cache, not a re-run.
        assert executor.cache_hits >= 1
        assert executor._cache[selection] is subtree_result

    def test_cache_disabled(self):
        catalog = random_catalog()
        node = BaseRelationNode(R)
        executor = Executor(catalog, cache_size=0)
        executor.execute(node)
        executor.execute(node)
        assert executor.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "capacity": 0,
            "bytes": 0, "capacity_bytes": None,
        }

    def test_lru_eviction(self):
        catalog = random_catalog()
        r_leaf = BaseRelationNode(R)
        s_leaf = BaseRelationNode(S)
        executor = Executor(catalog, cache_size=1)
        executor.execute(r_leaf)
        executor.execute(s_leaf)  # evicts the R scan
        executor.execute(r_leaf)
        assert executor.cache_hits == 0
        executor.execute(r_leaf)
        assert executor.cache_hits == 1

    def test_clear_cache(self):
        catalog = random_catalog()
        node = BaseRelationNode(R)
        executor = Executor(catalog)
        executor.execute(node)
        executor.clear_cache()
        assert executor.cache_info()["size"] == 0
        executor.execute(node)
        assert executor.cache_hits == 0

    def test_catalog_mutation_invalidates_cache(self):
        node = BaseRelationNode(R)
        executor = Executor(random_catalog())
        first = executor.execute(node)
        assert len(first) > 0
        executor.catalog["R"] = Table("R", ("a", "b"), [])
        empty = executor.execute(node)
        assert len(empty) == 0
        assert executor.cache_hits == 0

    def test_catalog_ior_invalidates_cache(self):
        node = BaseRelationNode(R)
        executor = Executor(random_catalog())
        first = executor.execute(node)
        assert len(first) > 0
        executor.catalog |= {"R": Table("R", ("a", "b"), [])}
        assert len(executor.execute(node)) == 0

    def test_catalog_reassignment_invalidates_cache(self):
        node = BaseRelationNode(R)
        executor = Executor(random_catalog())
        executor.execute(node)
        executor.catalog = {"R": Table("R", ("a", "b"), [(9, 9)])}
        assert executor.execute(node).rows == [(9, 9)]

    def test_udf_swap_invalidates_cache(self):
        from repro.core.operators import Udf

        node = Udf(BaseRelationNode(R), ["b"], "b", name="f")
        executor = Executor(
            {"R": Table("R", ("a", "b"), [(1, 2)])},
            udfs={"f": lambda args: args["b"] * 10},
        )
        assert executor.execute(node).rows == [(1, 20)]
        executor.udfs["f"] = lambda args: args["b"] + 100
        assert executor.execute(node).rows == [(1, 102)]

    def test_strategy_and_keystore_rebind_invalidate_cache(self):
        node = BaseRelationNode(R)
        executor = Executor(random_catalog())
        executor.execute(node)
        executor.join_strategy = "nested-loop"
        assert executor.cache_info()["size"] == 0
        executor.execute(node)
        executor.keystore = None
        assert executor.cache_info()["size"] == 0

    def test_keystore_inplace_add_invalidates_cache(self):
        from repro.core.keys import QueryKey
        from repro.core.requirements import EncryptionScheme
        from repro.crypto.keymanager import KeyStore

        node = BaseRelationNode(R)
        store = KeyStore()
        executor = Executor(random_catalog(), keystore=store)
        executor.execute(node)
        assert executor.cache_info()["size"] == 1
        donor = KeyStore.generate(
            [QueryKey(frozenset({"a"}), EncryptionScheme.DETERMINISTIC)])
        store.add(donor.material_for_attribute("a"))
        executor.execute(node)
        assert executor.cache_hits == 0

    def test_setdefault_on_existing_key_keeps_cache(self):
        catalog = random_catalog()
        node = BaseRelationNode(R)
        executor = Executor(catalog)
        executor.execute(node)
        executor.catalog.setdefault("R", Table("R", ("a", "b"), []))
        assert executor.cache_info()["size"] == 1
        executor.catalog.update({})
        assert executor.cache_info()["size"] == 1


class TestByteBoundedCache:
    """The ``cache_bytes`` budget replacing the entry-count LRU."""

    def test_estimated_bytes_scales_with_rows(self):
        small = Table("T", ("a",), [(i,) for i in range(10)])
        large = Table("T", ("a",), [(i,) for i in range(1000)])
        assert small.estimated_bytes() > 0
        assert large.estimated_bytes() > 10 * small.estimated_bytes()
        # Memoized: the same object computes once.
        assert large.estimated_bytes() is large.estimated_bytes()

    def test_byte_budget_evicts_lru(self):
        catalog = random_catalog()
        r_leaf = BaseRelationNode(R)
        s_leaf = BaseRelationNode(S)
        probe = Executor(catalog)
        r_bytes = probe.execute(r_leaf).estimated_bytes()
        s_bytes = probe.execute(s_leaf).estimated_bytes()
        # Room for one table but not both: caching S must evict R.
        executor = Executor(catalog,
                            cache_bytes=max(r_bytes, s_bytes) + 16)
        executor.execute(r_leaf)
        executor.execute(s_leaf)
        info = executor.cache_info()
        assert info["size"] == 1
        assert 0 < info["bytes"] <= info["capacity_bytes"]
        executor.execute(s_leaf)
        assert executor.cache_hits == 1  # S survived, R was evicted

    def test_oversized_result_never_cached(self):
        catalog = random_catalog()
        node = BaseRelationNode(R)
        executor = Executor(catalog, cache_bytes=8)
        executor.execute(node)
        executor.execute(node)
        assert executor.cache_hits == 0
        assert executor.cache_info()["size"] == 0
        assert executor.cache_info()["bytes"] == 0

    def test_zero_byte_budget_disables_cache(self):
        catalog = random_catalog()
        node = BaseRelationNode(R)
        executor = Executor(catalog, cache_bytes=0)
        executor.execute(node)
        executor.execute(node)
        assert executor.cache_info()["hits"] == 0
        assert executor.cache_info()["misses"] == 0

    def test_byte_mode_ignores_entry_count(self):
        catalog = random_catalog()
        r_leaf = BaseRelationNode(R)
        s_leaf = BaseRelationNode(S)
        executor = Executor(catalog, cache_size=1, cache_bytes=1 << 20)
        executor.execute(r_leaf)
        executor.execute(s_leaf)
        # Entry-count LRU (cache_size=1) no longer governs in byte mode.
        assert executor.cache_info()["size"] == 2

    def test_clear_cache_resets_bytes(self):
        catalog = random_catalog()
        executor = Executor(catalog, cache_bytes=1 << 20)
        executor.execute(BaseRelationNode(R))
        assert executor.cache_info()["bytes"] > 0
        executor.clear_cache()
        assert executor.cache_info()["bytes"] == 0
        assert executor.cache_info()["size"] == 0


class TestBulkTableApis:
    T = Table("T", ("a", "b", "c"), [
        (1, "x", 10.0), (2, "y", 20.0), (1, "x", 30.0),
    ])

    def test_positions_are_cached(self):
        first = self.T.positions(["c", "a"])
        assert first == (2, 0)
        assert self.T.positions(["c", "a"]) is first

    def test_bulk_project_without_dedupe_preserves_rows(self):
        out = self.T.bulk_project(["a", "b"], dedupe=False)
        assert out.rows == [(1, "x"), (2, "y"), (1, "x")]

    def test_bulk_project_dedupes_by_default(self):
        out = self.T.bulk_project(["a", "b"])
        assert out.rows == [(1, "x"), (2, "y")]

    def test_bulk_filter_uses_compiled_predicate(self):
        out = self.T.bulk_filter(lambda row: row[2] > 15.0)
        assert [row[2] for row in out.rows] == [20.0, 30.0]

    def test_map_columns_single_pass(self):
        out = self.T.map_columns({"a": lambda v: v * 10,
                                  "c": lambda v: -v})
        assert out.rows == [
            (10, "x", -10.0), (20, "y", -20.0), (10, "x", -30.0),
        ]

"""In-memory engine: tables, expressions, plaintext and encrypted plans."""

import pytest

from repro.core.extension import minimally_extend
from repro.core.keys import QueryKey, establish_keys
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    GroupBy,
    Join,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Conjunction,
    equals,
    value_equals,
)
from repro.core.requirements import EncryptionScheme
from repro.core.schema import Relation
from repro.crypto.keymanager import DistributedKeys, KeyStore
from repro.engine import Executor, Table
from repro.engine.codec import decrypt_value, encrypt_value
from repro.engine.expressions import compare_plain
from repro.engine.values import EncryptedValue
from repro.exceptions import ExecutionError

R = Relation("R", ["a", "b", "c"], cardinality=10)
T = Table("R", ("a", "b", "c"), [
    (1, "x", 10.0), (2, "y", 20.0), (3, "x", 30.0), (4, "z", 40.0),
])


class TestTable:
    def test_shape_validation(self):
        with pytest.raises(ExecutionError):
            Table("t", ("a", "b"), [(1,)])
        with pytest.raises(ExecutionError):
            Table("t", ("a", "a"), [])

    def test_project_dedups(self):
        projected = T.project(["b"])
        assert sorted(projected.rows) == [("x",), ("y",), ("z",)]

    def test_column_access(self):
        assert T.column_values("a") == [1, 2, 3, 4]
        with pytest.raises(ExecutionError):
            T.column_position("zzz")

    def test_from_dicts_and_iter_dicts(self):
        t = Table.from_dicts("t", ("a",), [{"a": 1}, {"a": 2}])
        assert list(t.iter_dicts()) == [{"a": 1}, {"a": 2}]

    def test_same_content_order_insensitive(self):
        shuffled = Table("R", T.columns, list(reversed(T.rows)))
        assert T.same_content(shuffled)


class TestPlaintextOperators:
    def run(self, node):
        return Executor({"R": T}).execute(node)

    def test_selection_ops(self):
        leaf = BaseRelationNode(R)
        eq = self.run(Selection(leaf, value_equals("b", "x")))
        assert len(eq) == 2
        rng = self.run(Selection(BaseRelationNode(R),
                                 AttributeValuePredicate(
                                     "c", ComparisonOp.GE, 30.0)))
        assert len(rng) == 2
        isin = self.run(Selection(BaseRelationNode(R),
                                  AttributeValuePredicate(
                                      "a", ComparisonOp.IN, (1, 4))))
        assert len(isin) == 2
        like = self.run(Selection(BaseRelationNode(R),
                                  AttributeValuePredicate(
                                      "b", ComparisonOp.LIKE, "x%")))
        assert len(like) == 2

    def test_projection_order_follows_child(self):
        out = self.run(Projection(BaseRelationNode(R), ["c", "a"]))
        assert out.columns == ("a", "c")

    def test_join_and_product(self):
        s = Relation("S", ["k", "v"])
        s_table = Table("S", ("k", "v"), [(1, "one"), (3, "three")])
        executor = Executor({"R": T, "S": s_table})
        joined = executor.execute(Join(
            BaseRelationNode(R), BaseRelationNode(s), equals("a", "k")))
        assert len(joined) == 2
        product = executor.execute(CartesianProduct(
            BaseRelationNode(R), BaseRelationNode(s)))
        assert len(product) == 8

    def test_non_equi_join(self):
        s = Relation("S", ["k"])
        s_table = Table("S", ("k",), [(2,), (3,)])
        executor = Executor({"R": T, "S": s_table})
        joined = executor.execute(Join(
            BaseRelationNode(R), BaseRelationNode(s),
            AttributeComparisonPredicate("a", ComparisonOp.LT, "k")))
        # a<k pairs: (1,2), (1,3), (2,3) → 3 rows
        assert len(joined) == 3

    def test_group_by_aggregates(self):
        grouped = self.run(GroupBy(BaseRelationNode(R), ["b"], [
            Aggregate(AggregateFunction.SUM, "c", alias="total"),
            Aggregate(AggregateFunction.MIN, "a", alias="lo"),
            Aggregate(AggregateFunction.COUNT, alias="n"),
        ]))
        by_b = {row["b"]: row for row in grouped.iter_dicts()}
        assert by_b["x"] == {"b": "x", "total": 40.0, "lo": 1, "n": 2}
        assert by_b["z"]["n"] == 1

    def test_global_aggregate(self):
        grouped = self.run(GroupBy(BaseRelationNode(R), [],
                                   Aggregate(AggregateFunction.AVG, "c")))
        assert grouped.rows == [(25.0,)]

    def test_udf(self):
        node = Udf(BaseRelationNode(R), ["c"], "c", name="double")
        executor = Executor(
            {"R": T}, udfs={"double": lambda args: args["c"] * 2})
        out = executor.execute(node)
        assert sorted(out.column_values("c")) == [20.0, 40.0, 60.0, 80.0]

    def test_unknown_udf(self):
        node = Udf(BaseRelationNode(R), ["c"], "c", name="nope")
        with pytest.raises(ExecutionError):
            Executor({"R": T}).execute(node)

    def test_missing_table(self):
        with pytest.raises(ExecutionError):
            Executor({}).execute(BaseRelationNode(R))


class TestEncryptedValues:
    def make_store(self, scheme=EncryptionScheme.DETERMINISTIC):
        return KeyStore.generate([QueryKey(frozenset({"b"}), scheme)])

    def test_codec_roundtrip_all_schemes(self):
        for scheme in EncryptionScheme:
            store = KeyStore.generate(
                [QueryKey(frozenset({"b"}), scheme)])
            material = store.material_for_attribute("b")
            value = 42 if scheme in (EncryptionScheme.PAILLIER,
                                     EncryptionScheme.OPE) else "hello"
            token = encrypt_value(material, value)
            assert decrypt_value(material, token) == value

    def test_mixed_comparison_raises(self):
        store = self.make_store()
        material = store.material_for_attribute("b")
        token = encrypt_value(material, "x")
        from repro.engine.expressions import compare_values

        with pytest.raises(ExecutionError):
            compare_values(token, ComparisonOp.EQ, "x")
        with pytest.raises(ExecutionError):
            compare_values("x", ComparisonOp.EQ, token)

    def test_randomized_cannot_group(self):
        value = EncryptedValue("k", EncryptionScheme.RANDOMIZED, b"tok")
        with pytest.raises(ExecutionError):
            value.group_key()

    def test_cross_key_comparison_rejected(self):
        a = EncryptedValue("k1", EncryptionScheme.DETERMINISTIC, b"t")
        b = EncryptedValue("k2", EncryptionScheme.DETERMINISTIC, b"t")
        with pytest.raises(ExecutionError):
            a.equals(b)


class TestEncryptedExecution:
    def test_running_example_7a_equals_plaintext(self, example,
                                                 example_tables):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        distributed = DistributedKeys.from_assignment(keys)
        encrypted = Executor(
            example_tables, keystore=distributed.master
        ).execute(extended.plan)
        plain = Executor(example_tables).execute(example.plan)
        assert encrypted.same_content(plain)

    def test_selection_on_encrypted_without_key_fails(self, example,
                                                      example_tables):
        from repro.exceptions import ReproError

        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7b(),
            owners=example.owners,
        )
        with pytest.raises(ReproError):
            # Fails at the source encryption (no key material) — and
            # would fail at the encrypted selection even if it got there.
            Executor(example_tables, keystore=KeyStore()).execute(
                extended.plan)

    def test_note2_decrypt_and_compare(self):
        # A range condition over deterministic tokens is impossible on
        # ciphertext; holding the key, the evaluator falls back to
        # plaintext comparison (note 2 of §5).
        store = KeyStore.generate([
            QueryKey(frozenset({"c"}), EncryptionScheme.DETERMINISTIC),
        ])
        material = store.material_for_attribute("c")
        encrypted_rows = [
            (row[0], row[1], encrypt_value(material, row[2]))
            for row in T.rows
        ]
        catalog = {"R": Table("R", T.columns, encrypted_rows)}
        node = Selection(BaseRelationNode(R), AttributeValuePredicate(
            "c", ComparisonOp.GT, 25.0))
        out = Executor(catalog, keystore=store).execute(node)
        assert len(out) == 2
        # Without the key the same plan must fail.
        with pytest.raises(ExecutionError):
            Executor(catalog, keystore=KeyStore()).execute(node)

"""SQL NULL semantics in aggregation, plaintext and encrypted.

The ISSUE-1 repros: ``COUNT(attr)`` must skip NULLs, ``SUM``/``AVG``/
``MIN``/``MAX`` over an all-NULL group must return NULL instead of
raising (``ZeroDivisionError``/``ValueError``) or returning 0, a GroupBy
over an empty input emits zero groups (grouped) or the standard single
row (global), and encrypted aggregation tolerates NULLs exactly like the
plaintext path so the two representations agree on NULL-bearing data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keys import QueryKey
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    Decrypt,
    GroupBy,
)
from repro.core.requirements import EncryptionScheme
from repro.core.schema import Relation
from repro.crypto.keymanager import KeyStore
from repro.engine import Executor, Table
from repro.engine.codec import encrypt_value
from repro.exceptions import ExecutionError

R = Relation("R", ["k", "v"], cardinality=10)

NULLY = Table("R", ("k", "v"), [
    ("a", 10), ("a", None), ("a", 30),
    ("b", None), ("b", None),
    ("c", 7),
])


def run(table, node):
    return Executor({"R": table}).execute(node)


def grouped(function, alias="out"):
    return GroupBy(BaseRelationNode(R), ["k"],
                   Aggregate(function, "v", alias=alias))


def by_group(table):
    return {row[0]: row[1] for row in table.rows}


class TestPlaintextNullSkipping:
    def test_count_attribute_skips_nulls(self):
        out = by_group(run(NULLY, grouped(AggregateFunction.COUNT)))
        assert out == {"a": 2, "b": 0, "c": 1}

    def test_count_star_counts_all_rows(self):
        node = GroupBy(BaseRelationNode(R), ["k"],
                       Aggregate(AggregateFunction.COUNT, alias="n"))
        out = by_group(run(NULLY, node))
        assert out == {"a": 3, "b": 2, "c": 1}

    def test_sum_ignores_nulls_and_all_null_is_null(self):
        out = by_group(run(NULLY, grouped(AggregateFunction.SUM)))
        assert out == {"a": 40, "b": None, "c": 7}

    def test_avg_ignores_nulls_and_all_null_is_null(self):
        out = by_group(run(NULLY, grouped(AggregateFunction.AVG)))
        assert out == {"a": 20.0, "b": None, "c": 7.0}

    def test_min_max_ignore_nulls_and_all_null_is_null(self):
        lo = by_group(run(NULLY, grouped(AggregateFunction.MIN)))
        hi = by_group(run(NULLY, grouped(AggregateFunction.MAX)))
        assert lo == {"a": 10, "b": None, "c": 7}
        assert hi == {"a": 30, "b": None, "c": 7}


class TestEmptyInput:
    EMPTY = Table("R", ("k", "v"), [])

    def test_grouped_aggregate_emits_zero_groups(self):
        out = run(self.EMPTY, grouped(AggregateFunction.SUM))
        assert out.columns == ("k", "out")
        assert out.rows == []

    def test_global_aggregate_emits_standard_row(self):
        node = GroupBy(BaseRelationNode(R), [], [
            Aggregate(AggregateFunction.COUNT, alias="n"),
            Aggregate(AggregateFunction.SUM, "v", alias="total"),
            Aggregate(AggregateFunction.AVG, "v", alias="mean"),
            Aggregate(AggregateFunction.MIN, "v", alias="lo"),
            Aggregate(AggregateFunction.MAX, "v", alias="hi"),
        ])
        out = run(self.EMPTY, node)
        assert out.columns == ("n", "total", "mean", "lo", "hi")
        assert out.rows == [(0, None, None, None, None)]

    def test_global_count_attribute_over_empty_is_zero(self):
        node = GroupBy(BaseRelationNode(R), [],
                       Aggregate(AggregateFunction.COUNT, "v", alias="n"))
        assert run(self.EMPTY, node).rows == [(0,)]


def encrypted_catalog(rows, scheme, extra_names=()):
    """Encrypt the non-NULL ``v`` cells under one key; NULLs stay NULL."""
    store = KeyStore.generate(
        [QueryKey(frozenset({"v"}) | frozenset(extra_names), scheme)])
    material = store.material_for_attribute("v")
    enc_rows = [
        (k, None if v is None else encrypt_value(material, v))
        for k, v in rows
    ]
    return {"R": Table("R", ("k", "v"), enc_rows)}, store


class TestEncryptedNullSkipping:
    def test_ope_min_max_skip_nulls(self):
        catalog, store = encrypted_catalog(
            NULLY.rows, EncryptionScheme.OPE, extra_names=("out",))
        for function, want in (
            (AggregateFunction.MIN, {"a": 10, "b": None, "c": 7}),
            (AggregateFunction.MAX, {"a": 30, "b": None, "c": 7}),
        ):
            node = Decrypt(grouped(function), ["out"])
            out = by_group(Executor(catalog, keystore=store).execute(node))
            assert out == want

    def test_paillier_sum_avg_skip_nulls(self):
        catalog, store = encrypted_catalog(
            NULLY.rows, EncryptionScheme.PAILLIER, extra_names=("out",))
        total = by_group(Executor(catalog, keystore=store).execute(
            Decrypt(grouped(AggregateFunction.SUM), ["out"])))
        assert total["b"] is None
        assert total["a"] == 40 and total["c"] == 7
        mean = by_group(Executor(catalog, keystore=store).execute(
            Decrypt(grouped(AggregateFunction.AVG), ["out"])))
        # The Paillier average divides by the non-NULL count.
        assert mean["b"] is None
        assert abs(mean["a"] - 20.0) < 1e-6 and abs(mean["c"] - 7.0) < 1e-6

    def test_count_over_encrypted_skips_nulls(self):
        catalog, store = encrypted_catalog(
            NULLY.rows, EncryptionScheme.DETERMINISTIC)
        out = by_group(Executor(catalog, keystore=store).execute(
            grouped(AggregateFunction.COUNT)))
        assert out == {"a": 2, "b": 0, "c": 1}

    def test_null_vs_ciphertext_matches_plaintext_null_semantics(self):
        # Encrypt passes NULL through, so comparisons may legitimately
        # see (None, EncryptedValue) pairs.  They must not raise, and
        # they must answer exactly like plaintext NULL comparisons so
        # extended plans agree with their originals: only ≠ holds.
        from repro.engine import compile_comparison
        from repro.engine.expressions import compare_values
        from repro.core.predicates import ComparisonOp

        catalog, store = encrypted_catalog(
            [("a", 1)], EncryptionScheme.OPE)
        token = catalog["R"].rows[0][1]
        for op in (ComparisonOp.EQ, ComparisonOp.NEQ, ComparisonOp.LT,
                   ComparisonOp.GE):
            plain_want = compile_comparison(op)(None, 1)
            assert compile_comparison(op)(None, token) is plain_want
            assert compile_comparison(op)(token, None) is plain_want
            assert compare_values(None, op, token) is plain_want
            assert compare_values(token, op, None) is plain_want
        assert compile_comparison(ComparisonOp.NEQ)(None, token) is True

    def test_like_over_null_is_unknown(self):
        from repro.core.predicates import AttributeValuePredicate, ComparisonOp
        from repro.core.operators import Selection

        table = Table("R", ("k", "v"), [("Alice", 1), (None, 2)])
        out = run(table, Selection(
            BaseRelationNode(R),
            AttributeValuePredicate("k", ComparisonOp.LIKE, "A%")))
        assert out.rows == [("Alice", 1)]

    def test_join_residual_over_null_bearing_encrypted_column(self):
        # Both join strategies must agree (False, no crash) when a
        # residual compares a NULL against an OPE token.
        from repro.core.operators import BaseRelationNode, Join
        from repro.core.predicates import (
            AttributeComparisonPredicate,
            ComparisonOp,
            Conjunction,
        )

        S = Relation("S", ["j", "w"], cardinality=10)
        store = KeyStore.generate(
            [QueryKey(frozenset({"v", "w"}), EncryptionScheme.OPE)])
        material = store.material_for_attribute("v")

        def enc(x):
            return None if x is None else encrypt_value(material, x)

        catalog = {
            "R": Table("R", ("k", "v"), [(1, enc(5)), (2, enc(None))]),
            "S": Table("S", ("j", "w"), [(1, enc(3)), (2, enc(9))]),
        }
        node = Join(
            BaseRelationNode(R), BaseRelationNode(S),
            Conjunction([
                AttributeComparisonPredicate("k", ComparisonOp.EQ, "j"),
                AttributeComparisonPredicate("v", ComparisonOp.GT, "w"),
            ]),
        )
        hashed = Executor(catalog).execute(node)
        reference = Executor(
            catalog, join_strategy="nested-loop").execute(node)
        assert hashed.same_content(reference)
        assert len(hashed) == 1  # only (k=1, v=5) > (j=1, w=3) survives

    def test_true_mix_still_rejected(self):
        # NULLs are tolerated, genuine plaintext/ciphertext mixes are not.
        catalog, store = encrypted_catalog(
            [("a", 1), ("a", 2)], EncryptionScheme.PAILLIER)
        table = catalog["R"]
        mixed = Table("R", table.columns,
                      [table.rows[0], ("a", 5)])
        with pytest.raises(ExecutionError):
            Executor({"R": mixed}, keystore=store).execute(
                grouped(AggregateFunction.SUM))


ROWS_WITH_NULLS = st.lists(
    st.tuples(st.integers(0, 3),
              st.one_of(st.none(), st.integers(-50, 50))),
    min_size=0, max_size=25,
)


class TestPlaintextEncryptedEquivalence:
    @given(ROWS_WITH_NULLS)
    @settings(max_examples=10, deadline=None)
    def test_paillier_sum_and_count_agree_on_random_nulls(self, rows):
        node = GroupBy(BaseRelationNode(R), ["k"], [
            Aggregate(AggregateFunction.SUM, "v", alias="total"),
            Aggregate(AggregateFunction.COUNT, "v", alias="n"),
        ])
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(node)
        catalog, store = encrypted_catalog(
            rows, EncryptionScheme.PAILLIER, extra_names=("total",))
        encrypted = Executor(catalog, keystore=store).execute(
            Decrypt(node, ["total"]))
        got = {row[0]: (row[1], row[2]) for row in encrypted.rows}
        want = {row[0]: (row[1], row[2]) for row in plain.rows}
        assert got == want

    @given(ROWS_WITH_NULLS)
    @settings(max_examples=10, deadline=None)
    def test_ope_min_agrees_on_random_nulls(self, rows):
        node = GroupBy(BaseRelationNode(R), ["k"],
                       Aggregate(AggregateFunction.MIN, "v", alias="lo"))
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(node)
        catalog, store = encrypted_catalog(
            rows, EncryptionScheme.OPE, extra_names=("lo",))
        encrypted = Executor(catalog, keystore=store).execute(
            Decrypt(node, ["lo"]))
        assert {r[0]: r[1] for r in encrypted.rows} \
            == {r[0]: r[1] for r in plain.rows}

"""Shared helpers importable from any test module."""

from __future__ import annotations

import re

from repro.core.operators import BaseRelationNode, Udf
from repro.core.plan import QueryPlan
from repro.core.schema import Relation, Schema

#: One exposition sample: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse (and structurally validate) Prometheus text exposition.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(name, labels_dict, value), ...]}}``.  Raises ``AssertionError``
    on malformed lines, samples without a preceding TYPE, or
    non-cumulative histogram buckets — the shared gate for every test
    that asserts "emits valid Prometheus text format".
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"samples": []})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            families.setdefault(name, {"samples": []})["type"] = kind
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        assert current is not None and name.startswith(current), \
            f"sample {name!r} outside its family block"
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        value = float(match.group("value"))
        families[current]["samples"].append((name, labels, value))
    for name, family in families.items():
        assert "type" in family, f"{name} has no TYPE line"
        assert "help" in family, f"{name} has no HELP line"
        if family["type"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _check_histogram(name: str, samples: list) -> None:
    """Bucket series must be cumulative and end at +Inf == _count."""
    by_labelset: dict[tuple, list[tuple[str, float]]] = {}
    counts: dict[tuple, float] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items()
                           if k != "le"))
        if sample_name == f"{name}_bucket":
            by_labelset.setdefault(key, []).append((labels["le"], value))
        elif sample_name == f"{name}_count":
            counts[key] = value
    for key, buckets in by_labelset.items():
        cumulative = [value for _, value in buckets]
        assert cumulative == sorted(cumulative), \
            f"{name} buckets not cumulative for {key}"
        assert buckets[-1][0] == "+Inf", f"{name} missing +Inf bucket"
        assert buckets[-1][1] == counts[key], \
            f"{name} +Inf bucket != _count for {key}"


def make_udf_plan(schema_attrs: int = 3) -> tuple[QueryPlan, Schema]:
    """A small plan with a udf, for requirement/extension tests."""
    schema = Schema()
    relation = schema.add(Relation(
        "M", [f"m{i}" for i in range(schema_attrs)], cardinality=50,
    ))
    leaf = BaseRelationNode(relation)
    udf = Udf(leaf, ["m0", "m1"], "m0", encrypted_capable=False,
              name="model")
    return QueryPlan(udf), schema

"""Shared helpers importable from any test module."""

from __future__ import annotations

from repro.core.operators import BaseRelationNode, Udf
from repro.core.plan import QueryPlan
from repro.core.schema import Relation, Schema


def make_udf_plan(schema_attrs: int = 3) -> tuple[QueryPlan, Schema]:
    """A small plan with a udf, for requirement/extension tests."""
    schema = Schema()
    relation = schema.add(Relation(
        "M", [f"m{i}" for i in range(schema_attrs)], cardinality=50,
    ))
    leaf = BaseRelationNode(relation)
    udf = Udf(leaf, ["m0", "m1"], "m0", encrypted_capable=False,
              name="model")
    return QueryPlan(udf), schema

"""Property-based validation of the paper's theorems.

Each theorem is exercised over the six seeded random scenarios of
``conftest.RandomScenario`` (random schemas, plans with selections,
joins, group-bys, and random policies), plus targeted hypothesis tests
where the statement is local.
"""

import itertools

import pytest

from repro.core.candidates import compute_candidates, minimum_view_profiles
from repro.core.extension import minimally_extend
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import Decrypt, Encrypt
from repro.core.plan import QueryPlan
from repro.core.requirements import infer_plaintext_requirements
from repro.core.visibility import (
    check_assignee,
    is_authorized_assignee,
    verify_assignment,
)
from repro.exceptions import UnauthorizedError


class TestTheorem31:
    """Profiles are monotone along the plan (Theorem 3.1).

    "Attributes can move from one component to another, but they cannot
    be removed from the profile": implicit content and equivalence
    relationships only grow going up the plan.  (Visible attributes that
    were never *used* may still be projected away — the paper's plans
    push such projections into the leaves, so they never arise there.)
    """

    def test_implicit_content_never_disappears(self, random_scenario):
        plan = random_scenario.plan
        profiles = plan.profiles()
        for node in plan.postorder():
            implicit_above = profiles[node].implicit \
                | profiles[node].equivalences.members()
            for descendant in plan.postorder():
                if plan.is_descendant(descendant, node):
                    below = profiles[descendant]
                    assert below.implicit \
                        | below.equivalences.members() <= implicit_above

    def test_used_attributes_survive_to_the_root(self, random_scenario):
        # Every attribute an operation reads is still accounted for in
        # the root profile (visible, implicit, or via equivalence).
        plan = random_scenario.plan
        root_universe = plan.root_profile().all_attributes() \
            | plan.root_profile().visible
        for node in plan.operations():
            for attribute in node.implicit_introduced():
                assert attribute in root_universe
            for group in node.equivalences_introduced():
                assert group <= root_universe

    def test_equivalences_only_coarsen(self, random_scenario):
        plan = random_scenario.plan
        profiles = plan.profiles()
        for node in plan.postorder():
            for descendant in plan.postorder():
                if plan.is_descendant(descendant, node):
                    assert profiles[descendant].equivalences.refines(
                        profiles[node].equivalences)

    def test_holds_on_extended_plans_too(self, random_scenario):
        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        assignment = {}
        for node in scenario.plan.operations():
            if not candidates[node]:
                pytest.skip("unassignable scenario")
            assignment[node] = sorted(candidates[node])[0]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment)
        profiles = extended.plan.profiles()
        for node in extended.plan.postorder():
            implicit_above = profiles[node].implicit \
                | profiles[node].equivalences.members()
            for descendant in extended.plan.postorder():
                if extended.plan.is_descendant(descendant, node):
                    below = profiles[descendant]
                    assert below.implicit \
                        | below.equivalences.members() <= implicit_above


class TestTheorem51:
    """Candidate sets shrink going up the plan (Theorem 5.1).

    The theorem's precondition — plaintext-required attributes leave an
    implicit trace — holds for the min-view computation of all our
    operators except plaintext udfs, which the generator does not emit.
    """

    def test_candidates_monotone_upward(self, random_scenario):
        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        for node in scenario.plan.operations():
            parent = scenario.plan.parent(node)
            if parent is None or parent.is_leaf:
                continue
            assert candidates[parent] <= candidates[node], (
                f"Λ({parent.label()}) ⊄ Λ({node.label()})"
            )

    def test_running_example_monotone(self, example):
        candidates = compute_candidates(
            example.plan, example.policy, example.subject_names)
        chain = [example.selection, example.join, example.group_by,
                 example.having]
        for lower, upper in zip(chain, chain[1:]):
            assert candidates[upper] <= candidates[lower]


class TestTheorem52:
    """Λ is sound and complete w.r.t. extended plans (Theorem 5.2)."""

    def test_completeness_every_candidate_assignment_extends(
            self, random_scenario):
        """(ii): any λ ∈ Λ becomes authorized after minimal extension."""
        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        operations = scenario.plan.operations()
        domains = []
        for node in operations:
            names = sorted(candidates[node])
            if not names:
                pytest.skip("unassignable scenario")
            domains.append(names[:2])  # bound the combinatorics
        for combo in itertools.product(*domains):
            assignment = dict(zip(operations, combo))
            extended = minimally_extend(
                scenario.plan, scenario.policy, assignment)
            assert verify_assignment(
                extended.plan, scenario.policy, extended.assignment)

    def test_soundness_authorized_assignments_are_candidates(
            self, random_scenario):
        """(i): authorized assignments of extended plans are in Λ.

        We build extended plans from candidate assignments and check that
        every subject authorized for an operation of the extended plan
        (over its actual operands/result) is also in Λ of the original
        operation.
        """
        scenario = random_scenario
        requirements = infer_plaintext_requirements(scenario.plan)
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects,
            requirements)
        assignment = {}
        for node in scenario.plan.operations():
            if not candidates[node]:
                pytest.skip("unassignable scenario")
            assignment[node] = sorted(candidates[node])[-1]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment,
            requirements=requirements)
        profiles = extended.plan.profiles()
        lineage = derived_lineage(extended.plan)

        # Match original operations to their extended counterparts by
        # label (the extension preserves operator labels).
        extended_by_label = {}
        for node in extended.plan.postorder():
            if not node.is_leaf and not isinstance(node,
                                                   (Encrypt, Decrypt)):
                extended_by_label.setdefault(node.label(), node)
        for node in scenario.plan.operations():
            counterpart = extended_by_label.get(node.label())
            if counterpart is None:
                continue
            operand_profiles = [
                profiles[c] for c in counterpart.children
            ]
            for subject in scenario.subjects:
                view = augment_view(
                    scenario.policy.view(subject), lineage)
                authorized = is_authorized_assignee(
                    view, counterpart, operand_profiles,
                    profiles[counterpart],
                )
                # The plaintext requirements bound what extension may
                # encrypt; a subject authorized under *this* extension
                # must be a candidate.
                if authorized:
                    assert subject in candidates[node], (
                        f"{subject} authorized for {node.label()} "
                        f"but not in Λ"
                    )


class TestTheorem53:
    """Minimal extension is authorized and encrypts minimally."""

    def test_part_i_authorized(self, random_scenario):
        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        assignment = {}
        for node in scenario.plan.operations():
            if not candidates[node]:
                pytest.skip("unassignable scenario")
            assignment[node] = sorted(candidates[node])[0]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment, verify=False)
        assert verify_assignment(
            extended.plan, scenario.policy, extended.assignment)

    def test_part_ii_minimality_on_running_example(self, example):
        """No strict subset of Fig. 7(a)'s {S, C, P} suffices.

        Exhaustively check that removing any single attribute from the
        encryption set makes the Figure 7(a) assignment unauthorized.
        """
        assignment = example.assignment_7a()
        extended = minimally_extend(
            example.plan, example.policy, assignment,
            owners=example.owners,
        )
        assert extended.encrypted_attributes == frozenset("SCP")
        from repro.exceptions import ReproError

        for dropped in "SCP":
            # Removing any encrypted attribute yields a plan that is
            # either unexecutable (mixed representations) or
            # unauthorized — never a valid cheaper alternative.
            with pytest.raises(ReproError):
                reduced = _extend_without(example, assignment, dropped)
                verify_assignment(reduced.plan, example.policy,
                                  reduced.assignment)

    def test_minimality_against_encrypt_everything(self, random_scenario):
        """The minimal extension never encrypts more than the full
        min-view encryption (which encrypts every leaf attribute)."""
        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        assignment = {}
        for node in scenario.plan.operations():
            if not candidates[node]:
                pytest.skip("unassignable scenario")
            assignment[node] = sorted(candidates[node])[0]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment)
        requirements = infer_plaintext_requirements(scenario.plan)
        min_views = minimum_view_profiles(scenario.plan, requirements)
        fully_encrypted = set()
        for leaf in scenario.plan.leaves():
            fully_encrypted |= min_views.result_profile(leaf).visible
        assert extended.encrypted_attributes <= frozenset(
            fully_encrypted
        ) | {a for a in extended.encrypted_attributes}


def _extend_without(example, assignment, dropped: str):
    """Rebuild Fig. 7(a)'s extension, stripping encryption of ``dropped``."""
    extended = minimally_extend(
        example.plan, example.policy, assignment, owners=example.owners,
        verify=False,
    )
    mapping = {}

    def strip(node, children):
        if isinstance(node, Encrypt):
            remaining = node.attributes - {dropped}
            if not remaining:
                mapping[id(node)] = None
                return children[0]
            rebuilt = Encrypt(children[0], remaining)
            mapping[id(node)] = rebuilt
            return rebuilt
        rebuilt = node.with_children(children) if children \
            else node.with_children(())
        mapping[id(node)] = rebuilt
        return rebuilt

    new_plan = extended.plan.rewrite(strip)
    new_assignment = {}
    for node, subject in extended.assignment.items():
        counterpart = mapping.get(id(node))
        if counterpart is not None:
            new_assignment[counterpart] = subject
    from repro.core.extension import ExtendedPlan

    return ExtendedPlan(
        plan=new_plan,
        original=example.plan,
        assignment=new_assignment,
        encrypted_attributes=extended.encrypted_attributes - {dropped},
    )

"""Chaos cancellation: aborts at any checkpoint leave no trace behind.

The deadline/cancellation contract's headline properties, checked at
*every* cooperative checkpoint a query passes through (discovered by
counting, then replayed one by one):

* an abort raises :class:`~repro.exceptions.QueryCancelledError` /
  :class:`~repro.exceptions.DeadlineExceededError` tagged with the
  checkpoint it unwound from, never a partial result;
* re-running the same query on the *same service* (same caches, same
  key material) immediately after the abort is bit-identical to a
  clean run on a fresh service — aborts never poison a cache;
* with a fake clock, a deadline expiring mid-execution aborts at the
  next checkpoint (bounded abort latency, no real sleeps anywhere).

Checked on the paper's running example and on TPC-H Q3/Q5/Q18 under
the UAPenc scenario.
"""

import pytest

from repro.core.budget import CancellationToken, QueryBudget
from repro.engine import Table
from repro.exceptions import (
    DeadlineExceededError,
    QueryAbortedError,
    QueryCancelledError,
)
from repro.paper_example import build_running_example
from repro.service import QueryService
from repro.tpch import TPCH_UDFS, all_scenarios, build_tpch_schema, \
    generate, query
from repro.tpch.schema import table_owners

RUNNING_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T having avg(P)>100")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class CountingToken(CancellationToken):
    """Counts every checkpoint a query passes through."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.checks = 0
        self.wheres: list[str] = []

    def check(self, where: str) -> None:
        self.checks += 1
        self.wheres.append(where)
        super().check(where)


class CancelAtToken(CountingToken):
    """Cancels itself upon reaching the n-th checkpoint."""

    def __init__(self, cancel_at: int, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cancel_at = cancel_at

    def check(self, where: str) -> None:
        if self.checks + 1 >= self.cancel_at:
            self.cancel(f"chaos cancel at checkpoint #{self.cancel_at}")
        super().check(where)


def assert_rows_equal(a: Table, b: Table):
    assert a.columns == b.columns
    assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))


def checkpoint_positions(total: int, samples: int = 8) -> list[int]:
    """A deterministic spread of cancel positions across ``total``."""
    if total <= samples:
        return list(range(1, total + 1))
    step = total / samples
    positions = sorted({max(1, round(step * i)) for i in range(1, samples)})
    return positions + [total]


class TestRunningExampleCancellation:
    @staticmethod
    def make_tables(rows=40):
        hosp = Table("Hosp", ("S", "B", "D", "T"), [
            (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
             "tpa" if i % 2 else "surgery") for i in range(rows)])
        ins = Table("Ins", ("C", "P"), [(f"s{i}", 40.0 + 7.0 * (i % 30))
                                        for i in range(rows)])
        return {"H": {"Hosp": hosp}, "I": {"Ins": ins}}

    def make_service(self, clock=None):
        example = build_running_example()
        kwargs = {}
        if clock is not None:
            kwargs = dict(clock=clock, sleeper=clock.sleep,
                          latency_seconds=0.01)
        else:
            kwargs = dict(sleeper=lambda seconds: None)
        return QueryService(example.schema, example.policy,
                            example.subjects, example.owners,
                            self.make_tables(), user="U", **kwargs)

    @pytest.fixture(scope="class")
    def clean(self):
        return self.make_service().execute(RUNNING_SQL)

    @pytest.fixture(scope="class")
    def total_checkpoints(self):
        token = CountingToken()
        self.make_service().execute(RUNNING_SQL, token=token)
        return token.checks

    def test_query_passes_many_checkpoints(self, total_checkpoints):
        # The abort-latency bound is only meaningful if checkpoints are
        # dense: entry, planning, dispatch, per-fragment, per-chunk.
        assert total_checkpoints >= 5

    def test_cancel_at_every_sampled_checkpoint_is_clean(
            self, clean, total_checkpoints):
        for position in checkpoint_positions(total_checkpoints):
            service = self.make_service()
            token = CancelAtToken(position)
            with pytest.raises(QueryCancelledError) as excinfo:
                service.execute(RUNNING_SQL, token=token)
            assert f"#{position}" in str(excinfo.value)
            assert excinfo.value.where == token.wheres[-1]
            assert isinstance(excinfo.value, QueryAbortedError)
            # The same (aborted) service replays clean: no cache got a
            # partial entry, no key material was corrupted.
            rerun = service.execute(RUNNING_SQL)
            assert_rows_equal(rerun.result, clean.result)

    def test_cancel_past_the_last_checkpoint_completes(
            self, clean, total_checkpoints):
        token = CancelAtToken(total_checkpoints + 1)
        outcome = self.make_service().execute(RUNNING_SQL, token=token)
        assert_rows_equal(outcome.result, clean.result)

    def test_deadline_mid_execution_aborts_and_leaves_caches_clean(
            self, clean):
        clock = FakeClock()
        service = self.make_service(clock=clock)
        # Each simulated provider call sleeps 10ms on the fake clock, so
        # a 15ms budget dies during fragment execution, not at entry.
        with pytest.raises(DeadlineExceededError) as excinfo:
            service.execute(RUNNING_SQL,
                            budget=QueryBudget(deadline_seconds=0.015))
        assert excinfo.value.where.startswith(("runtime:", "pool:",
                                               "service:"))
        assert excinfo.value.deadline_seconds == pytest.approx(0.015)
        rerun = service.execute(RUNNING_SQL)
        assert_rows_equal(rerun.result, clean.result)

    def test_generous_deadline_reports_remaining_budget(self, clean):
        clock = FakeClock()
        service = self.make_service(clock=clock)
        outcome = service.execute(
            RUNNING_SQL, budget=QueryBudget(deadline_seconds=1000.0))
        assert_rows_equal(outcome.result, clean.result)
        assert outcome.budget.deadline_seconds == 1000.0
        assert 0.0 < outcome.budget_remaining_seconds < 1000.0
        assert "budget[" in outcome.describe()

    def test_abort_carries_the_partial_trace(self):
        clock = FakeClock()
        service = self.make_service(clock=clock)
        with pytest.raises(DeadlineExceededError) as excinfo:
            service.execute(RUNNING_SQL,
                            budget=QueryBudget(deadline_seconds=0.015))
        trace = excinfo.value.trace
        assert trace is not None
        # At 15ms against 10ms-per-call latency at most one full
        # fragment wave completed — the trace is genuinely partial.
        assert len(trace.fragments_run) < len(
            self.make_service().execute(RUNNING_SQL).trace.fragments_run)


class TestTpchCancellation:
    SCALE = 0.002

    @pytest.fixture(scope="class")
    def tpch_setup(self):
        schema = build_tpch_schema(self.SCALE)
        data = generate(scale=self.SCALE, seed=7)
        scenario_obj = all_scenarios(schema)["UAPenc"]
        authority_tables = {"A1": {}, "A2": {}}
        for name, owner in table_owners().items():
            authority_tables[owner][name] = data.table(name)
        return schema, scenario_obj, authority_tables

    def make_service(self, tpch_setup):
        schema, scenario_obj, authority_tables = tpch_setup
        return QueryService(schema, scenario_obj.policy,
                            scenario_obj.subjects, scenario_obj.owners,
                            authority_tables, user=scenario_obj.user,
                            udfs=TPCH_UDFS,
                            sleeper=lambda seconds: None)

    @pytest.fixture(scope="class")
    def clean_results(self, tpch_setup):
        service = self.make_service(tpch_setup)
        return {number: service.execute(query(number).sql).result
                for number in (3, 5, 18)}

    @pytest.mark.parametrize("number", [3, 5, 18])
    def test_cancel_chaos_then_rerun_is_bit_identical(
            self, tpch_setup, clean_results, number):
        counter = CountingToken()
        probe = self.make_service(tpch_setup)
        probe.execute(query(number).sql, token=counter)
        service = self.make_service(tpch_setup)
        aborted = 0
        for position in checkpoint_positions(counter.checks, samples=4):
            token = CancelAtToken(position)
            try:
                service.execute(query(number).sql, token=token)
            except QueryCancelledError:
                aborted += 1
            else:
                # Warm caches shorten later runs: the run finished
                # before reaching the cancel position, which is fine —
                # but only if it genuinely passed fewer checkpoints.
                assert token.checks < position
            rerun = service.execute(query(number).sql)
            assert_rows_equal(rerun.result, clean_results[number])
        assert aborted >= 1  # position 1 always aborts at entry

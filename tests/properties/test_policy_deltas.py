"""Incremental policy engine ≡ from-scratch recomputation (ISSUE 6).

Randomized grant/revoke streams drive the delta journal and every
delta-aware consumer; after each mutation the incrementally maintained
state must match a from-scratch recomputation exactly:

* :class:`~repro.core.candidates.IncrementalCandidates` must produce the
  same Λ as :func:`~repro.core.candidates.compute_candidates` at every
  policy version — including under :data:`~repro.core.authorization.ANY`
  churn, revoke-then-regrant, and a truncated or disabled journal;
* :func:`~repro.core.assignment.assign` running over the reconciled
  :class:`~repro.core.plancache.AssignmentCache`, a shared
  :class:`~repro.core.assignment.EdgeTableCache` and incremental
  candidates must pick the same assignment at the same cost as an
  uncached, cache-free run — on the running example and the TPC-H
  ablation queries (Q3/Q5/Q18) alike, and must refuse exactly when the
  fresh run refuses.

The streams are seeded, so failures reproduce deterministically.
"""

import random

import pytest

from repro.core.assignment import EdgeTableCache, assign
from repro.core.authorization import ANY, Authorization, Policy
from repro.core.candidates import IncrementalCandidates, compute_candidates
from repro.core.plancache import AssignmentCache
from repro.cost.pricing import PriceList
from repro.exceptions import ReproError


def churn(rng, policy, schema, relation_names, subject_pool):
    """Apply one random *effective* policy mutation.

    Revokes the (relation, subject) pair's rule if present, then — most
    of the time — grants a fresh random rule for the pair, so the stream
    mixes plain revokes, plain grants, and revoke-then-regrant (the rule
    occasionally comes back identical to the one removed).
    """
    relation = schema.relation(rng.choice(relation_names))
    subject = rng.choice(subject_pool)
    removed = policy.revoke(relation.name, subject)
    if removed is not None and rng.random() < 0.35:
        return
    names = list(relation.attribute_names)
    rng.shuffle(names)
    count = rng.randint(1, len(names))
    split = rng.randint(0, count)
    policy.grant(Authorization(
        relation, names[:split], names[split:count], subject))


def assert_same_candidates(plan, incremental, fresh):
    for node in plan.operations():
        assert incremental[node] == fresh[node], node.label()


class TestIncrementalCandidates:
    """Λ maintained via the delta journal ≡ Λ recomputed from scratch."""

    def test_running_example_stream(self, example):
        rng = random.Random(601)
        pool = list(example.subject_names) + [ANY]
        inc = IncrementalCandidates(
            example.plan, example.policy, example.subject_names)
        for step in range(60):
            churn(rng, example.policy, example.schema,
                  ["Hosp", "Ins"], pool)
            if step % 4 == 3:
                continue  # let deltas batch up between refreshes
            fresh = compute_candidates(
                example.plan, example.policy, example.subject_names)
            assert_same_candidates(example.plan, inc.current(), fresh)
        # The stream must actually have exercised the surgical path.
        assert inc.stats["subject_refreshes"] > 0
        assert inc.stats["subjects_kept"] > 0

    @pytest.mark.parametrize("limit", [0, 2])
    def test_truncated_journal_falls_back_to_full_refresh(self, example,
                                                          limit):
        # journal_limit=0 disables the journal outright; limit=2 with
        # batches of 3+ mutations truncates past the cached version.
        # Either way deltas_since returns None and every row refreshes.
        example.policy.journal_limit = limit
        rng = random.Random(602)
        pool = list(example.subject_names) + [ANY]
        inc = IncrementalCandidates(
            example.plan, example.policy, example.subject_names)
        for _ in range(8):
            for _ in range(3):
                churn(rng, example.policy, example.schema,
                      ["Hosp", "Ins"], pool)
            fresh = compute_candidates(
                example.plan, example.policy, example.subject_names)
            assert_same_candidates(example.plan, inc.current(), fresh)
        assert inc.stats["full_refreshes"] > 0

    def test_revoke_then_regrant_is_identity(self, example):
        inc = IncrementalCandidates(
            example.plan, example.policy, example.subject_names)
        before = {node.label(): inc.current()[node]
                  for node in example.plan.operations()}
        rule = example.policy.revoke("Ins", "Y")
        assert rule is not None
        example.policy.grant(rule)
        after = {node.label(): inc.current()[node]
                 for node in example.plan.operations()}
        assert after == before
        assert inc.stats["subject_refreshes"] > 0

    def test_random_scenario_stream(self, random_scenario):
        scenario = random_scenario
        rng = random.Random(1003)
        relation_names = [r.name for r in scenario.relations]
        pool = list(scenario.subjects) + [ANY]
        inc = IncrementalCandidates(
            scenario.plan, scenario.policy, scenario.subjects)
        for _ in range(30):
            churn(rng, scenario.policy, scenario.schema,
                  relation_names, pool)
            fresh = compute_candidates(
                scenario.plan, scenario.policy, scenario.subjects)
            assert_same_candidates(scenario.plan, inc.current(), fresh)


class TestCachedAssignMatchesFresh:
    """assign() over reconciled caches ≡ assign() with no caches at all."""

    def run_stream(self, plan, policy, subject_names, prices, user,
                   owners, schema, relation_names, pool, seed,
                   steps=25):
        rng = random.Random(seed)
        cache = AssignmentCache(maxsize=64)
        edge_cache = EdgeTableCache()
        inc = IncrementalCandidates(plan, policy, subject_names)
        agreements = 0
        for step in range(steps):
            churn(rng, policy, schema, relation_names, pool)

            def cached():
                return assign(plan, policy, subject_names, prices,
                              user=user, owners=owners, cache=cache,
                              edge_cache=edge_cache,
                              candidates=lambda: inc.current())

            try:
                fresh = assign(plan, policy, subject_names, prices,
                               user=user, owners=owners)
            except ReproError as error:
                with pytest.raises(type(error)):
                    cached()
                continue
            warm = cached()
            assert warm.cost.total_usd == pytest.approx(
                fresh.cost.total_usd, rel=1e-9), step
            assert {n.label(): s for n, s in warm.assignment.items()} == \
                {n.label(): s for n, s in fresh.assignment.items()}, step
            agreements += 1
        return agreements, cache, edge_cache

    def test_running_example_stream(self, example):
        prices = PriceList.from_subjects(example.subjects)
        pool = list(example.subject_names) + [ANY]
        agreements, cache, edge_cache = self.run_stream(
            example.plan, example.policy, example.subject_names, prices,
            "U", example.owners, example.schema, ["Hosp", "Ins"], pool,
            seed=1717)
        assert agreements > 0
        info = cache.info()
        reconciled = info["reconcile_kept"] + info["reconcile_evicted"] \
            + info["reconcile_flushed"]
        assert reconciled > 0
        assert edge_cache.info()["hits"] > 0

    @pytest.mark.parametrize("scenario_name", ["UA", "UAPmix"])
    @pytest.mark.parametrize("query_number", [3, 5, 18])
    def test_tpch_ablation_stream(self, scenario_name, query_number):
        from repro.tpch.queries import query_plan
        from repro.tpch.scenarios import scenario
        from repro.tpch.schema import build_tpch_schema

        schema = build_tpch_schema()
        bundle = scenario(scenario_name, schema)
        prices = PriceList.from_subjects(bundle.subjects)
        plan = query_plan(query_number, schema)
        relation_names = sorted(schema.relations)
        pool = list(bundle.subject_names) + [ANY]
        agreements, _, _ = self.run_stream(
            plan, bundle.policy, bundle.subject_names, prices,
            bundle.user, bundle.owners, schema, relation_names, pool,
            seed=900 + query_number, steps=12)
        assert agreements > 0

    def test_revoke_then_regrant_serves_identical_assignment(self,
                                                             example):
        prices = PriceList.from_subjects(example.subjects)
        cache = AssignmentCache(maxsize=64)
        edge_cache = EdgeTableCache()
        inc = IncrementalCandidates(
            example.plan, example.policy, example.subject_names)

        def run():
            return assign(example.plan, example.policy,
                          example.subject_names, prices, user="U",
                          owners=example.owners, cache=cache,
                          edge_cache=edge_cache,
                          candidates=lambda: inc.current())

        first = run()
        rule = example.policy.revoke("Ins", "Y")
        example.policy.grant(rule)
        second = run()
        # Y's churn evicts the memoised entry (it is a dependency), and
        # the recomputation lands on the same optimum.
        assert cache.info()["reconcile_evicted"] >= 1
        assert second.cost.total_usd == pytest.approx(
            first.cost.total_usd, rel=1e-12)
        assert {n.label(): s for n, s in second.assignment.items()} == \
            {n.label(): s for n, s in first.assignment.items()}

    def test_journal_disabled_policy_still_correct(self, example):
        # journal_limit=0 turns every reconcile into a flush: the cached
        # path degrades to PR 2 behaviour but must never serve staleness.
        example.policy.journal_limit = 0
        prices = PriceList.from_subjects(example.subjects)
        pool = list(example.subject_names) + [ANY]
        agreements, cache, _ = self.run_stream(
            example.plan, example.policy, example.subject_names, prices,
            "U", example.owners, example.schema, ["Hosp", "Ins"], pool,
            seed=4242, steps=12)
        assert agreements > 0
        assert cache.info()["reconcile_flushed"] > 0


class TestJournalSemantics:
    """deltas_since contract details the caches rely on."""

    def test_deltas_since_windows(self, example):
        policy = example.policy
        v0 = policy.version
        policy.revoke("Hosp", "Z")
        policy.revoke("Ins", "X")
        deltas = policy.deltas_since(v0)
        assert [d.version for d in deltas] == [v0 + 1, v0 + 2]
        assert policy.deltas_since(policy.version) == ()
        assert policy.deltas_since(policy.version + 1) is None  # future

    def test_truncation_returns_none(self):
        from repro.core.schema import Relation, Schema

        schema = Schema()
        relation = schema.add(Relation("R", ["a", "b"]))
        policy = Policy(schema, journal_limit=2)
        v0 = policy.version
        for subject in ("S1", "S2", "S3"):
            policy.grant(Authorization(relation, ["a"], [], subject))
        assert policy.deltas_since(v0) is None
        assert len(policy.deltas_since(policy.version - 2)) == 2

    def test_any_delta_touches_every_subject(self, example):
        v0 = example.policy.version
        assert example.policy.revoke("Hosp", ANY) is not None
        (delta,) = example.policy.deltas_since(v0)
        assert delta.any_subject
        assert delta.touches({"nobody-in-particular"})

    def test_disjoint_delta_does_not_touch(self, example):
        relation = example.schema.relation("Hosp")
        v0 = example.policy.version
        example.policy.grant(Authorization(relation, ["T"], [], "W"))
        (delta,) = example.policy.deltas_since(v0)
        assert not delta.touches({"Y", "Z"})
        assert not delta.touches({"W"}, frozenset({"P"}))
        assert delta.touches({"W"}, frozenset({"T"}))

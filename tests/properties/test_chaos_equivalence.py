"""Chaos equivalence: seeded fault schedules never change results.

The failover contract's headline property — for any deterministic fault
schedule the runtime can recover from (transient faults, latency
spikes, provider death), the recovered result is *bit-identical* to the
fault-free run, every re-dispatch target passes
:func:`verify_assignment`, and enforcement failures (tampering,
spoofing) still raise instead of being retried.  Checked on the paper's
running example and on TPC-H Q3/Q5/Q18 under the UAPenc scenario.
"""

import pytest

from repro.core.visibility import verify_assignment
from repro.distributed import FaultInjector
from repro.distributed import runtime as runtime_module
from repro.exceptions import CryptoError, DispatchError
from repro.paper_example import build_running_example
from repro.engine import Table
from repro.service import QueryService
from repro.tpch import TPCH_UDFS, all_scenarios, build_tpch_schema, \
    generate, query
from repro.tpch.schema import table_owners

RUNNING_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T having avg(P)>100")

#: Fault schedules replayed against every workload.  Each entry maps
#: subject → FaultSpec kwargs; ``kill`` entries die before the run.
SCHEDULES = {
    "transient-bursts": {
        "set": {"X": dict(transient_error_rate=0.4),
                "Y": dict(crash_on_call=1),
                "Z": dict(transient_error_rate=0.4)},
        "kill": (),
    },
    "latency-spikes": {
        "set": {"X": dict(latency_spike_seconds=0.2,
                          latency_spike_rate=0.5),
                "Y": dict(latency_spike_seconds=0.4,
                          latency_spike_rate=0.5,
                          transient_error_rate=0.2)},
        "kill": (),
    },
    "provider-death": {
        "set": {"X": dict(transient_error_rate=0.2)},
        "kill": ("Y",),
    },
    "rolling-carnage": {
        "set": {"X": dict(die_after_calls=1),
                "Z": dict(crash_on_call=1, crash_is_fatal=True)},
        "kill": ("Y",),
    },
}


def make_injector(schedule_name, seed, subject_names):
    schedule = SCHEDULES[schedule_name]
    injector = FaultInjector(seed=seed)
    for subject, kwargs in schedule["set"].items():
        if subject in subject_names:
            injector.set_fault(subject, **kwargs)
    for subject in schedule["kill"]:
        if subject in subject_names:
            injector.kill(subject)
    return injector


def run_and_audit(service, sql):
    """Execute, re-verifying every failover event independently."""
    outcome = service.execute(sql)
    for event in outcome.failovers:
        assert event.verified
        verify_assignment(outcome.assignment.extended.plan,
                          service.policy, event.repaired_assignment)
    return outcome


def assert_rows_equal(a: Table, b: Table):
    assert a.columns == b.columns
    assert sorted(map(repr, a.rows)) == sorted(map(repr, b.rows))


class TestRunningExampleChaos:
    @staticmethod
    def make_tables(rows=40):
        hosp = Table("Hosp", ("S", "B", "D", "T"), [
            (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
             "tpa" if i % 2 else "surgery") for i in range(rows)])
        ins = Table("Ins", ("C", "P"), [(f"s{i}", 40.0 + 7.0 * (i % 30))
                                        for i in range(rows)])
        return {"H": {"Hosp": hosp}, "I": {"Ins": ins}}

    def make_service(self, injector=None):
        example = build_running_example()
        return QueryService(example.schema, example.policy,
                            example.subjects, example.owners,
                            self.make_tables(), user="U",
                            fault_injector=injector,
                            sleeper=lambda seconds: None)

    @pytest.fixture(scope="class")
    def clean(self):
        return self.make_service().execute(RUNNING_SQL)

    @pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [1, 7])
    def test_chaos_matches_fault_free(self, clean, schedule_name, seed):
        injector = make_injector(schedule_name, seed,
                                 {"X", "Y", "Z", "U"})
        outcome = run_and_audit(self.make_service(injector), RUNNING_SQL)
        assert_rows_equal(outcome.result, clean.result)
        if SCHEDULES[schedule_name]["kill"]:
            assert outcome.failed_over

    def test_chaos_replay_is_deterministic(self):
        describes = []
        for _ in range(2):
            injector = make_injector("transient-bursts", 13,
                                     {"X", "Y", "Z", "U"})
            outcome = run_and_audit(self.make_service(injector),
                                    RUNNING_SQL)
            describes.append((sorted(map(repr, outcome.result.rows)),
                              outcome.retries, outcome.attempts,
                              tuple((e.fragment_id, e.failed_subject,
                                     e.replacement)
                                    for e in outcome.failovers)))
        assert describes[0] == describes[1]

    def test_tampering_still_raises_under_chaos(self, monkeypatch):
        injector = make_injector("transient-bursts", 3,
                                 {"X", "Y", "Z", "U"})
        service = self.make_service(injector)
        original = runtime_module.seal_envelope

        def tampering_seal(payload, sender_private, recipient_public):
            blob = original(payload, sender_private, recipient_public)
            return blob[:-1] + bytes([blob[-1] ^ 0x55])

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            tampering_seal)
        with pytest.raises((DispatchError, CryptoError)):
            service.execute(RUNNING_SQL)
        # Integrity violations must not be retried as provider faults.
        assert sum(injector.calls(s.name)
                   for s in service.subjects) == 0

    def test_spoofing_still_raises_under_chaos(self, monkeypatch):
        from repro.crypto.rsa import generate_keypair

        _, impostor_private = generate_keypair(512)
        injector = make_injector("provider-death", 3,
                                 {"X", "Y", "Z", "U"})
        service = self.make_service(injector)
        original = runtime_module.seal_envelope

        def spoofing_seal(payload, sender_private, recipient_public):
            return original(payload, impostor_private, recipient_public)

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            spoofing_seal)
        with pytest.raises(DispatchError, match="signature"):
            service.execute(RUNNING_SQL)
        assert sum(injector.calls(s.name)
                   for s in service.subjects) == 0


class TestTpchChaos:
    SCALE = 0.002

    @pytest.fixture(scope="class")
    def tpch_setup(self):
        schema = build_tpch_schema(self.SCALE)
        data = generate(scale=self.SCALE, seed=7)
        scenario_obj = all_scenarios(schema)["UAPenc"]
        authority_tables = {"A1": {}, "A2": {}}
        for name, owner in table_owners().items():
            authority_tables[owner][name] = data.table(name)
        return schema, scenario_obj, authority_tables

    def make_service(self, tpch_setup, injector=None):
        schema, scenario_obj, authority_tables = tpch_setup
        return QueryService(schema, scenario_obj.policy,
                            scenario_obj.subjects, scenario_obj.owners,
                            authority_tables, user=scenario_obj.user,
                            udfs=TPCH_UDFS, fault_injector=injector,
                            sleeper=lambda seconds: None)

    @pytest.fixture(scope="class")
    def clean_results(self, tpch_setup):
        service = self.make_service(tpch_setup)
        return {number: service.execute(query(number).sql).result
                for number in (3, 5, 18)}

    @pytest.mark.parametrize("number", [3, 5, 18])
    def test_transient_chaos_matches_fault_free(self, tpch_setup,
                                                clean_results, number):
        subject_names = {s.name for s in tpch_setup[1].subjects}
        injector = make_injector("transient-bursts", number,
                                 subject_names)
        outcome = run_and_audit(self.make_service(tpch_setup, injector),
                                query(number).sql)
        assert_rows_equal(outcome.result, clean_results[number])
        assert outcome.retries >= 0

    @pytest.mark.parametrize("number", [3, 5, 18])
    def test_provider_death_matches_fault_free(self, tpch_setup,
                                               clean_results, number):
        schema, scenario_obj, authority_tables = tpch_setup
        # Kill a compute subject the clean plan actually uses, so the
        # run must fail over (authorities and the user are immortal).
        clean_service = self.make_service(tpch_setup)
        clean = clean_service.execute(query(number).sql)
        owners = set(scenario_obj.owners.values())
        assigned = sorted(
            s for s in set(clean.assignment.extended.assignment.values())
            if s not in owners and s != scenario_obj.user)
        if not assigned:
            pytest.skip("plan uses no killable compute subject")
        injector = FaultInjector(seed=number)
        injector.kill(assigned[0])
        outcome = run_and_audit(self.make_service(tpch_setup, injector),
                                query(number).sql)
        assert outcome.failed_over
        assert_rows_equal(outcome.result, clean_results[number])
        assert assigned[0] not in {e.replacement
                                   for e in outcome.failovers}

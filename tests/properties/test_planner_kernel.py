"""Property tests for the planner's bitset kernel and memoized DP.

Two equivalence obligations from ISSUE 2:

* the mask-backed profile algebra and Definition 4.1/4.2 checks of
  :mod:`repro.core.attrsets` agree with the frozenset semantics of
  :mod:`repro.core.profile` / :mod:`repro.core.visibility` on random
  profiles and views;
* the decomposed, memoized DP (``search_impl="fast"``) picks
  cost-identical assignments to the per-pair reference implementation on
  the running example, the TPC-H ablation queries (Q3/Q5/Q18), and the
  random scenarios.
"""

import random

import pytest

from repro.core.assignment import assign
from repro.core.attrsets import (
    AttributeUniverse,
    relation_authorized,
)
from repro.core.authorization import SubjectView
from repro.core.equivalence import EquivalenceClasses
from repro.core.profile import RelationProfile
from repro.core.visibility import check_relation, is_authorized_for_relation
from repro.cost.pricing import PriceList
from repro.exceptions import (
    NoCandidateError,
    ProfileError,
    ReproError,
)

POOL = list("ABCDEFGHJK")


def random_profile(rng: random.Random) -> RelationProfile:
    """A random, internally consistent relation profile."""
    shuffled = POOL[:]
    rng.shuffle(shuffled)
    split = rng.randint(0, len(shuffled))
    vp = frozenset(shuffled[:split][:rng.randint(0, 5)])
    ve = frozenset(shuffled[split:][:rng.randint(0, 5)])
    ip = frozenset(rng.sample(POOL, rng.randint(0, 3)))
    ie = frozenset(rng.sample(POOL, rng.randint(0, 3)))
    classes = [
        rng.sample(POOL, rng.randint(2, 3))
        for _ in range(rng.randint(0, 3))
    ]
    return RelationProfile(
        visible_plaintext=vp,
        visible_encrypted=ve,
        implicit_plaintext=ip,
        implicit_encrypted=ie,
        equivalences=EquivalenceClasses(classes),
    )


def random_view(rng: random.Random) -> SubjectView:
    shuffled = POOL[:]
    rng.shuffle(shuffled)
    split = rng.randint(0, len(shuffled))
    return SubjectView(
        subject="S",
        plaintext=frozenset(shuffled[:split][:rng.randint(0, 7)]),
        encrypted=frozenset(shuffled[split:][:rng.randint(0, 7)]),
    )


class TestMaskChecksMatchFrozensets:
    """Definition 4.1 over masks ≡ over frozensets, on random inputs."""

    def test_relation_authorized_equivalence(self):
        rng = random.Random(20170917)
        universe = AttributeUniverse()
        for _ in range(500):
            profile = random_profile(rng)
            view = random_view(rng)
            expected = is_authorized_for_relation(view, profile)
            assert check_relation(view, profile).authorized == expected
            actual = relation_authorized(
                view.masks(universe), profile.masks(universe))
            assert actual == expected, (view, profile)

    def test_mask_round_trip(self):
        rng = random.Random(7)
        universe = AttributeUniverse()
        for _ in range(200):
            profile = random_profile(rng)
            assert profile.masks(universe).to_profile() == profile

    def test_universe_interning_is_stable(self):
        universe = AttributeUniverse()
        early = universe.mask(["A", "B"])
        universe.mask(["Z1", "Z2", "Z3"])  # grow the universe
        assert universe.mask(["A", "B"]) == early
        assert universe.names(early) == frozenset({"A", "B"})


class TestMaskAlgebraMatchesFrozensets:
    """The Figure 2 algebra on masks ≡ on RelationProfile."""

    def check_op(self, universe, profile, op, mask_op):
        """Apply both forms; identical results or identical errors."""
        try:
            expected = op(profile)
            failed = None
        except ProfileError as error:
            expected = None
            failed = error
        masks = profile.masks(universe)
        if failed is not None:
            with pytest.raises(ProfileError):
                mask_op(masks)
            return
        assert mask_op(masks).to_profile() == expected

    def test_unary_operations(self):
        rng = random.Random(42)
        universe = AttributeUniverse()
        for _ in range(300):
            profile = random_profile(rng)
            attrs = frozenset(rng.sample(POOL, rng.randint(0, 4)))
            mask = universe.mask(attrs)
            case = rng.randrange(5)
            if case == 0:
                if not attrs:
                    continue  # empty projection is rejected upstream
                self.check_op(universe, profile,
                              lambda p: p.project(attrs),
                              lambda m: m.project(mask))
            elif case == 1:
                self.check_op(universe, profile,
                              lambda p: p.add_implicit(attrs),
                              lambda m: m.add_implicit(mask))
            elif case == 2:
                self.check_op(universe, profile,
                              lambda p: p.add_equivalence(attrs),
                              lambda m: m.add_equivalence(mask))
            elif case == 3:
                self.check_op(universe, profile,
                              lambda p: p.encrypt(attrs),
                              lambda m: m.encrypt(mask))
            else:
                self.check_op(universe, profile,
                              lambda p: p.decrypt(attrs),
                              lambda m: m.decrypt(mask))

    def test_combine(self):
        rng = random.Random(99)
        universe = AttributeUniverse()
        for _ in range(200):
            left = random_profile(rng)
            right = random_profile(rng)
            try:
                expected = left.combine(right)
            except ProfileError:
                # overlap of one side's vp with the other's ve: the mask
                # form must reject it too.
                with pytest.raises(ProfileError):
                    left.masks(universe).combine(right.masks(universe))
                continue
            actual = left.masks(universe).combine(right.masks(universe))
            assert actual.to_profile() == expected

    def test_chained_operations_preserve_equivalences(self):
        universe = AttributeUniverse()
        profile = RelationProfile(
            visible_plaintext=frozenset("ABC"),
            visible_encrypted=frozenset("D"),
        )
        chained = (
            profile.masks(universe)
            .add_equivalence(universe.mask("AB"))
            .add_equivalence(universe.mask("BC"))
            .encrypt(universe.mask("A"))
        )
        expected = (
            profile.add_equivalence("AB").add_equivalence("BC")
            .encrypt("A")
        )
        assert chained.to_profile() == expected
        assert len(chained.eq) == 1  # {A,B,C} merged


class TestEdgeTableMatchesEdgeCost:
    """_EdgeTable.cost ≡ the reference edge_cost, pair by pair."""

    def build_searcher(self, example):
        from repro.core.assignment import _AssignmentSearch
        from repro.core.candidates import compute_candidates
        from repro.core.requirements import (
            chosen_schemes,
            infer_plaintext_requirements,
        )
        from repro.cost.estimator import PlanEstimator

        prices = PriceList.from_subjects(example.subjects)
        requirements = infer_plaintext_requirements(example.plan)
        candidates = compute_candidates(
            example.plan, example.policy, example.subject_names,
            requirements)
        schemes = chosen_schemes(example.plan)
        return _AssignmentSearch(
            plan=example.plan, policy=example.policy,
            candidates=candidates, requirements=requirements,
            schemes=schemes, prices=prices,
            estimator=PlanEstimator(schemes),
            owners=dict(example.owners), user="U",
        ), candidates

    def test_every_pair_on_the_running_example(self, example):
        searcher, candidates = self.build_searcher(example)
        for mode in ("optimistic", "conservative"):
            searcher.edge_scheme_mode = mode
            for node in example.plan.operations():
                receivers = sorted(candidates[node])
                for child in node.children:
                    edge = searcher.edge_table(child, node)
                    senders = [searcher.owner_of(child)] if child.is_leaf \
                        else sorted(candidates[child])
                    for receiver in receivers:
                        for sender in senders:
                            assert edge.cost(sender, receiver) == \
                                pytest.approx(
                                    searcher.edge_cost(
                                        child, sender, node, receiver),
                                    rel=1e-12, abs=1e-18,
                                ), (mode, sender, receiver, node.label())


class TestFastDpMatchesReference:
    """search_impl="fast" ≡ search_impl="reference" (cost-identical)."""

    TOLERANCE = 1e-3

    def assert_equivalent(self, plan_builder, policy, subjects, prices,
                          user, owners=None):
        fast = assign(plan_builder(), policy, subjects, prices, user=user,
                      owners=owners)
        reference = assign(plan_builder(), policy, subjects, prices,
                           user=user, owners=owners,
                           search_impl="reference")
        drift = abs(fast.cost.total_usd - reference.cost.total_usd) \
            / max(reference.cost.total_usd, 1e-18)
        assert drift <= self.TOLERANCE, (
            f"fast={fast.cost.total_usd} reference="
            f"{reference.cost.total_usd}"
        )

    def test_running_example(self, example):
        prices = PriceList.from_subjects(example.subjects)
        fast = assign(example.plan, example.policy, example.subject_names,
                      prices, user="U", owners=example.owners)
        reference = assign(example.plan, example.policy,
                           example.subject_names, prices, user="U",
                           owners=example.owners, search_impl="reference")
        assert fast.cost.total_usd == pytest.approx(
            reference.cost.total_usd, rel=self.TOLERANCE)
        # On the running example the choice itself must agree, too.
        fast_choice = {n.label(): s for n, s in fast.assignment.items()}
        ref_choice = {n.label(): s for n, s in reference.assignment.items()}
        assert fast_choice == ref_choice

    @pytest.mark.parametrize("scenario_name", ["UAPenc", "UAPmix"])
    @pytest.mark.parametrize("query_number", [3, 5, 18])
    def test_tpch_ablation_queries(self, scenario_name, query_number):
        from repro.tpch.queries import query_plan
        from repro.tpch.scenarios import scenario
        from repro.tpch.schema import build_tpch_schema

        schema = build_tpch_schema()
        bundle = scenario(scenario_name, schema)
        prices = PriceList.from_subjects(bundle.subjects)
        self.assert_equivalent(
            lambda: query_plan(query_number, schema), bundle.policy,
            bundle.subject_names, prices, user=bundle.user,
            owners=bundle.owners,
        )

    def test_random_scenarios(self, random_scenario):
        scenario = random_scenario
        prices = PriceList.paper_defaults(
            providers=["S1", "S2", "S3"], authorities=[], user="U")
        try:
            fast = assign(scenario.plan, scenario.policy,
                          scenario.subjects, prices, user="U")
        except (NoCandidateError, ReproError):
            pytest.skip("unassignable scenario")
        reference = assign(scenario.plan, scenario.policy,
                           scenario.subjects, prices, user="U",
                           search_impl="reference")
        assert fast.cost.total_usd == pytest.approx(
            reference.cost.total_usd, rel=self.TOLERANCE)

    def test_greedy_and_exhaustive_unaffected(self, example):
        prices = PriceList.from_subjects(example.subjects)
        for strategy in ("greedy", "exhaustive"):
            fast = assign(example.plan, example.policy,
                          example.subject_names, prices, user="U",
                          owners=example.owners, strategy=strategy)
            reference = assign(example.plan, example.policy,
                               example.subject_names, prices, user="U",
                               owners=example.owners, strategy=strategy,
                               search_impl="reference")
            assert fast.cost.total_usd == pytest.approx(
                reference.cost.total_usd, rel=self.TOLERANCE)

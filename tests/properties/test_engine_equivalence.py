"""Hypothesis: encrypted evaluation agrees with plaintext evaluation.

For random rows and random conditions, filtering/grouping/joining over
deterministic, OPE, and Paillier representations must produce the same
answers as plaintext execution — the engine-level counterpart of the
model's claim that encryption only changes *visibility*, not semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.core.keys import QueryKey
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Join,
    Selection,
)
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.requirements import EncryptionScheme
from repro.core.schema import Relation
from repro.crypto.keymanager import KeyStore
from repro.engine import Executor, Table
from repro.engine.codec import encrypt_value

ROWS = st.lists(
    st.tuples(st.integers(0, 8), st.integers(-50, 50)),
    min_size=0, max_size=30,
)
OPS = st.sampled_from([ComparisonOp.EQ, ComparisonOp.NEQ, ComparisonOp.LT,
                       ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE])

R = Relation("R", ["k", "v"], cardinality=30)
S = Relation("S", ["j", "w"], cardinality=30)


def encrypted_catalog(rows, scheme, attribute="v"):
    store = KeyStore.generate(
        [QueryKey(frozenset({attribute}), scheme)])
    material = store.material_for_attribute(attribute)
    position = 1 if attribute == "v" else 0
    enc_rows = [
        tuple(encrypt_value(material, cell) if i == position else cell
              for i, cell in enumerate(row))
        for row in rows
    ]
    return {"R": Table("R", ("k", "v"), enc_rows)}, store


class TestSelectionEquivalence:
    @given(ROWS, OPS, st.integers(-50, 50))
    @settings(max_examples=25, deadline=None)
    def test_ope_range_selection(self, rows, op, threshold):
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(
            Selection(BaseRelationNode(R),
                      AttributeValuePredicate("v", op, threshold)))
        catalog, store = encrypted_catalog(rows, EncryptionScheme.OPE)
        encrypted = Executor(catalog, keystore=store).execute(
            Selection(BaseRelationNode(R),
                      AttributeValuePredicate("v", op, threshold)))
        assert len(encrypted) == len(plain)
        assert sorted(r[0] for r in encrypted.rows) \
            == sorted(r[0] for r in plain.rows)

    @given(ROWS, st.integers(-50, 50))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_equality_selection(self, rows, needle):
        predicate = AttributeValuePredicate("v", ComparisonOp.EQ, needle)
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(
            Selection(BaseRelationNode(R), predicate))
        catalog, store = encrypted_catalog(
            rows, EncryptionScheme.DETERMINISTIC)
        encrypted = Executor(catalog, keystore=store).execute(
            Selection(BaseRelationNode(R), predicate))
        assert len(encrypted) == len(plain)


class TestAggregationEquivalence:
    @given(ROWS)
    @settings(max_examples=10, deadline=None)
    def test_paillier_sum_per_group(self, rows):
        node = GroupBy(BaseRelationNode(R), ["k"], Aggregate(
            AggregateFunction.SUM, "v", alias="total"))
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(node)
        from repro.core.operators import Decrypt

        store = KeyStore.generate([QueryKey(
            frozenset({"v", "total"}), EncryptionScheme.PAILLIER)])
        material = store.material_for_attribute("v")
        catalog = {"R": Table("R", ("k", "v"), [
            (k, encrypt_value(material, v)) for k, v in rows])}
        encrypted_plan = Decrypt(
            GroupBy(BaseRelationNode(R), ["k"], Aggregate(
                AggregateFunction.SUM, "v", alias="total")),
            ["total"],
        )
        encrypted = Executor(catalog, keystore=store).execute(
            encrypted_plan)
        got = {row[0]: row[1] for row in encrypted.rows}
        want = {row[0]: row[1] for row in plain.rows}
        assert got == want

    @given(ROWS)
    @settings(max_examples=10, deadline=None)
    def test_ope_min_per_group(self, rows):
        from repro.core.operators import Decrypt

        node = GroupBy(BaseRelationNode(R), ["k"], Aggregate(
            AggregateFunction.MIN, "v", alias="lo"))
        plain = Executor({"R": Table("R", ("k", "v"), rows)}).execute(node)
        # One key covering both the source and its alias, as Def. 6.1's
        # equivalence clustering produces in real plans.
        store = KeyStore.generate([QueryKey(
            frozenset({"v", "lo"}), EncryptionScheme.OPE)])
        material = store.material_for_attribute("v")
        catalog = {"R": Table("R", ("k", "v"), [
            (k, encrypt_value(material, v)) for k, v in rows])}
        encrypted_plan = Decrypt(
            GroupBy(BaseRelationNode(R), ["k"], Aggregate(
                AggregateFunction.MIN, "v", alias="lo")),
            ["lo"],
        )
        encrypted = Executor(catalog, keystore=store).execute(
            encrypted_plan)
        got = {row[0]: row[1] for row in encrypted.rows}
        want = {row[0]: row[1] for row in plain.rows}
        assert got == want


class TestJoinEquivalence:
    @given(ROWS, ROWS)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_equi_join(self, left_rows, right_rows):
        left = Table("R", ("k", "v"), left_rows)
        right = Table("S", ("j", "w"), right_rows)
        node = Join(BaseRelationNode(R), BaseRelationNode(S),
                    equals("k", "j"))
        plain = Executor({"R": left, "S": right}).execute(node)

        store = KeyStore.generate([QueryKey(
            frozenset({"k", "j"}), EncryptionScheme.DETERMINISTIC)])
        material = store.material_for_attribute("k")
        enc_left = Table("R", ("k", "v"), [
            (encrypt_value(material, k), v) for k, v in left_rows])
        enc_right = Table("S", ("j", "w"), [
            (encrypt_value(material, j), w) for j, w in right_rows])
        encrypted = Executor(
            {"R": enc_left, "S": enc_right}, keystore=store
        ).execute(Join(BaseRelationNode(R), BaseRelationNode(S),
                       equals("k", "j")))
        assert len(encrypted) == len(plain)
        assert sorted((r[1], r[3]) for r in encrypted.rows) \
            == sorted((r[1], r[3]) for r in plain.rows)


"""Token buckets, credit accounts, and the spend ledger."""

from __future__ import annotations

import pytest

from repro.cost.metering import CreditAccount, Ledger
from repro.exceptions import QuotaExceeded
from repro.gateway.quotas import TenantQuota, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Token bucket
# ----------------------------------------------------------------------
def test_bucket_starts_full_and_refills_with_time():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=2.0, burst=4.0, clock=clock)
    for _ in range(4):
        assert bucket.try_acquire() is None
    wait = bucket.try_acquire()
    assert wait == pytest.approx(0.5)  # 1 token at 2/s
    clock.advance(0.25)
    assert bucket.try_acquire() == pytest.approx(0.25)
    clock.advance(0.25)
    assert bucket.try_acquire() is None


def test_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=100.0, burst=2.0, clock=clock)
    clock.advance(1000.0)
    assert bucket.available() == pytest.approx(2.0)


def test_bucket_refusal_does_not_consume():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=1.0, burst=1.0, clock=clock)
    assert bucket.try_acquire() is None
    first = bucket.try_acquire()
    second = bucket.try_acquire()
    assert first == second == pytest.approx(1.0)


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_second=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_second=1.0, burst=0.5)
    bucket = TokenBucket(rate_per_second=1.0, burst=2.0)
    with pytest.raises(ValueError):
        bucket.try_acquire(0)
    with pytest.raises(ValueError):
        bucket.try_acquire(3.0)


# ----------------------------------------------------------------------
# Credit accounts
# ----------------------------------------------------------------------
def test_account_postpaid_overdraw_then_refusal():
    account = CreditAccount("t", credits_usd=1.0)
    assert account.admissible
    assert account.debit(0.75) == pytest.approx(0.25)
    assert account.admissible
    assert account.debit(0.75) == pytest.approx(-0.5)  # one overdraw
    assert not account.admissible
    assert account.spent_usd == pytest.approx(1.5)
    account.deposit(1.0)
    assert account.admissible


def test_unmetered_account_always_admissible_until_deposit():
    account = CreditAccount("t")
    assert account.unmetered and account.admissible
    account.debit(100.0)
    assert account.admissible
    assert account.spent_usd == pytest.approx(100.0)
    account.deposit(0.5)  # converts to metered
    assert not account.unmetered
    account.debit(1.0)
    assert not account.admissible


def test_account_validation():
    with pytest.raises(ValueError):
        CreditAccount("t", credits_usd=-1.0)
    account = CreditAccount("t", credits_usd=1.0)
    with pytest.raises(ValueError):
        account.debit(-0.5)
    with pytest.raises(ValueError):
        account.deposit(-0.5)


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
def test_ledger_sequences_totals_and_bounded_history():
    ledger = Ledger(history_limit=2)
    for index in range(3):
        entry = ledger.record("t", user="U", sql=f"q{index}",
                              cost_usd=0.25, wall_seconds=0.01,
                              dispatch_sequence=index + 10)
        assert entry.sequence == index + 1
    assert ledger.spend_usd("t") == pytest.approx(0.75)  # all three
    assert ledger.query_count("t") == 3
    retained = ledger.entries("t")
    assert [entry.sql for entry in retained] == ["q1", "q2"]
    assert retained[0].dispatch_sequence == 11
    assert ledger.totals() == {"t": pytest.approx(0.75)}


def test_ledger_merges_all_entries_in_sequence_order():
    ledger = Ledger()
    ledger.record("a", user="U", sql="1", cost_usd=0.0, wall_seconds=0)
    ledger.record("b", user="U", sql="2", cost_usd=0.0, wall_seconds=0)
    ledger.record("a", user="U", sql="3", cost_usd=0.0, wall_seconds=0)
    assert [e.sql for e in ledger.all_entries()] == ["1", "2", "3"]


# ----------------------------------------------------------------------
# The combined tenant quota gate
# ----------------------------------------------------------------------
def test_quota_rate_refusal_carries_refill_time_and_spend():
    clock = FakeClock()
    ledger = Ledger()
    quota = TenantQuota("t", rate_per_second=1.0, burst=1.0, clock=clock)
    quota.check(ledger)  # takes the only token
    ledger.record("t", user="U", sql="q", cost_usd=0.125, wall_seconds=0)
    with pytest.raises(QuotaExceeded) as excinfo:
        quota.check(ledger)
    refusal = excinfo.value
    assert refusal.reason == "rate"
    assert refusal.tenant == "t"
    assert refusal.retry_after_seconds == pytest.approx(1.0)
    assert refusal.spent_usd == pytest.approx(0.125)
    clock.advance(1.0)
    quota.check(ledger)  # token came back


def test_quota_credit_refusal_takes_no_rate_token():
    clock = FakeClock()
    ledger = Ledger()
    quota = TenantQuota("t", rate_per_second=1.0, burst=1.0,
                        credits_usd=0.5, clock=clock)
    quota.check(ledger)
    quota.settle(0.75)  # overdraws
    ledger.record("t", user="U", sql="q", cost_usd=0.75, wall_seconds=0)
    clock.advance(10.0)  # bucket is full again — credits still gate
    with pytest.raises(QuotaExceeded) as excinfo:
        quota.check(ledger)
    assert excinfo.value.reason == "credits"
    assert excinfo.value.retry_after_seconds is None
    assert excinfo.value.spent_usd == pytest.approx(0.75)
    assert quota.bucket.available() == pytest.approx(1.0)  # untouched


def test_quota_unlimited_dimensions():
    ledger = Ledger()
    quota = TenantQuota("t")  # no rate, no credits
    for _ in range(100):
        quota.check(ledger)

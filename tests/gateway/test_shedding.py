"""Budgets at the gateway: dequeue shedding, predictive admission.

Covers the graceful-degradation half of the deadline work: queued
entries that die before dispatch are settled without planning, the
latency/cost predictor refuses work that cannot meet its budget, tenant
default budgets merge under per-query requests, and
``close(drain=True)`` flushes an expired backlog instead of running it.
"""

from __future__ import annotations

import threading
import types

import pytest

from helpers import parse_prometheus
from repro.core.budget import CancellationToken, QueryBudget
from repro.engine.table import Table
from repro.exceptions import (
    DeadlineExceededError,
    QueryCancelledError,
    SheddedError,
)
from repro.gateway import Gateway, TenantConfig, TenantQuota


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeService:
    """Stand-in service with controllable wall time / cost / blocking."""

    user = "U"

    def __init__(self, wall_seconds: float = 0.001,
                 cost_usd: float = 0.001,
                 gate: threading.Event | None = None) -> None:
        self.wall_seconds = wall_seconds
        self.cost_usd = cost_usd
        self.gate = gate
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def execute(self, sql: str, user: str | None = None, token=None):
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if token is not None:
            token.check("service:admitted")
        with self._lock:
            self.calls.append(sql)
        return types.SimpleNamespace(
            sql=sql, user=user, cost_usd=self.cost_usd,
            wall_seconds=self.wall_seconds,
            result=Table("R", ("a",), [(1,)]))

    def attach_metrics(self, sink) -> None:
        self.sink = sink

    def health_info(self):
        return {}

    def cache_info(self):
        return {"plans": 0, "fragment_entries": 0,
                "executor_hits": 0, "executor_misses": 0,
                "assignment": {"hits": 0, "misses": 0, "size": 0}}


def make_gateway(service, clock, **kwargs):
    tenants = kwargs.pop("tenants", [TenantConfig("t", user="U")])
    return Gateway(service, tenants, max_inflight=1, clock=clock,
                   **kwargs)


# ----------------------------------------------------------------------
# Shed at dequeue — expired or cancelled while queued
# ----------------------------------------------------------------------
def test_expired_in_queue_is_shed_before_planning():
    clock = FakeClock()
    gate = threading.Event()
    service = FakeService(gate=gate)
    gateway = make_gateway(service, clock)
    try:
        blocker = gateway.submit("t", "select 1")
        doomed = gateway.submit(
            "t", "select 2", budget=QueryBudget(deadline_seconds=1.0))
        clock.advance(5.0)  # the deadline lapses while still queued
        gate.set()
        blocker.result(timeout=30)
        with pytest.raises(DeadlineExceededError) as excinfo:
            doomed.result(timeout=30)
        assert excinfo.value.where == "gateway:dequeue"
    finally:
        gateway.close()
    assert service.calls == ["select 1"]  # never reached the service
    statuses = {entry.sql: entry.status
                for entry in gateway.ledger.entries("t")}
    assert statuses["select 2"] == "shed"
    families = parse_prometheus(gateway.metrics_text())
    samples = families["repro_gateway_deadline_exceeded_total"]["samples"]
    assert [(labels["tenant"], value)
            for _, labels, value in samples] == [("t", 1.0)]


def test_cancelled_in_queue_is_settled_without_execution():
    clock = FakeClock()
    gate = threading.Event()
    service = FakeService(gate=gate)
    gateway = make_gateway(service, clock)
    try:
        blocker = gateway.submit("t", "select 1")
        doomed = gateway.submit(
            "t", "select 2", budget=QueryBudget(deadline_seconds=60.0))
        doomed.cancellation_token.cancel("changed my mind")
        gate.set()
        blocker.result(timeout=30)
        with pytest.raises(QueryCancelledError, match="changed my mind"):
            doomed.result(timeout=30)
    finally:
        gateway.close()
    assert service.calls == ["select 1"]
    statuses = {entry.sql: entry.status
                for entry in gateway.ledger.entries("t")}
    assert statuses["select 2"] == "cancelled"
    families = parse_prometheus(gateway.metrics_text())
    samples = families["repro_gateway_cancelled_total"]["samples"]
    assert [(labels["tenant"], value)
            for _, labels, value in samples] == [("t", 1.0)]


def test_close_drain_settles_expired_backlog_instead_of_running_it():
    clock = FakeClock()
    gate = threading.Event()
    service = FakeService(gate=gate)
    gateway = make_gateway(service, clock)
    blocker = gateway.submit("t", "select 1")
    doomed = [gateway.submit("t", f"select {i}",
                             budget=QueryBudget(deadline_seconds=1.0))
              for i in range(2, 5)]
    clock.advance(10.0)
    gate.set()
    gateway.close(drain=True)
    assert blocker.result(timeout=1).result.rows == [(1,)]
    for future in doomed:
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=1)
    assert service.calls == ["select 1"]


# ----------------------------------------------------------------------
# Predictive shedding at submit
# ----------------------------------------------------------------------
def test_predicted_slow_query_is_shed_at_submit():
    clock = FakeClock()
    service = FakeService(wall_seconds=5.0)
    gateway = make_gateway(service, clock)
    try:
        gateway.execute("t", "select big")  # teaches the predictor
        with pytest.raises(SheddedError) as excinfo:
            gateway.submit("t", "select big",
                           budget=QueryBudget(deadline_seconds=1.0))
        assert excinfo.value.reason == "predicted_deadline"
        assert excinfo.value.tenant == "t"
        assert excinfo.value.predicted_seconds >= 5.0
        assert excinfo.value.remaining_seconds == pytest.approx(1.0)
        assert excinfo.value.retry_after_seconds is not None
        # A generous budget still passes.
        outcome = gateway.execute(
            "t", "select big", budget=QueryBudget(deadline_seconds=60.0))
        assert outcome.result.rows == [(1,)]
    finally:
        gateway.close()
    assert service.calls == ["select big", "select big"]
    families = parse_prometheus(gateway.metrics_text())
    samples = families["repro_gateway_shed_predicted_total"]["samples"]
    assert [(labels["tenant"], labels["reason"], value)
            for _, labels, value in samples] \
        == [("t", "predicted_deadline", 1.0)]


def test_predicted_costly_query_is_shed_at_submit():
    clock = FakeClock()
    service = FakeService(cost_usd=0.5)
    gateway = make_gateway(service, clock)
    try:
        gateway.execute("t", "select pricey")
        with pytest.raises(SheddedError) as excinfo:
            gateway.submit("t", "select pricey",
                           budget=QueryBudget(cost_ceiling_usd=0.1))
        assert excinfo.value.reason == "predicted_cost"
        assert excinfo.value.retry_after_seconds is None
    finally:
        gateway.close()
    assert service.calls == ["select pricey"]


def test_unseen_sql_falls_back_to_latency_histogram():
    clock = FakeClock()
    service = FakeService(wall_seconds=5.0)
    gateway = make_gateway(service, clock)
    try:
        gateway.execute("t", "select warmup")  # feeds the histogram
        with pytest.raises(SheddedError) as excinfo:
            gateway.submit("t", "select novel",
                           budget=QueryBudget(deadline_seconds=1.0))
        assert excinfo.value.reason == "predicted_deadline"
    finally:
        gateway.close()
    assert service.calls == ["select warmup"]


def test_cold_start_admits_without_any_signal():
    clock = FakeClock()
    service = FakeService()
    gateway = make_gateway(service, clock)
    try:
        outcome = gateway.execute(
            "t", "select 1", budget=QueryBudget(deadline_seconds=0.5))
        assert outcome.result.rows == [(1,)]
    finally:
        gateway.close()


def test_shed_safety_scales_the_prediction():
    clock = FakeClock()
    service = FakeService(wall_seconds=1.0)
    lax = make_gateway(FakeService(wall_seconds=1.0), clock,
                       shed_safety=1.0)
    strict = make_gateway(service, clock, shed_safety=10.0)
    try:
        lax.execute("t", "q")
        strict.execute("t", "q")
        # 1.0s predicted < 2.0s budget: admitted at safety 1, shed at 10.
        assert lax.execute(
            "t", "q",
            budget=QueryBudget(deadline_seconds=2.0)).result.rows == [(1,)]
        with pytest.raises(SheddedError):
            strict.submit("t", "q",
                          budget=QueryBudget(deadline_seconds=2.0))
    finally:
        lax.close()
        strict.close()


# ----------------------------------------------------------------------
# Tenant default budgets
# ----------------------------------------------------------------------
def test_tenant_default_budget_mints_a_token():
    clock = FakeClock()
    service = FakeService()
    gateway = make_gateway(
        service, clock,
        tenants=[TenantConfig("t", user="U", deadline_seconds=30.0)])
    try:
        future = gateway.submit("t", "select 1")
        token = future.cancellation_token
        assert token is not None
        assert token.budget.deadline_seconds == pytest.approx(30.0)
        future.result(timeout=30)
    finally:
        gateway.close()


def test_budget_fraction_histogram_observes_budgeted_successes():
    clock = FakeClock()
    service = FakeService()
    gateway = make_gateway(service, clock)
    try:
        gateway.execute("t", "select 1",
                        budget=QueryBudget(deadline_seconds=10.0))
        gateway.execute("t", "select 2")  # unbudgeted: not observed
    finally:
        gateway.close()
    families = parse_prometheus(gateway.metrics_text())
    count = [value for name, labels, value
             in families["repro_gateway_budget_remaining_fraction"]["samples"]
             if name.endswith("_count") and labels["tenant"] == "t"]
    assert count == [1.0]


def test_tenant_quota_budget_merge():
    quota = TenantQuota("t", deadline_seconds=10.0, cost_ceiling_usd=1.0)
    merged = quota.budget_for(None)
    assert merged.deadline_seconds == 10.0
    assert merged.cost_ceiling_usd == 1.0
    merged = quota.budget_for(QueryBudget(deadline_seconds=2.0))
    assert merged.deadline_seconds == 2.0
    assert merged.cost_ceiling_usd == 1.0  # default fills the gap
    unlimited = TenantQuota("u")
    assert unlimited.budget_for(None) is None
    passthrough = unlimited.budget_for(QueryBudget(deadline_seconds=5.0))
    assert passthrough.deadline_seconds == 5.0
    assert passthrough.cost_ceiling_usd is None


def test_caller_token_is_honoured_over_tenant_default():
    clock = FakeClock()
    service = FakeService()
    gateway = make_gateway(
        service, clock,
        tenants=[TenantConfig("t", user="U", deadline_seconds=30.0)])
    try:
        mine = CancellationToken(QueryBudget(deadline_seconds=5.0),
                                 clock=clock)
        future = gateway.submit("t", "select 1", token=mine)
        assert future.cancellation_token is mine
        future.result(timeout=30)
    finally:
        gateway.close()


# ----------------------------------------------------------------------
# Mid-execution aborts are classified, not lumped into "failed"
# ----------------------------------------------------------------------
def test_mid_execution_deadline_ledgers_as_deadline():
    clock = FakeClock()

    class ExpiringService(FakeService):
        def execute(self, sql, user=None, token=None):
            clock.advance(10.0)
            return super().execute(sql, user=user, token=token)

    gateway = make_gateway(ExpiringService(), clock)
    try:
        with pytest.raises(DeadlineExceededError):
            gateway.execute("t", "select 1",
                            budget=QueryBudget(deadline_seconds=1.0))
    finally:
        gateway.close()
    entry, = gateway.ledger.entries("t")
    assert entry.status == "deadline"
    families = parse_prometheus(gateway.metrics_text())
    samples = families["repro_gateway_deadline_exceeded_total"]["samples"]
    assert samples[0][2] == 1.0

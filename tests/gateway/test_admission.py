"""Fair scheduling and admission control, driven deterministically."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import AdmissionRejected
from repro.gateway.admission import (
    AdmissionController,
    FairScheduler,
    fair_shares,
)


def backlogged_scheduler(weights: dict[str, int], items: int,
                         depth: int | None = None) -> FairScheduler:
    scheduler = FairScheduler()
    for tenant, weight in weights.items():
        scheduler.register(tenant, weight, queue_depth=depth or items)
    for tenant in weights:
        for index in range(items):
            scheduler.offer(tenant, f"{tenant}-{index}")
    return scheduler


def test_smooth_wrr_is_proportional_and_interleaved():
    weights = {"a": 4, "b": 2, "c": 1}
    scheduler = backlogged_scheduler(weights, items=28)
    order = []
    for _ in range(7 * 4):  # four full cycles, all tenants backlogged
        tenant, _ = scheduler.take()
        order.append(tenant)
    counts = {tenant: order.count(tenant) for tenant in weights}
    assert counts == {"a": 16, "b": 8, "c": 4}
    # Smooth WRR interleaves: the heavy tenant is never served more
    # than ceil(weight) times consecutively, and every prefix stays
    # within one dispatch of proportional.
    shares = fair_shares(weights)
    for prefix in range(1, len(order) + 1):
        for tenant in weights:
            served = order[:prefix].count(tenant)
            assert abs(served - prefix * shares[tenant]) <= 1.0


def test_wrr_prefix_bound_under_many_weights():
    weights = {f"t{i}": 1 + (i % 5) for i in range(12)}
    scheduler = backlogged_scheduler(weights, items=40)
    shares = fair_shares(weights)
    order = []
    for _ in range(sum(weights.values()) * 5):
        order.append(scheduler.take()[0])
    for tenant in weights:
        served = order.count(tenant)
        assert abs(served - len(order) * shares[tenant]) <= 1.0


def test_fifo_within_a_tenant():
    scheduler = FairScheduler()
    scheduler.register("a", 1, queue_depth=8)
    for index in range(5):
        scheduler.offer("a", index)
    assert [scheduler.take()[1] for _ in range(5)] == [0, 1, 2, 3, 4]
    assert scheduler.take() is None


def test_empty_queues_do_not_starve_or_inflate():
    scheduler = FairScheduler()
    scheduler.register("heavy", 8, queue_depth=16)
    scheduler.register("light", 1, queue_depth=8)
    scheduler.offer("light", "only")
    # The heavy tenant has nothing queued; light is served immediately
    # instead of waiting out heavy's share.
    assert scheduler.take() == ("light", "only")
    # Idle accumulation must not let a tenant monopolize later: after
    # heavy returns, service is proportional again from the start.
    for index in range(16):
        scheduler.offer("heavy", index)
        if index < 8:
            scheduler.offer("light", f"l{index}")
    order = [scheduler.take()[0] for _ in range(9)]
    assert order.count("heavy") == 8
    assert order.count("light") == 1


def test_overflow_rejects_with_context():
    scheduler = FairScheduler()
    scheduler.register("a", 1, queue_depth=2)
    scheduler.offer("a", 1)
    scheduler.offer("a", 2)
    with pytest.raises(AdmissionRejected) as excinfo:
        scheduler.offer("a", 3)
    assert excinfo.value.tenant == "a"
    assert excinfo.value.queue_depth == 2
    assert scheduler.depth("a") == 2  # the rejected item was not queued


def test_unknown_and_duplicate_tenants():
    scheduler = FairScheduler()
    scheduler.register("a", 1)
    with pytest.raises(ValueError):
        scheduler.offer("ghost", 1)
    with pytest.raises(ValueError):
        scheduler.register("a", 2)
    with pytest.raises(ValueError):
        scheduler.register("b", 0)
    with pytest.raises(ValueError):
        scheduler.register("b", 1, queue_depth=0)


def test_controller_bounds_inflight_and_numbers_dispatches():
    controller = AdmissionController(max_inflight=2)
    controller.register("a", 1, queue_depth=8)
    for index in range(4):
        controller.submit("a", index)
    first = controller.acquire()
    second = controller.acquire()
    assert first[2] == 1 and second[2] == 2
    assert controller.inflight == 2

    # A third acquire must block until a slot frees.
    acquired = []
    waiter = threading.Thread(
        target=lambda: acquired.append(controller.acquire()))
    waiter.start()
    waiter.join(timeout=0.1)
    assert waiter.is_alive() and not acquired
    controller.release()
    waiter.join(timeout=5)
    assert not waiter.is_alive()
    assert acquired[0][1] == 2 and acquired[0][2] == 3


def test_controller_close_drain_serves_backlog_then_none():
    controller = AdmissionController(max_inflight=1)
    controller.register("a", 1, queue_depth=8)
    controller.submit("a", "x")
    assert controller.close(drain=True) == []
    tenant, item, _ = controller.acquire()
    assert item == "x"
    controller.release()
    assert controller.acquire() is None
    with pytest.raises(RuntimeError):
        controller.submit("a", "late")


def test_controller_close_without_drain_returns_backlog():
    controller = AdmissionController(max_inflight=1)
    controller.register("a", 1, queue_depth=8)
    controller.submit("a", "x")
    controller.submit("a", "y")
    dropped = controller.close(drain=False)
    assert [item for _, item in dropped] == ["x", "y"]
    assert controller.acquire() is None


def test_controller_validates_max_inflight():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)

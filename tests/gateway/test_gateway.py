"""The gateway front-end: admission, quotas, metering, metrics wiring."""

from __future__ import annotations

import threading
import types

import pytest

from helpers import parse_prometheus
from repro.engine.table import Table
from repro.exceptions import (
    AdmissionRejected,
    GatewayError,
    QuotaExceeded,
    UnauthorizedError,
)
from repro.gateway import Gateway, TenantConfig
from repro.paper_example import build_running_example
from repro.service import QueryService

SQL = ("select T, avg(P) from Hosp join Ins on S=C "
       "where D='stroke' group by T having avg(P)>100")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeService:
    """A stand-in service: records calls, optional blocking/failure."""

    user = "U"

    def __init__(self, cost_usd: float = 0.001,
                 gate: threading.Event | None = None) -> None:
        self.cost_usd = cost_usd
        self.gate = gate
        self.calls: list[tuple[str, str]] = []
        self.started = threading.Event()
        self._lock = threading.Lock()

    def execute(self, sql: str, user: str | None = None):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if sql == "boom":
            raise UnauthorizedError("denied", subject=user)
        with self._lock:
            self.calls.append((sql, user or self.user))
        return types.SimpleNamespace(
            sql=sql, user=user, cost_usd=self.cost_usd,
            wall_seconds=0.001, result=Table("R", ("a",), [(1,)]))

    def attach_metrics(self, sink) -> None:
        self.sink = sink

    def health_info(self):
        return {}

    def cache_info(self):
        return {"plans": 0, "fragment_entries": 0,
                "executor_hits": 0, "executor_misses": 0,
                "assignment": {"hits": 0, "misses": 0, "size": 0}}


def make_service(rows: int = 12) -> QueryService:
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 17.0 * (i % 11)) for i in range(rows)
    ])
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U",
    )


# ----------------------------------------------------------------------
# End to end over the real service
# ----------------------------------------------------------------------
def test_gateway_end_to_end_matches_direct_execution():
    service = make_service()
    direct = service.execute(SQL).result
    gateway = Gateway(service, [
        TenantConfig("gold", weight=2, user="U"),
        TenantConfig("plain", weight=1, user="Y"),
    ], max_inflight=2)
    try:
        outcomes = [gateway.execute("gold", SQL) for _ in range(3)]
        via_y = gateway.execute("plain", SQL)
        for outcome in outcomes:
            assert sorted(outcome.result.rows) == sorted(direct.rows)
        assert sorted(via_y.result.rows) == sorted(direct.rows)
        # Metering: ledger totals equal the sum of the costed traces.
        spent = sum(outcome.cost_usd for outcome in outcomes)
        assert gateway.ledger.spend_usd("gold") == pytest.approx(spent)
        assert gateway.ledger.query_count("gold") == 3
        assert gateway.account("gold").spent_usd == pytest.approx(spent)
        entries = gateway.ledger.entries("gold")
        assert all(entry.status == "completed" for entry in entries)
        assert all(entry.dispatch_sequence is not None
                   for entry in entries)
    finally:
        gateway.close()


def test_gateway_metrics_cover_required_series():
    service = make_service()
    gateway = Gateway(service, [TenantConfig("t", user="U")],
                      max_inflight=1)
    try:
        gateway.execute("t", SQL)
        gateway.execute("t", SQL)
        families = parse_prometheus(gateway.metrics_text())
    finally:
        gateway.close()
    # Admission / queue / quota series.
    for name in ("repro_gateway_queries_submitted_total",
                 "repro_gateway_queries_completed_total",
                 "repro_gateway_queries_rejected_total",
                 "repro_gateway_queue_depth",
                 "repro_gateway_inflight",
                 "repro_gateway_queue_wait_seconds",
                 "repro_gateway_query_seconds",
                 "repro_gateway_credits_spent_usd_total",
                 "repro_fragment_latency_seconds",
                 "repro_breaker_state",
                 "repro_breaker_trips_total",
                 "repro_cache_hits_total",
                 "repro_cache_misses_total",
                 "repro_cache_entries"):
        assert name in families, f"missing series {name}"
    submitted = {labels["tenant"]: value for _, labels, value
                 in families["repro_gateway_queries_submitted_total"]
                 ["samples"]}
    assert submitted == {"t": 2.0}
    # The runtime sink fed per-subject fragment latencies.
    fragment_count = sum(
        value for name, labels, value
        in families["repro_fragment_latency_seconds"]["samples"]
        if name.endswith("_count"))
    assert fragment_count > 0
    # Breaker series exist per subject, all closed.
    states = {labels["subject"]: value for _, labels, value
              in families["repro_breaker_state"]["samples"]}
    assert states and all(value == 0.0 for value in states.values())
    # Cache hit rates: the second identical query hit the caches.
    hits = {labels["cache"]: value for _, labels, value
            in families["repro_cache_hits_total"]["samples"]}
    assert hits["assignment"] >= 1.0


# ----------------------------------------------------------------------
# Admission control (deterministic, via the fake service)
# ----------------------------------------------------------------------
def test_queue_overflow_rejects_then_recovers():
    gate = threading.Event()
    service = FakeService(gate=gate)
    gateway = Gateway(service, [TenantConfig("t", queue_depth=2)],
                      max_inflight=1)
    try:
        first = gateway.submit("t", "q0")
        assert service.started.wait(timeout=5)  # q0 is now in flight
        second = gateway.submit("t", "q1")
        third = gateway.submit("t", "q2")
        with pytest.raises(AdmissionRejected) as excinfo:
            gateway.submit("t", "q3")
        assert excinfo.value.tenant == "t"
        assert excinfo.value.queue_depth == 2
        gate.set()
        assert first.result(timeout=10).sql == "q0"
        assert second.result(timeout=10).sql == "q1"
        assert third.result(timeout=10).sql == "q2"
        families = parse_prometheus(gateway.metrics_text())
        rejected = {(labels["tenant"], labels["reason"]): value
                    for _, labels, value
                    in families["repro_gateway_queries_rejected_total"]
                    ["samples"]}
        assert rejected[("t", "queue_full")] == 1.0
        # Conservation: submitted == completed + rejected.
        assert len(service.calls) == 3
    finally:
        gate.set()
        gateway.close()


def test_quota_exhaustion_rejects_before_planning():
    service = FakeService(cost_usd=0.4)
    gateway = Gateway(service, [TenantConfig("t", credits_usd=1.0)],
                      max_inflight=1)
    try:
        for index in range(3):  # 1.2 spent: postpaid overdraw on #3
            gateway.execute("t", f"q{index}")
        with pytest.raises(QuotaExceeded) as excinfo:
            gateway.submit("t", "q3")
        refusal = excinfo.value
        assert refusal.reason == "credits"
        assert refusal.spent_usd == pytest.approx(1.2)
        assert refusal.retry_after_seconds is None
        # The service never saw the rejected query: no planning spent.
        assert len(service.calls) == 3
        assert gateway.account("t").balance_usd == pytest.approx(-0.2)
        # A deposit restores admission.
        gateway.account("t").deposit(1.0)
        gateway.execute("t", "q4")
        assert len(service.calls) == 4
    finally:
        gateway.close()


def test_rate_limit_rejects_with_refill_time():
    clock = FakeClock()
    service = FakeService()
    gateway = Gateway(
        service,
        [TenantConfig("t", rate_per_second=1.0, burst=1.0)],
        max_inflight=1, clock=clock)
    try:
        gateway.execute("t", "q0")
        with pytest.raises(QuotaExceeded) as excinfo:
            gateway.submit("t", "q1")
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after_seconds == pytest.approx(1.0)
        clock.advance(1.0)
        gateway.execute("t", "q2")
        assert len(service.calls) == 2
    finally:
        gateway.close()


def test_failed_query_relays_error_and_ledgers_failure():
    service = FakeService()
    gateway = Gateway(service, [TenantConfig("t")], max_inflight=1)
    try:
        future = gateway.submit("t", "boom")
        with pytest.raises(UnauthorizedError):
            future.result(timeout=10)
        entry, = gateway.ledger.entries("t")
        assert entry.status == "failed"
        assert entry.cost_usd == 0.0
        families = parse_prometheus(gateway.metrics_text())
        failed, = families["repro_gateway_queries_failed_total"]["samples"]
        assert failed[2] == 1.0
    finally:
        gateway.close()


def test_unknown_tenant_and_duplicate_config():
    service = FakeService()
    gateway = Gateway(service, [TenantConfig("t")], max_inflight=1)
    try:
        with pytest.raises(ValueError):
            gateway.submit("ghost", "q")
    finally:
        gateway.close()
    with pytest.raises(ValueError):
        Gateway(service, [TenantConfig("a"), TenantConfig("a")])
    with pytest.raises(ValueError):
        Gateway(service, [])
    with pytest.raises(ValueError):
        TenantConfig("t", weight=0)
    with pytest.raises(ValueError):
        TenantConfig("t", queue_depth=0)


def test_close_without_drain_fails_pending_queries():
    gate = threading.Event()
    service = FakeService(gate=gate)
    gateway = Gateway(service, [TenantConfig("t", queue_depth=4)],
                      max_inflight=1)
    inflight = gateway.submit("t", "q0")
    assert service.started.wait(timeout=5)
    pending = gateway.submit("t", "q1")
    gate.set()
    gateway.close(drain=False)
    assert inflight.result(timeout=10).sql == "q0"  # in-flight finishes
    with pytest.raises(GatewayError):
        pending.result(timeout=10)
    with pytest.raises(GatewayError):
        gateway.submit("t", "late")


def test_fair_dispatch_share_under_saturation():
    """Weighted tenants get proportional dispatch shares (fake service)."""
    gate = threading.Event()
    service = FakeService(gate=gate)
    weights = {"gold": 3, "silver": 2, "bronze": 1}
    budget = 12
    gateway = Gateway(
        service,
        [TenantConfig(name, weight=weight, queue_depth=budget)
         for name, weight in weights.items()],
        max_inflight=1)
    try:
        futures = []
        for name in weights:
            for index in range(budget):
                futures.append(gateway.submit(name, f"{name}-{index}"))
        gate.set()
        for future in futures:
            future.result(timeout=30)
        # Window: dispatches while every tenant was still backlogged —
        # bronze (slowest-served) exhausts last, gold first; audit the
        # prefix up to gold's final dispatch.
        entries = sorted(gateway.ledger.all_entries(),
                         key=lambda entry: entry.dispatch_sequence)
        gold_last = max(entry.dispatch_sequence for entry in entries
                        if entry.tenant == "gold")
        window = [entry.tenant for entry in entries
                  if entry.dispatch_sequence <= gold_last]
        total = sum(weights.values())
        for name, weight in weights.items():
            served = window.count(name)
            expected = len(window) * weight / total
            assert abs(served - expected) <= 2.0, (
                f"{name}: {served} served, expected ~{expected:.1f} "
                f"in window of {len(window)}")
    finally:
        gate.set()
        gateway.close()

"""The metrics registry: semantics and exposition-format validity."""

from __future__ import annotations

import threading

import pytest

from helpers import parse_prometheus
from repro.obs.metrics import MetricsRegistry


def test_counter_is_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)
    counter.set_total(10.0)
    with pytest.raises(ValueError):
        counter.set_total(9.0)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", "help")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 3.0


def test_labelled_children_are_distinct_and_cached():
    registry = MetricsRegistry()
    family = registry.counter("seen_total", "help", labelnames=("tenant",))
    family.labels("a").inc()
    family.labels("a").inc()
    family.labels("b").inc()
    assert family.labels("a").value() == 2.0
    assert family.labels("b").value() == 1.0
    with pytest.raises(ValueError):
        family.labels("a", "extra")


def test_redeclaration_is_idempotent_but_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("x_total", "help")
    assert registry.counter("x_total", "help") is first
    with pytest.raises(ValueError):
        registry.gauge("x_total", "help")
    with pytest.raises(ValueError):
        registry.counter("x_total", "help", labelnames=("other",))


def test_invalid_names_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("0bad", "help")
    with pytest.raises(ValueError):
        registry.counter("ok_total", "help", labelnames=("bad-label",))
    with pytest.raises(ValueError):
        registry.histogram("h", "help", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("h", "help", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("h", "help", buckets=(1.0, float("inf")))
    with pytest.raises(ValueError):
        registry.histogram("h", "help", buckets=(1.0,), labelnames=("le",))


def test_histogram_buckets_cumulative_and_quantile():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat_seconds", "help",
                                   buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.56)
    assert [count for _, count in snap["buckets"]] == [2, 3, 4, 5]
    assert histogram.quantile(0.5) == 0.1
    assert histogram.quantile(1.0) == float("inf")
    empty = registry.histogram("empty_seconds", "help", buckets=(1.0,))
    assert empty.quantile(0.95) == 0.0


def test_observation_on_bucket_boundary_is_le():
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds", "help", buckets=(1.0, 2.0))
    histogram.observe(1.0)
    assert [count for _, count in histogram.snapshot()["buckets"]][0] == 1


def test_render_is_valid_exposition():
    registry = MetricsRegistry()
    registry.counter("a_total", "with \"quotes\" and \\ slash",
                     labelnames=("t",)).labels('va"l\\ue').inc()
    registry.gauge("b", "plain").set(2)
    registry.histogram("c_seconds", "hist", buckets=(0.5,),
                       labelnames=("t",)).labels("x").observe(0.1)
    families = parse_prometheus(registry.render())
    assert set(families) == {"a_total", "b", "c_seconds"}
    assert families["a_total"]["type"] == "counter"
    (name, labels, value), = families["a_total"]["samples"]
    assert labels == {"t": r"va\"l\\ue"} and value == 1.0
    assert families["c_seconds"]["type"] == "histogram"


def test_collectors_run_at_render_time():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "help")
    state = {"depth": 0}
    registry.register_collector(lambda: gauge.set(state["depth"]))
    state["depth"] = 7
    families = parse_prometheus(registry.render())
    assert families["depth"]["samples"][0][2] == 7.0


def test_thread_safety_of_increments():
    registry = MetricsRegistry()
    counter = registry.counter("n_total", "help")
    histogram = registry.histogram("h_seconds", "help", buckets=(0.5,))

    def work():
        for _ in range(1000):
            counter.inc()
            histogram.observe(0.1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value() == 8000.0
    assert histogram.snapshot()["count"] == 8000

"""The ISSUE-7 multicore data plane: pool mechanics, parallel ≡
sequential pins for column crypto and joins, background obfuscator
refill, and the CLI knob.

Worker tasks must be importable in spawn children, so every process
test goes through the :mod:`repro.parallel.kernels` functions — never a
function defined in this module.  One two-worker pool is shared across
the module (spawning processes is the slow part)."""

import pickle
import random
import threading
import time

import pytest

from repro.cli import run_workload
from repro.core.keys import QueryKey
from repro.core.operators import BaseRelationNode, Join
from repro.core.predicates import (
    AttributeComparisonPredicate,
    ComparisonOp,
    Conjunction,
)
from repro.core.requirements import EncryptionScheme
from repro.core.schema import Relation
from repro.crypto import primitives
from repro.crypto.keymanager import KeyMaterial
from repro.crypto.paillier import (
    _POOL_LOW_WATER,
    _POOL_TARGET,
    generate_keypair,
)
from repro.engine import Executor, Table
from repro.engine.codec import decrypt_column, encrypt_column
from repro.engine.values import EncryptedValue
from repro.exceptions import CryptoError, ExecutionError
from repro.parallel import (
    ExecutionSettings,
    WorkerPool,
    shared_pool,
)
from repro.parallel import kernels

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(2, min_parallel_items=1)
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def paillier_keys():
    return generate_keypair(256)


def material_for(scheme, paillier_keys):
    key = QueryKey(frozenset({"A"}), scheme)
    if scheme is EncryptionScheme.PAILLIER:
        public, private = paillier_keys
        return KeyMaterial(query_key=key, paillier_public=public,
                           paillier_private=private)
    return KeyMaterial(query_key=key, symmetric=primitives.generate_key())


class TestExecutionSettings:
    def test_defaults_are_inline_single_core(self):
        settings = ExecutionSettings()
        assert settings.workers == 0
        assert settings.join_strategy == "hash"
        assert settings.pool() is None

    @pytest.mark.parametrize("workers", [-1, -100, 1.5, True, "4"])
    def test_bad_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="workers must be"):
            ExecutionSettings(workers=workers)

    def test_unknown_join_strategy_lists_valid_ones(self):
        with pytest.raises(ValueError, match="parallel-hash"):
            ExecutionSettings(join_strategy="sort-merge")

    @pytest.mark.parametrize("threshold", [0, -5, "many"])
    def test_bad_threshold_rejected(self, threshold):
        with pytest.raises(ValueError, match="min_parallel_items"):
            ExecutionSettings(min_parallel_items=threshold)

    def test_shared_pool_is_per_configuration(self):
        a = ExecutionSettings(workers=3, min_parallel_items=512)
        b = ExecutionSettings(workers=3, min_parallel_items=512,
                              join_strategy="parallel-hash")
        c = ExecutionSettings(workers=3, min_parallel_items=1024)
        assert a.pool() is b.pool()
        assert a.pool() is not c.pool()
        assert shared_pool(0) is None


class TestWorkerPool:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerPool(-1)

    def test_zero_workers_always_runs_inline(self):
        inline = WorkerPool(0, min_parallel_items=1)
        assert not inline.should_parallelize(10 ** 9)
        # Inline fallback never pickles, so a local closure is fine here.
        calls = []

        def task(payload, items):
            calls.append((payload, list(items)))
            return [item * 2 for item in items]

        assert inline.map_chunks(task, "p", [1, 2, 3]) == [2, 4, 6]
        assert calls == [("p", [1, 2, 3])]
        assert inline._executor is None  # no process was ever spawned

    def test_small_inputs_run_inline_even_with_workers(self):
        pool = WorkerPool(4, min_parallel_items=100)
        assert not pool.should_parallelize(99)
        assert pool.should_parallelize(100)
        assert pool._executor is None


class TestColumnCryptoEquivalence:
    SCHEMES = [EncryptionScheme.DETERMINISTIC, EncryptionScheme.RANDOMIZED,
               EncryptionScheme.OPE, EncryptionScheme.PAILLIER]

    def values_for(self, scheme):
        rng = random.Random(5)
        if scheme in (EncryptionScheme.PAILLIER, EncryptionScheme.OPE):
            values = [rng.randrange(10_000) for _ in range(20)]
        else:
            values = ["alpha", "beta", 7, b"raw", "alpha", -3.5] * 4
        values[3] = None
        values[11] = None
        return values

    @pytest.mark.parametrize("scheme", SCHEMES,
                             ids=lambda scheme: scheme.value)
    def test_roundtrip_matches_sequential(self, scheme, pool,
                                          paillier_keys):
        material = material_for(scheme, paillier_keys)
        values = self.values_for(scheme)
        parallel = encrypt_column(material, values, pool=pool)
        sequential = encrypt_column(material, values)
        if scheme in (EncryptionScheme.DETERMINISTIC, EncryptionScheme.OPE):
            # Deterministic schemes: the ciphertexts themselves match.
            assert [cell.token for cell in parallel if cell is not None] \
                == [cell.token for cell in sequential if cell is not None]
        assert [cell for cell in parallel if cell is None] \
            == [cell for cell in sequential if cell is None]
        # Every combination of parallel/sequential encrypt and decrypt
        # recovers the exact column, NULLs in place.
        assert decrypt_column(material, parallel, pool=pool) == values
        assert decrypt_column(material, parallel) == values
        assert decrypt_column(material, sequential, pool=pool) == values

    def test_tampered_token_raises_through_pool(self, pool):
        material = material_for(EncryptionScheme.DETERMINISTIC, None)
        cells = encrypt_column(material, ["x", "y", "z"])
        token = cells[1].token
        cells[1] = EncryptedValue(
            material.name, EncryptionScheme.DETERMINISTIC,
            token[:-1] + bytes([token[-1] ^ 1]))
        with pytest.raises(CryptoError, match="authentication failed"):
            decrypt_column(material, cells, pool=pool)

    def test_foreign_key_cell_rejected_before_workers_run(self, pool):
        mine = material_for(EncryptionScheme.DETERMINISTIC, None)
        theirs = KeyMaterial(
            query_key=QueryKey(frozenset({"B"}),
                               EncryptionScheme.DETERMINISTIC),
            symmetric=primitives.generate_key())
        cells = encrypt_column(mine, ["x"]) + encrypt_column(theirs, ["y"])
        with pytest.raises(ExecutionError, match="encrypted under"):
            decrypt_column(mine, cells, pool=pool)

    def test_paillier_decrypt_many_matches_inline(self, pool,
                                                  paillier_keys):
        public, private = paillier_keys
        ciphertexts = public.encrypt_many(list(range(-10, 30)))
        assert private.decrypt_many(ciphertexts, pool=pool) \
            == private.decrypt_many(ciphertexts)

    def test_paillier_wrong_key_rejected_parent_side(self, pool):
        public, _ = generate_keypair(256)
        _, other_private = generate_keypair(256)
        ciphertexts = public.encrypt_many([1, 2])
        with pytest.raises(CryptoError, match="different Paillier key"):
            other_private.decrypt_many(ciphertexts, pool=pool)


class TestParallelHashJoin:
    def catalog(self, rows=400, seed=9):
        rng = random.Random(seed)
        return {
            "L": Table("L", ("a", "x"), [
                (rng.randrange(20), rng.randrange(50))
                for _ in range(rows)
            ]),
            "R": Table("R", ("b", "y"), [
                (rng.randrange(20), rng.randrange(50))
                for _ in range(rows)
            ]),
        }

    def node(self, *predicates):
        left = Relation("L", ["a", "x"], cardinality=100)
        right = Relation("R", ["b", "y"], cardinality=100)
        return Join(BaseRelationNode(left), BaseRelationNode(right),
                    Conjunction(list(predicates)))

    def test_parallel_hash_matches_hash_exactly(self, pool):
        node = self.node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "b"),
            AttributeComparisonPredicate("x", ComparisonOp.LT, "y"),
        )
        catalog = self.catalog()
        sequential = Executor(dict(catalog)).execute(node)
        parallel = Executor(dict(catalog), join_strategy="parallel-hash",
                            pool=pool).execute(node)
        nested = Executor(dict(catalog),
                          join_strategy="nested-loop").execute(node)
        assert len(sequential) > 0
        # Output row order is preserved, not just the multiset.
        assert list(parallel.rows) == list(sequential.rows)
        assert parallel.same_content(nested)

    def test_parallel_hash_without_pool_degrades_to_hash(self):
        node = self.node(
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "b"))
        catalog = self.catalog(rows=60)
        sequential = Executor(dict(catalog)).execute(node)
        degraded = Executor(dict(catalog),
                            join_strategy="parallel-hash").execute(node)
        assert list(degraded.rows) == list(sequential.rows)

    def test_theta_only_join_under_parallel_hash(self, pool):
        node = self.node(
            AttributeComparisonPredicate("a", ComparisonOp.LT, "b"))
        catalog = self.catalog(rows=80)
        sequential = Executor(dict(catalog)).execute(node)
        parallel = Executor(dict(catalog), join_strategy="parallel-hash",
                            pool=pool).execute(node)
        assert list(parallel.rows) == list(sequential.rows)

    def test_unknown_strategy_still_rejected(self):
        with pytest.raises(ExecutionError, match="unknown join strategy"):
            Executor({}, join_strategy="sort-merge")


class TestObfuscatorPool:
    def test_background_refill_below_low_water(self):
        public, _ = generate_keypair(256)
        public.precompute_obfuscators()
        # Drain to exactly the low-water mark: the next pop arms the
        # background refill daemon.
        while len(public._obfuscators) > _POOL_LOW_WATER:
            public._next_obfuscator()
        public._next_obfuscator()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with public._pool_lock:
                if (len(public._obfuscators) >= _POOL_TARGET
                        and not public.__dict__.get("_refilling")):
                    break
            time.sleep(0.01)
        assert len(public._obfuscators) >= _POOL_TARGET

    def test_locks_are_per_key(self):
        a, _ = generate_keypair(256)
        b, _ = generate_keypair(256)
        assert a._pool_lock is not b._pool_lock
        assert a._pool_lock is a._pool_lock  # memoized, not re-created
        assert isinstance(a._pool_lock, type(threading.Lock()))

    def test_obfuscator_pool_stays_home_on_pickle(self):
        public, private = generate_keypair(256)
        public.precompute_obfuscators()
        restored = pickle.loads(pickle.dumps(public))
        assert "_obfuscators" not in restored.__dict__
        assert "_lock" not in restored.__dict__
        assert private.decrypt(restored.encrypt(77)) == 77


class TestWorkloadCli:
    def test_negative_workers_exit_with_clear_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_workload(1, "sequential", workers=-2)
        assert excinfo.value.code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_unknown_join_strategy_exits_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_workload(1, "sequential", join_strategy="merge")
        assert excinfo.value.code == 2
        assert "hash, parallel-hash" in capsys.readouterr().err


class TestServiceSettings:
    def test_parallel_settings_reproduce_inline_results(self):
        from repro.engine.table import Table as EngineTable
        from repro.paper_example import build_running_example
        from repro.service import QueryService

        example = build_running_example()
        hosp = EngineTable("Hosp", ("S", "B", "D", "T"), [
            ("s1", 1980, "stroke", "tpa"),
            ("s2", 1975, "stroke", "tpa"),
            ("s3", 1990, "flu", "rest"),
        ])
        ins = EngineTable("Ins", ("C", "P"), [
            ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ])
        sql = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T")

        def run(settings):
            service = QueryService(
                example.schema, example.policy, example.subjects,
                example.owners,
                {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
                user="U", schedule="sequential", settings=settings,
            )
            return service.execute(sql).result

        baseline = run(None)
        # workers=0 with a parallel strategy must degrade to the exact
        # single-core rows: no pool exists, every path runs inline.
        tuned = run(ExecutionSettings(workers=0,
                                      join_strategy="parallel-hash"))
        assert list(tuned.rows) == list(baseline.rows)
        assert tuned.columns == baseline.columns

"""Pickle round-trips for everything the worker transport ships.

Spawn-context workers receive their key material, ciphertexts, and
probe state as pickle blobs; these tests pin (a) that the round-trip
preserves cryptographic behaviour exactly, and (b) that lazily built
runtime state — cipher memos, obfuscator pools, locks — stays home
rather than bloating every chunk submission."""

import pickle

import pytest

from repro.core.keys import QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto import primitives
from repro.crypto.keymanager import KeyMaterial
from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import PaillierCiphertext, generate_keypair
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.exceptions import CryptoError
from repro.parallel import kernels


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


class TestKeyMaterialTransport:
    @pytest.mark.parametrize("scheme", [
        EncryptionScheme.DETERMINISTIC,
        EncryptionScheme.RANDOMIZED,
        EncryptionScheme.OPE,
    ], ids=lambda scheme: scheme.value)
    def test_symmetric_material_roundtrip(self, scheme):
        material = KeyMaterial(
            query_key=QueryKey(frozenset({"A"}), scheme),
            symmetric=primitives.generate_key())
        # Populate the lazy cipher cache before pickling: the memoized
        # instances must not travel.
        material.deterministic_cipher().encrypt("seed the memo")
        material.ope_cipher().encrypt(41)
        restored = roundtrip(material)
        assert "_ciphers" not in restored.__dict__
        assert restored.symmetric == material.symmetric
        assert restored.query_key == material.query_key
        # Behavioural equality: tokens produced on either side decrypt
        # on the other.
        token = material.deterministic_cipher().encrypt("hello")
        assert restored.deterministic_cipher().decrypt(token) == "hello"
        assert restored.deterministic_cipher().encrypt("hello") == token
        ope_token = material.ope_cipher().encrypt(17)
        assert restored.ope_cipher().encrypt(17) == ope_token

    def test_paillier_material_roundtrip(self):
        public, private = generate_keypair(256)
        material = KeyMaterial(
            query_key=QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
            paillier_public=public, paillier_private=private)
        restored = roundtrip(material)
        ciphertext = restored.paillier_public.encrypt(123)
        assert private.decrypt(ciphertext) == 123
        assert restored.paillier_private.decrypt(public.encrypt(9)) == 9


class TestPaillierTransport:
    def test_public_key_state_is_just_the_modulus(self):
        public, private = generate_keypair(256)
        public.precompute_obfuscators()
        state = public.__getstate__()
        assert set(state) == {"n"}
        restored = roundtrip(public)
        assert restored.n == public.n
        assert private.decrypt(restored.encrypt(5)) == 5

    def test_ciphertext_roundtrip_keeps_homomorphism(self):
        public, private = generate_keypair(256)
        a = roundtrip(public.encrypt(20))
        b = roundtrip(public.encrypt(22))
        assert private.decrypt(a) == 20
        assert private.decrypt(a + b) == 42
        assert isinstance(a, PaillierCiphertext)

    def test_private_key_roundtrip_keeps_crt_decrypt(self):
        public, private = generate_keypair(256)
        ciphertexts = public.encrypt_many([3, -7, 10 ** 6])
        restored = roundtrip(private)
        assert restored.decrypt_many(ciphertexts) == [3, -7, 10 ** 6]


class TestCipherTransport:
    def test_deterministic_cipher_with_hot_memos(self):
        cipher = DeterministicCipher(primitives.generate_key())
        tokens = cipher.encrypt_many(["a", "b", "a", 12])
        restored = roundtrip(cipher)
        assert restored.encrypt_many(["a", "b", "a", 12]) == tokens
        assert restored.decrypt_many(tokens) == ["a", "b", "a", 12]

    def test_randomized_cipher_roundtrip(self):
        cipher = RandomizedCipher(primitives.generate_key())
        token = cipher.encrypt("secret")
        restored = roundtrip(cipher)
        assert restored.decrypt(token) == "secret"
        assert cipher.decrypt(restored.encrypt("reply")) == "reply"

    def test_ope_cipher_roundtrip_preserves_order_and_tokens(self):
        cipher = OpeCipher(primitives.generate_key())
        tokens = cipher.encrypt_many([5, 1, 9, 5])
        restored = roundtrip(cipher)
        assert restored.encrypt_many([5, 1, 9, 5]) == tokens
        assert restored.encrypt(0) < restored.encrypt(2) < tokens[2]

    def test_tampering_detected_after_transport(self):
        cipher = DeterministicCipher(primitives.generate_key())
        token = cipher.encrypt("payload")
        restored = roundtrip(cipher)
        tampered = token[:-1] + bytes([token[-1] ^ 1])
        with pytest.raises(CryptoError, match="authentication failed"):
            restored.decrypt(tampered)


class TestKernelRegistry:
    def test_rehydrate_memoizes_per_blob(self):
        material = KeyMaterial(
            query_key=QueryKey(frozenset({"A"}),
                               EncryptionScheme.DETERMINISTIC),
            symmetric=primitives.generate_key())
        blob = kernels.dumps(material)
        first = kernels._rehydrate(blob)
        second = kernels._rehydrate(blob)
        assert first is second
        assert first.symmetric == material.symmetric

    def test_registry_is_bounded(self):
        kernels._materials.clear()
        for index in range(kernels._REGISTRY_MAX + 5):
            kernels._rehydrate(kernels.dumps(("filler", index)))
        assert len(kernels._materials) <= kernels._REGISTRY_MAX + 1

"""Property tests pinning the batch-crypto kernels to their references.

The fast paths (bulk ``encrypt_many``/``decrypt_many``, the memoized
deterministic/OPE ciphers, binomial + CRT Paillier, the columnar engine
codec) must be *bit-identical* to the straightforward per-value
formulations — these tests hold them to that, including error behavior
(tampered ciphertexts raise through the bulk paths too).
"""

from datetime import date
from math import gcd

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keys import QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyStore
from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import generate_keypair
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.engine.codec import (
    decrypt_column,
    decrypt_value,
    encrypt_column,
    encrypt_value,
)
from repro.exceptions import CryptoError, ExecutionError

KEY = b"unit-test-key-32-bytes-long!!!!!"
OTHER_KEY = b"other-test-key-32-bytes-long!!!!"

VALUES = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=40),
    st.dates(min_value=date(1900, 1, 1), max_value=date(2100, 1, 1)),
)

#: Numbers Paillier can carry: fixed-point fractions and negatives.
NUMBERS = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
)

KEYS = st.binary(min_size=16, max_size=32)


@pytest.fixture(scope="module")
def paillier():
    return generate_keypair(512)


class TestBulkEqualsLoop:
    """``encrypt_many``/``decrypt_many`` ≡ the per-value loop."""

    @given(st.lists(VALUES, max_size=20))
    @settings(max_examples=25)
    def test_deterministic(self, values):
        cipher = DeterministicCipher(KEY)
        tokens = cipher.encrypt_many(values)
        assert tokens == [DeterministicCipher(KEY).encrypt(v)
                          for v in values]
        assert cipher.decrypt_many(tokens) == values
        assert [DeterministicCipher(KEY).decrypt(t) for t in tokens] \
            == values

    @given(st.lists(VALUES, max_size=20))
    @settings(max_examples=25)
    def test_randomized(self, values):
        cipher = RandomizedCipher(KEY)
        tokens = cipher.encrypt_many(values)
        # Randomized IVs differ per call; the roundtrip is the contract.
        assert cipher.decrypt_many(tokens) == values
        assert [RandomizedCipher(KEY).decrypt(t) for t in tokens] == values
        assert len(set(cipher.encrypt_many([1, 1, 1]))) == 3

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40),
                    max_size=20))
    @settings(max_examples=25)
    def test_ope(self, values):
        cipher = OpeCipher(KEY)
        tokens = cipher.encrypt_many(values)
        assert tokens == [OpeCipher(KEY).encrypt(v) for v in values]
        assert cipher.decrypt_many(tokens) == \
            [OpeCipher(KEY).decrypt(t) for t in tokens]

    @given(st.lists(NUMBERS, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_paillier(self, paillier, values):
        public, private = paillier
        ciphertexts = public.encrypt_many(values)
        decrypted = private.decrypt_many(ciphertexts)
        assert decrypted == [private.decrypt(c) for c in ciphertexts]
        for value, got in zip(values, decrypted):
            assert got == pytest.approx(value, abs=1e-5)


class TestPaillierFastVsReference:
    @given(NUMBERS)
    @settings(max_examples=25, deadline=None)
    def test_binomial_equals_pow_reference(self, paillier, value):
        public, _ = paillier
        obfuscator = public._next_obfuscator()
        fast = public.encrypt(value, obfuscator=obfuscator)
        reference = public.encrypt_reference(value, obfuscator=obfuscator)
        assert fast.value == reference.value

    @given(NUMBERS)
    @settings(max_examples=25, deadline=None)
    def test_crt_decrypt_equals_reference(self, paillier, value):
        public, private = paillier
        ciphertext = public.encrypt(value)
        assert private.decrypt(ciphertext) == \
            private.decrypt_reference(ciphertext)

    def test_crt_decrypt_on_negatives_and_fractions(self, paillier):
        public, private = paillier
        for value in (0, 42, -42, 3.141593, -0.5, -123456.789012, 2**40):
            ciphertext = public.encrypt(value)
            fast = private.decrypt(ciphertext)
            assert fast == private.decrypt_reference(ciphertext)
            assert fast == pytest.approx(value, abs=1e-6)

    def test_reference_keypair_without_primes_still_decrypts(self, paillier):
        from repro.crypto.paillier import PaillierPrivateKey

        public, private = paillier
        stripped = PaillierPrivateKey(public, private.lam, private.mu)
        ciphertext = public.encrypt(-7.25)
        assert stripped.decrypt(ciphertext) == private.decrypt(ciphertext)

    def test_obfuscators_are_units(self, paillier):
        public, _ = paillier
        n2 = public.n_squared
        seen = set()
        for _ in range(300):  # spans multiple pool refills
            obfuscator = public._next_obfuscator()
            assert 0 < obfuscator < n2
            assert gcd(obfuscator, n2) == 1
            seen.add(obfuscator)
        assert len(seen) > 250  # fresh randomness, not a constant pool

    def test_precompute_beyond_one_refill_terminates(self, paillier):
        from repro.crypto.paillier import _POOL_TARGET

        public, _ = paillier
        public.precompute_obfuscators(_POOL_TARGET + 50)
        assert len(public._pool) >= _POOL_TARGET + 50

    def test_concurrent_draws_never_underflow(self, paillier):
        # Public keys are shared across subject keystores and the
        # parallel runtime encrypts on a thread pool: check-then-pop
        # must be atomic.
        from concurrent.futures import ThreadPoolExecutor

        public, _ = paillier
        public._pool.clear()

        def draw_many(_):
            return [public._next_obfuscator() for _ in range(40)]

        with ThreadPoolExecutor(max_workers=8) as executor:
            batches = list(executor.map(draw_many, range(8)))
        drawn = [o for batch in batches for o in batch]
        assert len(drawn) == 320

    def test_random_unit_is_coprime(self, paillier):
        public, _ = paillier
        for _ in range(20):
            r = public._random_unit()
            assert 1 < r < public.n
            assert gcd(r, public.n) == 1

    def test_sum_builtin_folds_homomorphically(self, paillier):
        public, private = paillier
        values = [3, -5, 7.5, 100]
        total = sum(public.encrypt_many(values))
        assert private.decrypt(total) == pytest.approx(sum(values))
        single = public.encrypt(9)
        assert private.decrypt(sum([single])) == 9
        assert (0 + single).value == single.value
        with pytest.raises(TypeError):
            _ = 1 + single  # only the identity folds


class TestMemoizedEqualsUnmemoized:
    """Warm memos change nothing observable, across distinct keys."""

    @given(KEYS, st.lists(VALUES, min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_deterministic_across_keys(self, key, values):
        warm = DeterministicCipher(key)
        repeated = values * 3  # exercise the memo hit path
        warm_tokens = warm.encrypt_many(repeated)
        cold_tokens = [DeterministicCipher(key).encrypt(v)
                       for v in repeated]
        assert warm_tokens == cold_tokens
        assert warm.decrypt_many(warm_tokens) == repeated

    @given(KEYS, st.lists(st.integers(min_value=-(2**30), max_value=2**30),
                          min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_ope_across_keys(self, key, values):
        warm = OpeCipher(key)
        repeated = values * 3
        warm_tokens = warm.encrypt_many(repeated)
        assert warm_tokens == [OpeCipher(key).encrypt(v) for v in repeated]
        assert warm.decrypt_many(warm_tokens) == \
            [OpeCipher(key).decrypt(t) for t in warm_tokens]

    def test_distinct_keys_stay_distinct(self):
        # Memos are per-cipher: the same plaintext under two keys must
        # not share tokens even after both memos are warm.
        det_a, det_b = DeterministicCipher(KEY), DeterministicCipher(OTHER_KEY)
        for _ in range(2):
            assert det_a.encrypt("stroke") != det_b.encrypt("stroke")
        ope_a, ope_b = OpeCipher(KEY), OpeCipher(OTHER_KEY)
        for _ in range(2):
            assert ope_a.encrypt(42) != ope_b.encrypt(42)
        assert det_a.decrypt(det_a.encrypt("stroke")) == "stroke"
        with pytest.raises(CryptoError):
            det_b.decrypt(det_a.encrypt("stroke"))


class TestTamperingThroughBatchPath:
    def test_symmetric_tamper_raises_in_bulk(self):
        for cipher_type in (DeterministicCipher, RandomizedCipher):
            cipher = cipher_type(KEY)
            tokens = cipher.encrypt_many(["a", "b", "c"])
            tampered = bytearray(tokens[1])
            tampered[-1] ^= 0x01
            with pytest.raises(CryptoError):
                cipher.decrypt_many([tokens[0], bytes(tampered), tokens[2]])

    def test_memoized_decrypt_still_rejects_tampering(self):
        cipher = DeterministicCipher(KEY)
        token = cipher.encrypt("secret")
        assert cipher.decrypt(token) == "secret"  # memo is now warm
        tampered = bytearray(token)
        tampered[_IV_BYTE] ^= 0x01
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(tampered))

    def test_ope_forged_token_raises_in_bulk(self):
        cipher = OpeCipher(KEY)
        tokens = cipher.encrypt_many([1, 2, 3])
        with pytest.raises(CryptoError):
            cipher.decrypt_many([tokens[0], tokens[1] + 1])
        # ...even after the canonical token passed through the memo.
        cipher.decrypt_many(tokens)
        with pytest.raises(CryptoError):
            cipher.decrypt_many([tokens[1] + 1])

    def test_wrong_paillier_key_raises_in_bulk(self, paillier):
        public, _ = paillier
        other_public, other_private = generate_keypair(512)
        assert other_public.n != public.n
        with pytest.raises(CryptoError):
            other_private.decrypt_many([public.encrypt(1)])


_IV_BYTE = 3  # flip inside the IV: the SIV no longer matches the body


class TestColumnCodec:
    """Engine-level ``encrypt_column``/``decrypt_column`` ≡ per-cell codec."""

    @pytest.fixture(scope="class")
    def store(self):
        return KeyStore.generate([
            QueryKey(frozenset({"S"}), EncryptionScheme.DETERMINISTIC),
            QueryKey(frozenset({"R"}), EncryptionScheme.RANDOMIZED),
            QueryKey(frozenset({"D"}), EncryptionScheme.OPE),
            QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
        ])

    @pytest.mark.parametrize("attribute,values", [
        ("S", ["x", None, "y", "x", 7]),
        ("R", [1.5, None, "mixed", date(2001, 2, 3)]),
        ("D", [10, None, -3, 10]),
        ("P", [1, None, -2.5, 1000.125]),
    ])
    def test_column_roundtrip_with_nulls(self, store, attribute, values):
        material = store.material_for_attribute(attribute)
        column = encrypt_column(material, values)
        for plain, cell in zip(values, column):
            if plain is None:
                assert cell is None
            else:
                assert cell.key_name == material.name
                assert cell.scheme is material.scheme
                recovered = decrypt_value(material, cell)
                if isinstance(plain, float):
                    assert recovered == pytest.approx(plain, abs=1e-6)
                else:
                    assert recovered == plain
        assert decrypt_column(material, column) == \
            [None if c is None else decrypt_value(material, c)
             for c in column]

    def test_column_equals_per_cell_for_deterministic(self, store):
        material = store.material_for_attribute("S")
        values = ["a", "b", "a", None]
        column = encrypt_column(material, values)
        for plain, cell in zip(values, column):
            if plain is not None:
                assert cell.token == encrypt_value(material, plain).token

    def test_already_encrypted_rejected(self, store):
        material = store.material_for_attribute("S")
        cell = encrypt_column(material, ["a"])[0]
        with pytest.raises(ExecutionError):
            encrypt_column(material, ["b", cell])

    def test_foreign_key_ciphertext_rejected(self, store):
        det = store.material_for_attribute("S")
        ope = store.material_for_attribute("D")
        cell = encrypt_column(ope, [5])[0]
        with pytest.raises(ExecutionError):
            decrypt_column(det, [cell])

    def test_plaintext_cell_rejected_on_decrypt(self, store):
        material = store.material_for_attribute("S")
        with pytest.raises(ExecutionError):
            decrypt_column(material, ["plaintext"])

    def test_tampered_cell_raises_through_column(self, store):
        from repro.engine.values import EncryptedValue

        material = store.material_for_attribute("S")
        cell = encrypt_column(material, ["secret"])[0]
        tampered = bytearray(cell.token)
        tampered[-1] ^= 0x01
        forged = EncryptedValue(cell.key_name, cell.scheme, bytes(tampered))
        with pytest.raises(CryptoError):
            decrypt_column(material, [forged])

    def test_paillier_rejects_non_numeric_in_bulk(self, store):
        material = store.material_for_attribute("P")
        with pytest.raises(ExecutionError):
            encrypt_column(material, [1, "two"])

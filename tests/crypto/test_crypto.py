"""Unit and property tests for the encryption substrate."""

from datetime import date

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keys import QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto import primitives
from repro.crypto.keymanager import DistributedKeys, KeyStore
from repro.crypto.ope import OpeCipher, decode_numeric, encode_orderable
from repro.crypto.paillier import generate_keypair
from repro.crypto.rsa import generate_keypair as generate_rsa
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.exceptions import CryptoError, KeyManagementError

KEY = b"unit-test-key-32-bytes-long!!!!!"

VALUES = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=40),
    st.dates(min_value=date(1900, 1, 1), max_value=date(2100, 1, 1)),
)


class TestEncoding:
    @given(VALUES)
    def test_roundtrip(self, value):
        assert primitives.decode_value(primitives.encode_value(value)) \
            == value

    def test_none_and_bytes(self):
        assert primitives.decode_value(primitives.encode_value(None)) \
            is None
        assert primitives.decode_value(
            primitives.encode_value(b"\x00\x01")) == b"\x00\x01"

    def test_unsupported_type(self):
        with pytest.raises(CryptoError):
            primitives.encode_value(object())


class TestSymmetric:
    @given(VALUES)
    @settings(max_examples=30)
    def test_deterministic_roundtrip(self, value):
        cipher = DeterministicCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(value)) == value

    @given(VALUES)
    @settings(max_examples=30)
    def test_randomized_roundtrip(self, value):
        cipher = RandomizedCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_deterministic_equality_preserved(self):
        cipher = DeterministicCipher(KEY)
        assert cipher.encrypt("x") == cipher.encrypt("x")
        assert cipher.encrypt("x") != cipher.encrypt("y")

    def test_randomized_unlinkable(self):
        cipher = RandomizedCipher(KEY)
        assert cipher.encrypt("x") != cipher.encrypt("x")

    def test_wrong_key_fails_loudly(self):
        token = DeterministicCipher(KEY).encrypt("secret")
        other = DeterministicCipher(b"y" * 32)
        with pytest.raises(CryptoError):
            other.decrypt(token)

    def test_tampering_detected(self):
        token = bytearray(RandomizedCipher(KEY).encrypt("secret"))
        token[-1] ^= 0x01
        with pytest.raises(CryptoError):
            RandomizedCipher(KEY).decrypt(bytes(token))

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            DeterministicCipher(b"short")


class TestOpe:
    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40),
                    min_size=2, max_size=20, unique=True))
    @settings(max_examples=25)
    def test_order_preserved(self, values):
        cipher = OpeCipher(KEY)
        tokens = [cipher.encrypt(v) for v in values]
        assert [t for _, t in sorted(zip(values, tokens))] == \
            sorted(tokens)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=25)
    def test_roundtrip(self, value):
        cipher = OpeCipher(KEY)
        assert cipher.decrypt_numeric(cipher.encrypt(value)) == value

    def test_numeric_types_interleave_consistently(self):
        cipher = OpeCipher(KEY)
        assert cipher.encrypt(100) == cipher.encrypt(100.0)
        assert cipher.encrypt(10) < cipher.encrypt(10.5) \
            < cipher.encrypt(11)

    def test_dates_and_strings_orderable(self):
        cipher = OpeCipher(KEY)
        assert cipher.encrypt(date(1994, 1, 1)) \
            < cipher.encrypt(date(1995, 1, 1))
        assert cipher.encrypt("apple") < cipher.encrypt("banana")

    def test_forged_ciphertext_rejected(self):
        cipher = OpeCipher(KEY)
        token = cipher.encrypt(42)
        with pytest.raises(CryptoError):
            cipher.decrypt(token + 1)

    def test_out_of_domain_rejected(self):
        with pytest.raises(CryptoError):
            OpeCipher(KEY).encrypt(2 ** 60)

    def test_decode_numeric(self):
        assert decode_numeric(encode_orderable(7)) == 7
        assert decode_numeric(encode_orderable(7.25)) == 7.25


class TestPaillier:
    @pytest.fixture(scope="class")
    def keys(self):
        return generate_keypair(512)

    def test_roundtrip_and_negatives(self, keys):
        public, private = keys
        for value in (0, 42, -42, 3.14, -0.5):
            assert private.decrypt(public.encrypt(value)) \
                == pytest.approx(value)

    def test_homomorphic_addition(self, keys):
        public, private = keys
        total = public.encrypt(10) + public.encrypt(32)
        assert private.decrypt(total) == 42

    def test_add_plain_and_multiply(self, keys):
        public, private = keys
        c = public.encrypt(10).add_plain(5)
        assert private.decrypt(c) == 15
        assert private.decrypt(public.encrypt(10).multiply_plain(4)) == 40

    def test_randomized_ciphertexts(self, keys):
        public, _ = keys
        assert public.encrypt(1).value != public.encrypt(1).value

    def test_cross_key_addition_rejected(self, keys):
        public, _ = keys
        other_public, _ = generate_keypair(512)
        with pytest.raises(CryptoError):
            _ = public.encrypt(1) + other_public.encrypt(1)

    def test_out_of_range_rejected(self, keys):
        public, _ = keys
        with pytest.raises(CryptoError):
            public.encrypt(2 ** 600)


class TestRsa:
    @pytest.fixture(scope="class")
    def keys(self):
        return generate_rsa(512)

    def test_sign_verify(self, keys):
        public, private = keys
        signature = private.sign(b"message")
        assert public.verify(b"message", signature)
        assert not public.verify(b"other", signature)
        assert not public.verify(b"message", b"\x00" * 64)

    def test_hybrid_encryption_roundtrip(self, keys):
        public, private = keys
        payload = b"x" * 5000  # bigger than the modulus
        assert private.decrypt(public.encrypt(payload)) == payload

    def test_truncated_ciphertext_rejected(self, keys):
        public, private = keys
        with pytest.raises(CryptoError):
            private.decrypt(b"\x00\x00")


class TestKeyManager:
    def make_store(self):
        return KeyStore.generate([
            QueryKey(frozenset({"S", "C"}),
                     EncryptionScheme.DETERMINISTIC),
            QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
            QueryKey(frozenset({"D"}), EncryptionScheme.OPE),
        ])

    def test_cipher_routing(self):
        store = self.make_store()
        assert isinstance(store.cipher_for_attribute("S"),
                          DeterministicCipher)
        assert isinstance(store.cipher_for_attribute("D"), OpeCipher)
        with pytest.raises(KeyManagementError):
            store.cipher_for_attribute("P")  # Paillier needs material

    def test_shared_key_for_cluster(self):
        store = self.make_store()
        assert store.material_for_attribute("S") is \
            store.material_for_attribute("C")

    def test_missing_attribute(self):
        store = self.make_store()
        assert not store.has_attribute("Z")
        with pytest.raises(KeyManagementError):
            store.material_for_attribute("Z")

    def test_subset_distribution(self):
        store = self.make_store()
        subset = store.subset(["kCS"])
        assert subset.has_attribute("S")
        assert not subset.has_attribute("P")

    def test_distributed_keys(self):
        from repro.core.keys import KeyAssignment

        keys = [QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER)]
        assignment = KeyAssignment(
            keys=tuple(keys),
            distribution={"I": frozenset(keys), "Y": frozenset(keys)},
        )
        distributed = DistributedKeys.from_assignment(assignment)
        assert distributed.store_for("I").has_attribute("P")
        assert not distributed.store_for("X").has_attribute("P")

    def test_duplicate_key_rejected(self):
        store = self.make_store()
        with pytest.raises(KeyManagementError):
            store.add(store.material("kCS"))

"""Unit tests for relation profiles (Definition 3.1)."""

import pytest

from repro.core.equivalence import EquivalenceClasses
from repro.core.profile import RelationProfile
from repro.exceptions import ProfileError


class TestConstruction:
    def test_base_relation_profile(self):
        profile = RelationProfile.for_base_relation(["S", "B", "D", "T"])
        assert profile.visible_plaintext == frozenset("SBDT")
        assert not profile.visible_encrypted
        assert not profile.implicit
        assert not profile.equivalences

    def test_rejects_overlapping_visible_sets(self):
        with pytest.raises(ProfileError):
            RelationProfile(
                visible_plaintext=frozenset("A"),
                visible_encrypted=frozenset("A"),
            )

    def test_derived_views(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("A"),
            visible_encrypted=frozenset("B"),
            implicit_plaintext=frozenset("C"),
            implicit_encrypted=frozenset("D"),
        )
        assert profile.visible == frozenset("AB")
        assert profile.implicit == frozenset("CD")
        assert profile.plaintext == frozenset("AC")
        assert profile.encrypted == frozenset("BD")
        assert profile.all_attributes() == frozenset("ABCD")


class TestAlgebra:
    def test_project_keeps_only_listed_visible(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("AB"),
            implicit_plaintext=frozenset("C"),
        )
        projected = profile.project({"A"})
        assert projected.visible_plaintext == frozenset("A")
        assert projected.implicit_plaintext == frozenset("C")

    def test_project_rejects_unknown(self):
        profile = RelationProfile(visible_plaintext=frozenset("A"))
        with pytest.raises(ProfileError):
            profile.project({"Z"})

    def test_add_implicit_tracks_form(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("A"),
            visible_encrypted=frozenset("B"),
        )
        result = profile.add_implicit({"A", "B"})
        assert result.implicit_plaintext == frozenset("A")
        assert result.implicit_encrypted == frozenset("B")

    def test_add_implicit_rejects_invisible(self):
        profile = RelationProfile(visible_plaintext=frozenset("A"))
        with pytest.raises(ProfileError):
            profile.add_implicit({"Z"})

    def test_combine_unions_componentwise(self):
        left = RelationProfile(
            visible_plaintext=frozenset("A"),
            implicit_plaintext=frozenset("C"),
            equivalences=EquivalenceClasses.of({"A", "C"}),
        )
        right = RelationProfile(
            visible_encrypted=frozenset("B"),
            implicit_encrypted=frozenset("D"),
        )
        combined = left.combine(right)
        assert combined.visible_plaintext == frozenset("A")
        assert combined.visible_encrypted == frozenset("B")
        assert combined.implicit_plaintext == frozenset("C")
        assert combined.implicit_encrypted == frozenset("D")
        assert combined.equivalences.are_equivalent("A", "C")

    def test_encrypt_moves_visible_plaintext(self):
        profile = RelationProfile(visible_plaintext=frozenset("AB"))
        encrypted = profile.encrypt({"A"})
        assert encrypted.visible_plaintext == frozenset("B")
        assert encrypted.visible_encrypted == frozenset("A")

    def test_encrypt_rejects_non_plaintext(self):
        profile = RelationProfile(visible_encrypted=frozenset("A"))
        with pytest.raises(ProfileError):
            profile.encrypt({"A"})

    def test_decrypt_moves_visible_encrypted(self):
        profile = RelationProfile(visible_encrypted=frozenset("A"))
        decrypted = profile.decrypt({"A"})
        assert decrypted.visible_plaintext == frozenset("A")
        assert not decrypted.visible_encrypted

    def test_decrypt_rejects_non_encrypted(self):
        profile = RelationProfile(visible_plaintext=frozenset("A"))
        with pytest.raises(ProfileError):
            profile.decrypt({"A"})

    def test_encrypt_decrypt_roundtrip(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("AB"),
            implicit_plaintext=frozenset("C"),
        )
        assert profile.encrypt({"A"}).decrypt({"A"}) == profile

    def test_implicit_survives_encryption(self):
        # Encrypting a visible attribute never repairs an implicit leak.
        profile = RelationProfile(
            visible_plaintext=frozenset("A"),
            implicit_plaintext=frozenset("A"),
        )
        encrypted = profile.encrypt({"A"})
        assert "A" in encrypted.implicit_plaintext


class TestDescribe:
    def test_paper_notation(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("T"),
            visible_encrypted=frozenset("P"),
            implicit_plaintext=frozenset("D"),
            equivalences=EquivalenceClasses.of({"S", "C"}),
        )
        assert profile.describe() == "v:TP* i:D ≃:{C,S}"

    def test_empty_components_render_dashes(self):
        profile = RelationProfile(visible_plaintext=frozenset("A"))
        assert profile.describe() == "v:A i:- ≃:-"

"""Budget primitives: QueryBudget, CancellationToken, backoff clamping."""

from __future__ import annotations

import threading

import pytest

from repro.core.budget import (
    CancellationToken,
    QueryBudget,
    active_token,
    token_scope,
)
from repro.distributed.health import RetryPolicy
from repro.exceptions import (
    DeadlineExceededError,
    QueryAbortedError,
    QueryCancelledError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# QueryBudget
# ----------------------------------------------------------------------
def test_budget_validates_fields():
    with pytest.raises(ValueError, match="deadline_seconds"):
        QueryBudget(deadline_seconds=0.0)
    with pytest.raises(ValueError, match="deadline_seconds"):
        QueryBudget(deadline_seconds=-1.0)
    with pytest.raises(ValueError, match="cost_ceiling_usd"):
        QueryBudget(cost_ceiling_usd=-0.5)
    assert QueryBudget().unlimited
    assert not QueryBudget(deadline_seconds=1.0).unlimited
    assert not QueryBudget(cost_ceiling_usd=1.0).unlimited


# ----------------------------------------------------------------------
# CancellationToken — deadline arithmetic
# ----------------------------------------------------------------------
def test_unbudgeted_token_never_expires():
    clock = FakeClock()
    token = CancellationToken(clock=clock)
    clock.advance(1e9)
    assert not token.expired()
    assert token.remaining_seconds() is None
    assert token.remaining_fraction() is None
    token.check("anywhere")  # must not raise


def test_deadline_countdown_and_expiry():
    clock = FakeClock()
    token = CancellationToken(QueryBudget(deadline_seconds=2.0),
                              clock=clock)
    assert token.remaining_seconds() == pytest.approx(2.0)
    clock.advance(1.5)
    assert token.remaining_seconds() == pytest.approx(0.5)
    assert token.remaining_fraction() == pytest.approx(0.25)
    assert not token.expired()
    clock.advance(1.0)
    assert token.expired()
    assert token.remaining_seconds() == 0.0
    assert token.remaining_fraction() == 0.0
    with pytest.raises(DeadlineExceededError) as excinfo:
        token.check("runtime:fragment f1")
    assert excinfo.value.where == "runtime:fragment f1"
    assert excinfo.value.deadline_seconds == pytest.approx(2.0)
    assert excinfo.value.elapsed_seconds == pytest.approx(2.5)
    assert isinstance(excinfo.value, QueryAbortedError)


def test_clamp_bounds_sleeps_to_remaining_budget():
    clock = FakeClock()
    token = CancellationToken(QueryBudget(deadline_seconds=1.0),
                              clock=clock)
    assert token.clamp(10.0) == pytest.approx(1.0)
    assert token.clamp(0.2) == pytest.approx(0.2)
    clock.advance(2.0)
    assert token.clamp(10.0) == 0.0
    unbounded = CancellationToken(clock=clock)
    assert unbounded.clamp(10.0) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# CancellationToken — cancellation
# ----------------------------------------------------------------------
def test_cancel_raises_at_next_checkpoint_with_reason():
    token = CancellationToken()
    token.cancel("user hit ctrl-c")
    assert token.cancelled
    assert token.cancel_reason == "user hit ctrl-c"
    with pytest.raises(QueryCancelledError) as excinfo:
        token.check("pool:chunk 3/8")
    assert excinfo.value.where == "pool:chunk 3/8"
    assert "user hit ctrl-c" in str(excinfo.value)


def test_cancel_is_idempotent_first_reason_wins():
    token = CancellationToken()
    token.cancel("first")
    token.cancel("second")
    assert token.cancel_reason == "first"


def test_cancellation_wins_over_expiry():
    clock = FakeClock()
    token = CancellationToken(QueryBudget(deadline_seconds=1.0),
                              clock=clock)
    clock.advance(5.0)
    token.cancel()
    with pytest.raises(QueryCancelledError):
        token.check("anywhere")


# ----------------------------------------------------------------------
# Thread-local scope
# ----------------------------------------------------------------------
def test_token_scope_installs_and_restores():
    assert active_token() is None
    outer, inner = CancellationToken(), CancellationToken()
    with token_scope(outer):
        assert active_token() is outer
        with token_scope(inner):
            assert active_token() is inner
        assert active_token() is outer
    assert active_token() is None


def test_token_scope_is_thread_local():
    token = CancellationToken()
    seen: list[CancellationToken | None] = []
    with token_scope(token):
        worker = threading.Thread(target=lambda: seen.append(active_token()))
        worker.start()
        worker.join()
    assert seen == [None]


# ----------------------------------------------------------------------
# RetryPolicy.backoff clamping (satellite a)
# ----------------------------------------------------------------------
def test_backoff_clamps_to_remaining_budget():
    policy = RetryPolicy(max_attempts=5, backoff_base_seconds=4.0,
                         backoff_cap_seconds=4.0, backoff_multiplier=1.0,
                         jitter_fraction=0.0)
    assert policy.backoff(1) == pytest.approx(4.0)
    assert policy.backoff(1, remaining_seconds=1.5) == pytest.approx(1.5)
    assert policy.backoff(1, remaining_seconds=10.0) == pytest.approx(4.0)
    assert policy.backoff(1, remaining_seconds=0.0) == 0.0
    assert policy.backoff(1, remaining_seconds=-3.0) == 0.0

"""Cost-based assignment pipeline (§6–§7)."""

import pytest

from repro.core.assignment import assign
from repro.core.authorization import Authorization, Policy
from repro.core.lineage import augment_view, derived_lineage
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
)
from repro.core.plan import QueryPlan
from repro.core.schema import Relation, Schema
from repro.core.visibility import verify_assignment
from repro.cost.pricing import PriceList
from repro.exceptions import NoCandidateError, UnauthorizedError


@pytest.fixture()
def prices(example):
    return PriceList.from_subjects(example.subjects)


class TestAssign:
    def test_dp_matches_exhaustive(self, example, prices):
        dp = assign(example.plan, example.policy, example.subject_names,
                    prices, user="U", owners=example.owners, strategy="dp")
        exhaustive = assign(example.plan, example.policy,
                            example.subject_names, prices, user="U",
                            owners=example.owners, strategy="exhaustive")
        assert dp.cost.total_usd <= exhaustive.cost.total_usd * 1.02

    def test_dp_beats_or_matches_greedy(self, example, prices):
        dp = assign(example.plan, example.policy, example.subject_names,
                    prices, user="U", owners=example.owners, strategy="dp")
        greedy = assign(example.plan, example.policy,
                        example.subject_names, prices, user="U",
                        owners=example.owners, strategy="greedy")
        assert dp.cost.total_usd <= greedy.cost.total_usd * 1.001

    def test_result_is_verified_authorized(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners)
        assert verify_assignment(
            outcome.extended.plan, example.policy,
            outcome.extended.assignment)

    def test_assignment_within_candidates(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners)
        for node, subject in outcome.assignment.items():
            assert subject in outcome.candidates[node]

    def test_unknown_strategy_rejected(self, example, prices):
        with pytest.raises(ValueError):
            assign(example.plan, example.policy, example.subject_names,
                   prices, user="U", strategy="quantum")

    def test_unauthorized_user_rejected(self, example, prices):
        with pytest.raises(UnauthorizedError):
            assign(example.plan, example.policy, example.subject_names,
                   prices, user="Z", owners=example.owners)

    def test_no_candidates_raises(self, prices):
        schema = Schema()
        relation = schema.add(Relation("R", ["g", "x"]))
        policy = Policy(schema)
        policy.grant(Authorization(relation, ["g", "x"], (), "U"))
        plan = QueryPlan(GroupBy(
            BaseRelationNode(relation), ["g"],
            Aggregate(AggregateFunction.SUM, "x"),
        ))
        with pytest.raises(NoCandidateError):
            # Subject universe excludes U entirely.
            assign(plan, policy, ["Z"], prices, user="U")

    def test_expensive_provider_avoided(self, example, prices):
        # Pricing X off the market removes it from the chosen assignment.
        from repro.cost.pricing import ResourceRates

        expensive = prices.with_rates(
            "X", ResourceRates(cpu_usd_per_second=1e3))
        costly = assign(example.plan, example.policy,
                        example.subject_names, expensive, user="U",
                        owners=example.owners)
        assert not any(s == "X" for s in costly.assignment.values())

    def test_assignee_lookup(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners)
        assert outcome.assignee(example.having) in \
            outcome.candidates[example.having]

    def test_describe_contains_cost(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners)
        assert "total=$" in outcome.describe()

    def test_unknown_search_impl_rejected(self, example, prices):
        with pytest.raises(ValueError):
            assign(example.plan, example.policy, example.subject_names,
                   prices, user="U", search_impl="quantum")


class TestExhaustive:
    def test_stats_account_for_every_combination(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners, strategy="exhaustive")
        stats = outcome.search_stats
        assert stats is not None
        assert stats["combinations"] > 0
        # Every combination is evaluated, pruned, or skipped-unauthorized.
        assert (stats["evaluated"] + stats["pruned"]
                + stats["skipped_unauthorized"]) == stats["combinations"]

    def test_pruning_preserves_the_optimum(self, example, prices):
        # The pruned search must still find the same minimum cost the DP
        # portfolio approximates from above.
        exhaustive = assign(example.plan, example.policy,
                            example.subject_names, prices, user="U",
                            owners=example.owners, strategy="exhaustive")
        dp = assign(example.plan, example.policy, example.subject_names,
                    prices, user="U", owners=example.owners, strategy="dp")
        assert exhaustive.cost.total_usd <= dp.cost.total_usd * 1.0001

    def test_pruning_actually_prunes(self, example, prices):
        # With user-rate 10× and authority-rate 3× subjects in the
        # domains, the CPU lower bound must cut at least some subtrees.
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners, strategy="exhaustive")
        assert outcome.search_stats["pruned"] > 0

    def test_candidate_combinations_never_skip(self, example, prices):
        # Theorem 5.2(ii): every λ ∈ Λ extends successfully, so the
        # unauthorized-skip counter stays zero for in-Λ enumeration.
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners, strategy="exhaustive")
        assert outcome.search_stats["skipped_unauthorized"] == 0

    def test_unauthorized_skips_are_counted_and_reported(
            self, example, prices, monkeypatch):
        # Force every extension to fail: the search must count each
        # combination as skipped (not silently drop it) and report the
        # tally in the error.
        import re

        import repro.core.assignment as assignment_module

        def always_unauthorized(*args, **kwargs):
            raise UnauthorizedError("forced by the test")

        monkeypatch.setattr(assignment_module, "minimally_extend",
                            always_unauthorized)
        with pytest.raises(NoCandidateError) as excinfo:
            assign(example.plan, example.policy, example.subject_names,
                   prices, user="U", owners=example.owners,
                   strategy="exhaustive")
        match = re.search(r"\((\d+) combinations skipped as unauthorized",
                          str(excinfo.value))
        assert match is not None
        assert int(match.group(1)) > 0

    def test_dp_results_have_no_stats(self, example, prices):
        outcome = assign(example.plan, example.policy,
                         example.subject_names, prices, user="U",
                         owners=example.owners)
        assert outcome.search_stats is None


class TestLineage:
    def test_derived_lineage_of_aliases(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["g", "x"]))
        plan = QueryPlan(GroupBy(BaseRelationNode(relation), ["g"], [
            Aggregate(AggregateFunction.SUM, "x", alias="total"),
            Aggregate(AggregateFunction.COUNT, alias="n"),
        ]))
        lineage = derived_lineage(plan)
        assert lineage == {"total": "x", "n": None}

    def test_augment_view_follows_sources(self):
        from repro.core.authorization import SubjectView

        view = SubjectView("s", frozenset({"x"}), frozenset({"y"}))
        augmented = augment_view(view, {
            "total": "x", "sum_y": "y", "n": None,
        })
        assert "total" in augmented.plaintext
        assert "sum_y" in augmented.encrypted
        assert "n" in augmented.plaintext  # counts are unrestricted

    def test_transitive_lineage(self):
        from repro.core.authorization import SubjectView

        view = SubjectView("s", frozenset({"x"}), frozenset())
        augmented = augment_view(
            view, {"level2": "level1", "level1": "x"})
        # derived_lineage resolves chains before augmenting; simulate it.
        lineage = {"level1": "x", "level2": "level1"}
        from repro.core.lineage import derived_lineage as _  # noqa: F401
        resolved = augment_view(view, {
            name: ("x" if source in ("x", "level1") else source)
            for name, source in lineage.items()
        })
        assert "level1" in augmented.plaintext or \
            "level1" in resolved.plaintext

"""Unit tests for relations, attributes, and schemas."""

import pytest

from repro.core.schema import (
    AttributeSpec,
    DECIMAL,
    INTEGER,
    Relation,
    Schema,
    VARCHAR,
)
from repro.exceptions import SchemaError


class TestAttributeSpec:
    def test_default_width_follows_type(self):
        assert AttributeSpec("a", INTEGER).width == 4
        assert AttributeSpec("a", DECIMAL).width == 8
        assert AttributeSpec("a", VARCHAR).width == 32

    def test_explicit_width_kept(self):
        assert AttributeSpec("a", VARCHAR, width=10).width == 10

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", "blob")

    def test_rejects_bad_distinct_fraction(self):
        with pytest.raises(SchemaError):
            AttributeSpec("a", INTEGER, distinct_fraction=0.0)
        with pytest.raises(SchemaError):
            AttributeSpec("a", INTEGER, distinct_fraction=1.5)

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")


class TestRelation:
    def test_attribute_order_preserved(self):
        relation = Relation("Hosp", ["S", "B", "D", "T"])
        assert relation.attribute_names == ("S", "B", "D", "T")

    def test_attribute_set_and_contains(self):
        relation = Relation("Hosp", ["S", "B"])
        assert relation.attribute_set == frozenset({"S", "B"})
        assert "S" in relation
        assert "X" not in relation

    def test_spec_lookup(self):
        relation = Relation("R", [AttributeSpec("a", INTEGER)])
        assert relation.spec("a").data_type == INTEGER
        with pytest.raises(SchemaError):
            relation.spec("missing")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a", "a"])

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [])

    def test_negative_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a"], cardinality=-1)

    def test_row_width_sums_attribute_widths(self):
        relation = Relation("R", [
            AttributeSpec("a", INTEGER), AttributeSpec("b", DECIMAL),
        ])
        assert relation.row_width() == 12

    def test_equality_and_hash(self):
        first = Relation("R", ["a", "b"])
        second = Relation("R", ["a", "b"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != Relation("R", ["a", "c"])


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema()
        schema.add(Relation("R", ["a"]))
        assert schema.relation("R").name == "R"
        assert "R" in schema
        assert len(schema) == 1

    def test_duplicate_relation_rejected(self):
        schema = Schema()
        schema.add(Relation("R", ["a"]))
        with pytest.raises(SchemaError):
            schema.add(Relation("R", ["b"]))

    def test_global_attribute_uniqueness_enforced(self):
        schema = Schema()
        schema.add(Relation("R1", ["a", "b"]))
        with pytest.raises(SchemaError):
            schema.add(Relation("R2", ["b", "c"]))

    def test_attribute_owner_map(self):
        schema = Schema()
        schema.add(Relation("R1", ["a"]))
        schema.add(Relation("R2", ["b"]))
        assert schema.attribute_owner_map() == {"a": "R1", "b": "R2"}
        assert schema.relation_of("b").name == "R2"
        with pytest.raises(SchemaError):
            schema.relation_of("zzz")

    def test_all_attributes(self):
        schema = Schema()
        schema.add(Relation("R1", ["a"]))
        schema.add(Relation("R2", ["b"]))
        assert schema.all_attributes() == frozenset({"a", "b"})

    def test_unknown_relation_lookup(self):
        with pytest.raises(SchemaError):
            Schema().relation("nope")

"""Profile-propagation rules of every operator (Figure 2).

Each test reproduces the corresponding example column of Figure 2 of the
paper, using its exact attribute sets.
"""

import pytest

from repro.core.equivalence import EquivalenceClasses
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    Projection,
    Selection,
    Udf,
)
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.profile import RelationProfile
from repro.core.schema import Relation
from repro.exceptions import OperationRequirementError, PlanError


def profile(vp="", ve="", ip="", ie="", eq=()):
    return RelationProfile(
        visible_plaintext=frozenset(vp),
        visible_encrypted=frozenset(ve),
        implicit_plaintext=frozenset(ip),
        implicit_encrypted=frozenset(ie),
        equivalences=EquivalenceClasses.of(*eq),
    )


LEAF = BaseRelationNode(Relation("R1", list("BDTPSC")))


class TestProjection:
    def test_figure2_example(self):
        # π_{B,P} over [v: BDTP, i: D, ≃: SC] → [v: BP, i: D, ≃: SC]
        operand = profile(vp="BDTP", ip="D", eq=({"S", "C"},))
        result = Projection(LEAF, ["B", "P"]).output_profile(operand)
        assert result == profile(vp="BP", ip="D", eq=({"S", "C"},))

    def test_splits_encrypted_and_plaintext(self):
        operand = profile(vp="A", ve="B")
        result = Projection(LEAF, ["A", "B"]).output_profile(operand)
        assert result.visible_plaintext == frozenset("A")
        assert result.visible_encrypted == frozenset("B")

    def test_rejects_unknown_attribute(self):
        with pytest.raises(OperationRequirementError):
            Projection(LEAF, ["Z"]).output_profile(profile(vp="A"))

    def test_rejects_empty(self):
        with pytest.raises(PlanError):
            Projection(LEAF, [])


class TestSelection:
    def test_value_condition_adds_implicit(self):
        # σ_{D='stroke'} over [v: BDTP, i: -, ≃: SC] adds D to implicit.
        operand = profile(vp="BDTP", eq=({"S", "C"},))
        node = Selection(LEAF, AttributeValuePredicate(
            "D", ComparisonOp.EQ, "stroke"))
        result = node.output_profile(operand)
        assert result == profile(vp="BDTP", ip="D", eq=({"S", "C"},))

    def test_value_condition_on_encrypted_attr(self):
        operand = profile(ve="D", vp="T")
        node = Selection(LEAF, AttributeValuePredicate(
            "D", ComparisonOp.EQ, "x"))
        result = node.output_profile(operand)
        assert result.implicit_encrypted == frozenset("D")

    def test_comparison_condition_adds_equivalence(self):
        # σ_{S=C} over [v: SCTP, i: D, ≃: -] adds {S,C} (Fig. 2 example).
        operand = profile(vp="SCTP", ip="D")
        node = Selection(LEAF, AttributeComparisonPredicate(
            "S", ComparisonOp.EQ, "C"))
        result = node.output_profile(operand)
        assert result == profile(vp="SCTP", ip="D", eq=({"S", "C"},))

    def test_comparison_requires_uniform_form(self):
        operand = profile(vp="S", ve="C")
        node = Selection(LEAF, AttributeComparisonPredicate(
            "S", ComparisonOp.EQ, "C"))
        with pytest.raises(OperationRequirementError):
            node.output_profile(operand)

    def test_introspection(self):
        node = Selection(LEAF, AttributeValuePredicate(
            "D", ComparisonOp.GT, 1))
        assert node.implicit_introduced() == frozenset("D")
        assert node.operand_attributes() == frozenset("D")


class TestCartesianProduct:
    def test_figure2_example(self):
        left = profile(vp="SCP", eq=({"S", "C"},))
        right = profile(vp="B", ip="DT")
        node = CartesianProduct(LEAF, BaseRelationNode(
            Relation("R2", ["x"])))
        result = node.output_profile(left, right)
        assert result == profile(vp="SCPB", ip="DT", eq=({"S", "C"},))

    def test_rejects_overlapping_schemas(self):
        node = CartesianProduct(LEAF, LEAF.with_children(()))
        with pytest.raises(PlanError):
            node.output_attributes(frozenset("A"), frozenset("A"))


class TestJoin:
    def test_figure2_example(self):
        # ⋈_{D=C}: [v: DB] × [v: C, i: P, ≃: SC] → ≃ gains {C,D}.
        left = profile(vp="DB")
        right = profile(vp="C", ip="P", eq=({"S", "C"},))
        node = Join(LEAF, BaseRelationNode(Relation("R2", ["x"])),
                    equals("D", "C"))
        result = node.output_profile(left, right)
        assert result.visible_plaintext == frozenset("DCB")
        assert result.implicit_plaintext == frozenset("P")
        assert result.equivalences.class_of("D") == frozenset("SCD")

    def test_uniform_form_required(self):
        left = profile(vp="S")
        right = profile(ve="C")
        node = Join(LEAF, BaseRelationNode(Relation("R2", ["x"])),
                    equals("S", "C"))
        with pytest.raises(OperationRequirementError):
            node.output_profile(left, right)

    def test_both_encrypted_allowed(self):
        left = profile(ve="S")
        right = profile(ve="C")
        node = Join(LEAF, BaseRelationNode(Relation("R2", ["x"])),
                    equals("S", "C"))
        result = node.output_profile(left, right)
        assert result.equivalences.are_equivalent("S", "C")

    def test_join_requires_comparison_conditions(self):
        with pytest.raises(PlanError):
            Join(LEAF, BaseRelationNode(Relation("R2", ["x"])),
                 AttributeValuePredicate("S", ComparisonOp.EQ, 1))


class TestGroupBy:
    def test_figure2_example(self):
        # γ_{T, avg(P)} over [v: DTPSC, i: D, ≃: SC]
        #   → [v: TP, i: DT, ≃: SC]
        operand = profile(vp="DTPSC", ip="D", eq=({"S", "C"},))
        node = GroupBy(LEAF, ["T"], Aggregate(AggregateFunction.AVG, "P"))
        result = node.output_profile(operand)
        assert result == profile(vp="TP", ip="DT", eq=({"S", "C"},))

    def test_grouping_on_encrypted_attribute(self):
        operand = profile(ve="T", vp="P")
        node = GroupBy(LEAF, ["T"], Aggregate(AggregateFunction.SUM, "P"))
        result = node.output_profile(operand)
        assert result.visible_encrypted == frozenset("T")
        assert result.implicit_encrypted == frozenset("T")
        assert result.visible_plaintext == frozenset("P")

    def test_count_star_keeps_only_grouping(self):
        operand = profile(vp="TP")
        node = GroupBy(LEAF, ["T"], Aggregate(
            AggregateFunction.COUNT, alias="n"))
        result = node.output_profile(operand)
        assert result.visible_plaintext == frozenset({"T", "n"})
        # Counts are fresh plaintext values, not linked to any source.
        assert not result.equivalences

    def test_alias_joins_source_equivalence(self):
        operand = profile(vp="TP")
        node = GroupBy(LEAF, ["T"], Aggregate(
            AggregateFunction.SUM, "P", alias="total"))
        result = node.output_profile(operand)
        assert result.visible_plaintext == frozenset({"T", "total"})
        assert result.equivalences.are_equivalent("P", "total")

    def test_aliased_aggregate_over_encrypted_source(self):
        operand = profile(ve="P", vp="T")
        node = GroupBy(LEAF, ["T"], Aggregate(
            AggregateFunction.SUM, "P", alias="total"))
        result = node.output_profile(operand)
        assert "total" in result.visible_encrypted

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(PlanError):
            GroupBy(LEAF, ["T"], [
                Aggregate(AggregateFunction.SUM, "P"),
                Aggregate(AggregateFunction.AVG, "P"),
            ])

    def test_aggregate_of_grouping_attr_rejected(self):
        with pytest.raises(PlanError):
            GroupBy(LEAF, ["T"], Aggregate(AggregateFunction.SUM, "T"))

    def test_count_star_needs_alias(self):
        with pytest.raises(PlanError):
            Aggregate(AggregateFunction.COUNT)


class TestUdf:
    def test_figure2_example(self):
        # µ_{SB,S} over [v: SBCT, i: D, ≃: SC] → [v: SCT, i: D, ≃: SBC]
        operand = profile(vp="SBCT", ip="D", eq=({"S", "C"},))
        node = Udf(LEAF, ["S", "B"], "S")
        result = node.output_profile(operand)
        assert result.visible_plaintext == frozenset("SCT")
        assert result.implicit_plaintext == frozenset("D")
        assert result.equivalences.class_of("S") == frozenset("SBC")

    def test_inputs_must_share_form(self):
        operand = profile(vp="S", ve="B")
        node = Udf(LEAF, ["S", "B"], "S")
        with pytest.raises(OperationRequirementError):
            node.output_profile(operand)

    def test_output_must_be_an_input(self):
        with pytest.raises(PlanError):
            Udf(LEAF, ["S", "B"], "Z")


class TestEncryptDecrypt:
    def test_encrypt_rule(self):
        # Fig. 2: encrypt T over [v: SBT, i: D] → T moves to encrypted.
        operand = profile(vp="SBT", ip="D")
        result = Encrypt(LEAF, ["T"]).output_profile(operand)
        assert result == profile(vp="SB", ve="T", ip="D")

    def test_decrypt_rule(self):
        operand = profile(vp="SB", ve="T", ip="D")
        result = Decrypt(LEAF, ["T"]).output_profile(operand)
        assert result == profile(vp="SBT", ip="D")

    def test_empty_sets_rejected(self):
        with pytest.raises(PlanError):
            Encrypt(LEAF, [])
        with pytest.raises(PlanError):
            Decrypt(LEAF, [])


class TestBaseRelation:
    def test_projected_leaf(self):
        relation = Relation("Hosp", ["S", "B", "D", "T"])
        leaf = BaseRelationNode(relation, ["S", "D", "T"])
        assert leaf.output_profile() == profile(vp="SDT")
        assert "π[S,D,T]" in leaf.label()

    def test_unknown_projection_rejected(self):
        relation = Relation("Hosp", ["S"])
        with pytest.raises(PlanError):
            BaseRelationNode(relation, ["Z"])

"""Key establishment (Definition 6.1) and sub-query dispatch (Figure 8)."""

import pytest

from repro.core.dispatch import dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import (
    QueryKey,
    cluster_encrypted_attributes,
    establish_keys,
    schemes_for_extended_plan,
)
from repro.core.requirements import EncryptionScheme
from repro.exceptions import DispatchError, KeyManagementError


class TestClustering:
    def test_equivalent_attrs_share_a_cluster(self):
        clusters = cluster_encrypted_attributes(
            {"S", "C", "P"}, [frozenset({"S", "C"})])
        assert frozenset({"S", "C"}) in clusters
        assert frozenset({"P"}) in clusters

    def test_partial_overlap_keeps_only_encrypted(self):
        clusters = cluster_encrypted_attributes(
            {"S"}, [frozenset({"S", "C"})])
        assert clusters == (frozenset({"S"}),)

    def test_no_equivalences_all_singletons(self):
        clusters = cluster_encrypted_attributes({"A", "B"}, [])
        assert set(clusters) == {frozenset({"A"}), frozenset({"B"})}


class TestFigure7aKeys:
    def test_key_set_and_distribution(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        by_name = {k.name: k for k in keys.keys}
        assert set(by_name) == {"kCS", "kP"}
        # Figure 8: kSC goes to H and I, kP to I and Y.
        assert keys.holders(by_name["kCS"]) == frozenset({"H", "I"})
        assert keys.holders(by_name["kP"]) == frozenset({"I", "Y"})

    def test_schemes_match_operations(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        assert keys.key_for("S").scheme is EncryptionScheme.DETERMINISTIC
        assert keys.key_for("P").scheme is EncryptionScheme.PAILLIER

    def test_key_for_unknown_attribute(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        with pytest.raises(KeyManagementError):
            keys.key_for("Z")

    def test_keys_for_subject(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        assert {k.name for k in keys.keys_for_subject("I")} == {"kCS", "kP"}
        assert not keys.keys_for_subject("X")


class TestSchemesForExtendedPlan:
    def test_transit_only_attributes_get_randomized(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        schemes = schemes_for_extended_plan(extended)
        # S and C are compared encrypted at X: deterministic.
        assert schemes["S"] is EncryptionScheme.DETERMINISTIC
        # P is summed encrypted at X: Paillier.
        assert schemes["P"] is EncryptionScheme.PAILLIER

    def test_note2_downgrades_key_holder_demands(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7b(),
            owners=example.owners,
        )
        # Without note 2: σ(D='stroke') on encrypted D demands equality.
        plain = schemes_for_extended_plan(extended)
        assert plain["D"] is EncryptionScheme.DETERMINISTIC
        # With note 2: H evaluates D on plaintext (it holds kD), so D is
        # only in transit — randomized suffices.
        with_note2 = schemes_for_extended_plan(
            extended, policy=example.policy)
        assert with_note2["D"] is EncryptionScheme.RANDOMIZED


class TestQueryKey:
    def test_name_and_covers(self):
        key = QueryKey(frozenset({"S", "C"}))
        assert key.name == "kCS"
        assert key.covers("S") and not key.covers("P")


class TestDispatch:
    def make(self, example, assignment):
        extended = minimally_extend(
            example.plan, example.policy, assignment,
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        return dispatch(extended, keys, owners=example.owners, user="U"), \
            extended, keys

    def test_figure8_fragments(self, example):
        plan, _, _ = self.make(example, example.assignment_7a())
        assert set(plan.fragments) == {"reqY", "reqX", "reqH", "reqI"}
        order = [f.subject for f in plan.in_call_order()]
        assert order == ["Y", "X", "H", "I"]

    def test_figure8_key_routing(self, example):
        plan, _, _ = self.make(example, example.assignment_7a())
        assert plan.fragment("reqH").key_names == ("kCS",)
        assert plan.fragment("reqI").key_names == ("kCS", "kP")
        assert plan.fragment("reqX").key_names == ()
        assert plan.fragment("reqY").key_names == ("kP",)

    def test_figure8_query_texts(self, example):
        plan, _, _ = self.make(example, example.assignment_7a())
        h_text = plan.fragment("reqH").text
        assert "encrypt(S,kCS)" in h_text
        assert "where D='stroke'" in h_text
        x_text = plan.fragment("reqX").text
        assert "S^k=C^k" in x_text
        assert "avg(P^k)" in x_text
        assert "group by T" in x_text
        y_text = plan.fragment("reqY").text
        assert "decrypt(P^k,kP)" in y_text
        assert "where P>100" in y_text
        i_text = plan.fragment("reqI").text
        assert "encrypt(C,kCS)" in i_text and "encrypt(P,kP)" in i_text

    def test_7b_condition_dispatched_encrypted(self, example):
        plan, _, _ = self.make(example, example.assignment_7b())
        h_text = plan.fragment("reqH").text
        # The condition is formulated on encrypted values (note 2).
        assert "D^k='stroke'" in h_text

    def test_unknown_fragment_raises(self, example):
        plan, _, _ = self.make(example, example.assignment_7a())
        with pytest.raises(DispatchError):
            plan.fragment("reqZZZ")

    def test_describe_lists_all_fragments(self, example):
        plan, _, _ = self.make(example, example.assignment_7a())
        text = plan.describe()
        for subject in "YXHI":
            assert subject in text

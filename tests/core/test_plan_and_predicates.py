"""Unit tests for plan trees, traversal, rewriting, and predicates."""

import pytest

from repro.core.operators import (
    BaseRelationNode,
    Decrypt,
    Encrypt,
    Selection,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Conjunction,
    EncryptedCapability,
    equals,
    value_equals,
)
from repro.core.schema import Relation
from repro.exceptions import PlanError


class TestPredicates:
    def test_value_predicate_attributes_and_capability(self):
        predicate = AttributeValuePredicate("D", ComparisonOp.EQ, "x")
        assert predicate.attributes() == frozenset("D")
        assert predicate.required_capability() is \
            EncryptedCapability.EQUALITY

    def test_range_needs_order(self):
        predicate = AttributeValuePredicate("P", ComparisonOp.GT, 100)
        assert predicate.required_capability() is EncryptedCapability.ORDER

    def test_like_needs_plaintext(self):
        predicate = AttributeValuePredicate("N", ComparisonOp.LIKE, "%x%")
        assert predicate.required_capability() is EncryptedCapability.NONE

    def test_comparison_rejects_self_compare(self):
        with pytest.raises(PlanError):
            AttributeComparisonPredicate("A", ComparisonOp.EQ, "A")

    def test_comparison_two_arg_form(self):
        predicate = AttributeComparisonPredicate("A", "B")
        assert predicate.op is ComparisonOp.EQ
        assert predicate.attributes() == frozenset("AB")

    def test_conjunction_flattens(self):
        inner = Conjunction([value_equals("A", 1), equals("B", "C")])
        outer = Conjunction([inner, value_equals("D", 2)])
        assert len(list(outer.basic_conditions())) == 3
        assert outer.attributes() == frozenset("ABCD")

    def test_conjunction_capability_is_strongest(self):
        conj = Conjunction([
            value_equals("A", 1),
            AttributeValuePredicate("B", ComparisonOp.GT, 2),
        ])
        assert conj.required_capability() is EncryptedCapability.ORDER
        with_like = Conjunction([
            conj, AttributeValuePredicate("C", ComparisonOp.LIKE, "x%"),
        ])
        assert with_like.required_capability() is EncryptedCapability.NONE

    def test_empty_conjunction_rejected(self):
        with pytest.raises(PlanError):
            Conjunction([])

    def test_str_rendering(self):
        assert str(value_equals("D", "stroke")) == "D='stroke'"
        assert str(equals("S", "C")) == "S=C"
        assert str(AttributeValuePredicate(
            "P", ComparisonOp.IN, (1, 2))) == "P in (1, 2)"


class TestQueryPlan:
    def build(self):
        relation = Relation("R", ["a", "b"])
        leaf = BaseRelationNode(relation)
        select = Selection(leaf, value_equals("a", 1))
        return QueryPlan(select), leaf, select

    def test_postorder_children_first(self):
        plan, leaf, select = self.build()
        order = list(plan.postorder())
        assert order[0] is leaf and order[-1] is select

    def test_parent_and_ancestors(self):
        plan, leaf, select = self.build()
        assert plan.parent(leaf) is select
        assert plan.parent(select) is None
        assert list(plan.ancestors(leaf)) == [select]
        assert plan.is_descendant(leaf, select)
        assert not plan.is_descendant(select, leaf)

    def test_foreign_node_rejected(self):
        plan, _, _ = self.build()
        stranger = BaseRelationNode(Relation("Z", ["z"]))
        with pytest.raises(PlanError):
            plan.parent(stranger)

    def test_shared_nodes_rejected(self):
        relation = Relation("R", ["a"])
        leaf = BaseRelationNode(relation)
        from repro.core.operators import CartesianProduct

        with pytest.raises(PlanError):
            QueryPlan(CartesianProduct(leaf, leaf))

    def test_profiles_cached_and_identity_keyed(self):
        plan, leaf, select = self.build()
        profiles = plan.profiles()
        assert profiles[leaf].visible_plaintext == frozenset({"a", "b"})
        assert profiles[select].implicit_plaintext == frozenset({"a"})
        assert plan.profiles() is not None  # cached path

    def test_operations_and_leaves(self):
        plan, leaf, select = self.build()
        assert plan.operations() == (select,)
        assert plan.leaves() == (leaf,)

    def test_strip_crypto_nodes(self):
        relation = Relation("R", ["a", "b"])
        leaf = BaseRelationNode(relation)
        wrapped = Decrypt(Encrypt(leaf, ["a"]), ["a"])
        select = Selection(wrapped, value_equals("a", 1))
        stripped = QueryPlan(select).strip_crypto_nodes()
        labels = [n.label() for n in stripped.postorder()]
        assert not any("enc" in l or "dec" in l for l in labels)
        assert len(stripped) == 2

    def test_rewrite_rebuilds_bottom_up(self):
        plan, leaf, select = self.build()
        rebuilt = plan.rewrite(
            lambda node, children: node.with_children(children)
        )
        assert len(rebuilt) == len(plan)
        assert rebuilt.root is not plan.root

    def test_pretty_includes_annotations(self):
        plan, leaf, select = self.build()
        text = plan.pretty({select: "note!"})
        assert "note!" in text

    def test_describe_profiles_renders_tags(self):
        plan, _, _ = self.build()
        assert "v:" in plan.describe_profiles()

"""Operation requirements (Ap), scheme selection, and candidates (Def 5.2–5.3)."""

import pytest

from repro.core.candidates import (
    compute_candidates,
    minimum_required_view,
    minimum_view_profiles,
    user_can_receive_result,
)
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Selection,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    EncryptedCapability,
)
from repro.core.profile import RelationProfile
from repro.core.requirements import (
    EncryptionScheme,
    SchemeCapabilities,
    chosen_schemes,
    infer_plaintext_requirements,
    select_scheme,
)
from repro.core.schema import Relation, Schema
from repro.exceptions import NoCandidateError
from repro.paper_example import FIGURE_6_CANDIDATES, build_running_example
from helpers import make_udf_plan


class TestSelectScheme:
    def test_highest_protection_order(self):
        assert select_scheme(frozenset()) is EncryptionScheme.RANDOMIZED
        assert select_scheme(
            frozenset({EncryptedCapability.EQUALITY})
        ) is EncryptionScheme.DETERMINISTIC
        assert select_scheme(
            frozenset({EncryptedCapability.ORDER})
        ) is EncryptionScheme.OPE
        assert select_scheme(
            frozenset({EncryptedCapability.ADDITION})
        ) is EncryptionScheme.PAILLIER

    def test_incompatible_mix_returns_none(self):
        assert select_scheme(frozenset({
            EncryptedCapability.ADDITION, EncryptedCapability.ORDER,
        })) is None

    def test_none_capability_never_encryptable(self):
        assert select_scheme(
            frozenset({EncryptedCapability.NONE})) is None

    def test_disabled_capabilities(self):
        no_ope = SchemeCapabilities(ope=False)
        assert select_scheme(
            frozenset({EncryptedCapability.ORDER}), no_ope) is None
        none_caps = SchemeCapabilities.none()
        assert select_scheme(
            frozenset({EncryptedCapability.EQUALITY}), none_caps) is None
        assert select_scheme(frozenset(), none_caps) \
            is EncryptionScheme.RANDOMIZED


class TestInferRequirements:
    def test_running_example_requirements(self, example):
        requirements = infer_plaintext_requirements(example.plan)
        assert requirements[example.selection] == frozenset()
        assert requirements[example.join] == frozenset()
        assert requirements[example.group_by] == frozenset()
        # avg(P) is Paillier-born: the range HAVING needs plaintext.
        assert requirements[example.having] == frozenset("P")

    def test_udf_inputs_need_plaintext(self):
        plan, _ = make_udf_plan()
        requirements = infer_plaintext_requirements(plan)
        (udf,) = plan.operations()
        assert requirements[udf] == frozenset({"m0", "m1"})

    def test_like_forces_plaintext(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["n", "v"]))
        plan = QueryPlan(Selection(
            BaseRelationNode(relation),
            AttributeValuePredicate("n", ComparisonOp.LIKE, "a%"),
        ))
        requirements = infer_plaintext_requirements(plan)
        assert requirements[plan.root] == frozenset("n")

    def test_no_ope_forces_plaintext_ranges(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["n"]))
        plan = QueryPlan(Selection(
            BaseRelationNode(relation),
            AttributeValuePredicate("n", ComparisonOp.GT, 5),
        ))
        requirements = infer_plaintext_requirements(
            plan, SchemeCapabilities(ope=False))
        assert requirements[plan.root] == frozenset("n")

    def test_overrides_are_merged(self, example):
        requirements = infer_plaintext_requirements(
            example.plan, overrides={example.join: frozenset("S")})
        assert "S" in requirements[example.join]


class TestChosenSchemes:
    def test_running_example_schemes(self, example):
        schemes = chosen_schemes(example.plan)
        assert schemes["S"] is EncryptionScheme.DETERMINISTIC
        assert schemes["C"] is EncryptionScheme.DETERMINISTIC
        assert schemes["P"] is EncryptionScheme.PAILLIER
        # D is matched by an equality selection → deterministic.
        assert schemes["D"] is EncryptionScheme.DETERMINISTIC
        # B is never touched → randomized (highest protection).
        assert schemes["B"] is EncryptionScheme.RANDOMIZED


class TestMinimumRequiredView:
    def test_encrypts_all_but_needed(self):
        profile = RelationProfile(visible_plaintext=frozenset("SDT"))
        view = minimum_required_view(profile, {"D"})
        assert view.visible_plaintext == frozenset("D")
        assert view.visible_encrypted == frozenset("ST")

    def test_decrypts_needed_encrypted(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("T"),
            visible_encrypted=frozenset("P"),
        )
        view = minimum_required_view(profile, {"P"})
        assert view.visible_plaintext == frozenset("P")
        assert view.visible_encrypted == frozenset("T")


class TestCandidates:
    def test_figure6_candidate_sets(self, example):
        candidates = compute_candidates(
            example.plan, example.policy, example.subject_names)
        nodes = {
            "selection": example.selection, "join": example.join,
            "group_by": example.group_by, "having": example.having,
        }
        for key, node in nodes.items():
            expected = frozenset(FIGURE_6_CANDIDATES[key])
            assert candidates[node] == expected, key

    def test_min_view_profiles_match_figure6(self, example):
        min_views = minimum_view_profiles(example.plan)
        join_profile = min_views.result_profile(example.join)
        # Fig. 6: join result is fully encrypted with ≃ SC and i: D.
        assert join_profile.visible_encrypted == frozenset("SDTCP")
        assert join_profile.implicit_encrypted == frozenset("D")
        assert join_profile.equivalences.are_equivalent("S", "C")

    def test_min_view_having_needs_plaintext_p(self, example):
        min_views = minimum_view_profiles(example.plan)
        (having_view,) = min_views.views_for(example.having)
        assert "P" in having_view.visible_plaintext

    def test_require_nonempty(self, example):
        # Restrict the subject universe to one that cannot run the join.
        candidates = compute_candidates(
            example.plan, example.policy, ["I"])
        with pytest.raises(NoCandidateError):
            candidates.require_nonempty()

    def test_user_can_receive_result(self, example):
        assert user_can_receive_result(example.plan, example.policy, "U")
        # Z lacks plaintext visibility on P: cannot take delivery.
        assert not user_can_receive_result(
            example.plan, example.policy, "Z")

    def test_describe_mentions_candidates(self, example):
        candidates = compute_candidates(
            example.plan, example.policy, example.subject_names)
        assert "Λ=" in candidates.describe()


class TestGroupByInstanceTracking:
    def test_aggregate_output_capabilities_are_pinned(self):
        # sum output is Paillier-born: a later range demand must fall
        # back to plaintext (the running example's σ(avg(P)>100)).
        schema = Schema()
        relation = schema.add(Relation("R", ["g", "x"]))
        grouped = GroupBy(BaseRelationNode(relation), ["g"],
                          Aggregate(AggregateFunction.SUM, "x"))
        having = Selection(grouped, AttributeValuePredicate(
            "x", ComparisonOp.GT, 10))
        plan = QueryPlan(having)
        requirements = infer_plaintext_requirements(plan)
        assert requirements[having] == frozenset("x")

    def test_min_max_outputs_stay_comparable(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["g", "x"]))
        grouped = GroupBy(BaseRelationNode(relation), ["g"],
                          Aggregate(AggregateFunction.MAX, "x"))
        having = Selection(grouped, AttributeValuePredicate(
            "x", ComparisonOp.GT, 10))
        plan = QueryPlan(having)
        requirements = infer_plaintext_requirements(plan)
        # OPE-born max output still supports ranges: no plaintext needed.
        assert requirements[having] == frozenset()

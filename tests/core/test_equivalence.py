"""Unit and property tests for the equivalence-class partition (R≃)."""

from hypothesis import given, strategies as st

from repro.core.equivalence import EquivalenceClasses

ATTRS = st.sampled_from(list("ABCDEFGH"))
CLASSES = st.lists(
    st.frozensets(ATTRS, min_size=2, max_size=4), min_size=0, max_size=5
)


class TestBasics:
    def test_empty(self):
        eq = EquivalenceClasses.empty()
        assert not eq
        assert len(eq) == 0
        assert eq.class_of("A") == frozenset({"A"})

    def test_union_set_creates_class(self):
        eq = EquivalenceClasses.empty().union_set({"S", "C"})
        assert eq.are_equivalent("S", "C")
        assert eq.class_of("S") == frozenset({"S", "C"})

    def test_union_set_merges_overlapping(self):
        eq = EquivalenceClasses.of({"A", "B"}, {"C", "D"})
        merged = eq.union_set({"B", "C"})
        assert merged.class_of("A") == frozenset("ABCD")

    def test_singleton_union_is_noop(self):
        eq = EquivalenceClasses.of({"A", "B"})
        assert eq.union_set({"A"}) == eq
        assert eq.union_set({"Z"}) == eq
        assert eq.union_set(set()) == eq

    def test_transitive_closure_on_construction(self):
        eq = EquivalenceClasses.of({"A", "B"}, {"B", "C"})
        assert eq.are_equivalent("A", "C")
        assert len(eq) == 1

    def test_merge_partitions(self):
        left = EquivalenceClasses.of({"A", "B"})
        right = EquivalenceClasses.of({"B", "C"}, {"D", "E"})
        merged = left.merge(right)
        assert merged.class_of("A") == frozenset("ABC")
        assert merged.class_of("D") == frozenset("DE")

    def test_merge_with_empty(self):
        eq = EquivalenceClasses.of({"A", "B"})
        assert eq.merge(EquivalenceClasses.empty()) == eq
        assert EquivalenceClasses.empty().merge(eq) == eq

    def test_members(self):
        eq = EquivalenceClasses.of({"A", "B"}, {"C", "D"})
        assert eq.members() == frozenset("ABCD")

    def test_restrict(self):
        eq = EquivalenceClasses.of({"A", "B", "C"})
        restricted = eq.restrict({"A", "B"})
        assert restricted.class_of("A") == frozenset({"A", "B"})
        assert restricted.class_of("C") == frozenset({"C"})

    def test_refines(self):
        fine = EquivalenceClasses.of({"A", "B"})
        coarse = EquivalenceClasses.of({"A", "B", "C"})
        assert fine.refines(coarse)
        assert not coarse.refines(fine)

    def test_equality_and_hash(self):
        first = EquivalenceClasses.of({"A", "B"}, {"C", "D"})
        second = EquivalenceClasses.of({"C", "D"}, {"B", "A"})
        assert first == second
        assert hash(first) == hash(second)

    def test_repr_is_stable(self):
        eq = EquivalenceClasses.of({"B", "A"})
        assert repr(eq) == "EquivalenceClasses({A,B})"


class TestProperties:
    @given(CLASSES)
    def test_classes_are_disjoint(self, classes):
        eq = EquivalenceClasses(classes)
        seen: set[str] = set()
        for cls_ in eq:
            assert not (cls_ & seen)
            seen |= cls_

    @given(CLASSES, st.frozensets(ATTRS, min_size=2, max_size=4))
    def test_union_set_makes_members_equivalent(self, classes, added):
        eq = EquivalenceClasses(classes).union_set(added)
        members = sorted(added)
        for other in members[1:]:
            assert eq.are_equivalent(members[0], other)

    @given(CLASSES, CLASSES)
    def test_merge_is_commutative(self, first, second):
        a = EquivalenceClasses(first)
        b = EquivalenceClasses(second)
        assert a.merge(b) == b.merge(a)

    @given(CLASSES, st.frozensets(ATTRS, min_size=2, max_size=4))
    def test_union_only_coarsens(self, classes, added):
        before = EquivalenceClasses(classes)
        after = before.union_set(added)
        assert before.refines(after)

    @given(CLASSES)
    def test_equivalence_is_symmetric(self, classes):
        eq = EquivalenceClasses(classes)
        for cls_ in eq:
            members = sorted(cls_)
            for first in members:
                for second in members:
                    assert eq.are_equivalent(first, second)
                    assert eq.are_equivalent(second, first)

"""Definition 4.1 (authorized relation) and 4.2 (authorized assignee).

Includes the paper's Example 4.1 verbatim.
"""

import pytest

from repro.core.authorization import SubjectView
from repro.core.equivalence import EquivalenceClasses
from repro.core.profile import RelationProfile
from repro.core.visibility import (
    authorized_assignees,
    check_relation,
    is_authorized_for_relation,
    require_authorized,
    verify_assignment,
)
from repro.exceptions import UnauthorizedError
from repro.paper_example import build_running_example

#: The profile of Example 4.1: [P, BSC, -, -, {SC}].
EXAMPLE_41 = RelationProfile(
    visible_plaintext=frozenset("P"),
    visible_encrypted=frozenset("BSC"),
    equivalences=EquivalenceClasses.of({"S", "C"}),
)


def view(name: str) -> SubjectView:
    return build_running_example().policy.view(name)


class TestExample41:
    def test_y_is_authorized(self):
        assert is_authorized_for_relation(view("Y"), EXAMPLE_41)

    def test_h_fails_condition_1(self):
        check = check_relation(view("H"), EXAMPLE_41)
        assert not check.authorized
        assert any("condition 1" in v and "'P'" in v
                   for v in check.violations)

    def test_u_fails_condition_2(self):
        check = check_relation(view("U"), EXAMPLE_41)
        assert not check.authorized
        assert any("condition 2" in v and "'B'" in v
                   for v in check.violations)

    def test_i_fails_condition_3(self):
        check = check_relation(view("I"), EXAMPLE_41)
        assert not check.authorized
        assert any("condition 3" in v for v in check.violations)


class TestConditions:
    def test_implicit_plaintext_needs_plaintext_authorization(self):
        profile = RelationProfile(
            visible_plaintext=frozenset("T"),
            implicit_plaintext=frozenset("D"),
        )
        subject = SubjectView("s", frozenset("T"), frozenset("D"))
        assert not is_authorized_for_relation(subject, profile)

    def test_plaintext_covers_encrypted_requirement(self):
        profile = RelationProfile(visible_encrypted=frozenset("A"))
        subject = SubjectView("s", frozenset("A"), frozenset())
        assert is_authorized_for_relation(subject, profile)

    def test_uniform_visibility_applies_to_invisible_members(self):
        # All equivalence-set members count, visible or not (§4).
        profile = RelationProfile(
            visible_plaintext=frozenset("A"),
            equivalences=EquivalenceClasses.of({"A", "B"}),
        )
        missing_b = SubjectView("s", frozenset("A"), frozenset())
        assert not is_authorized_for_relation(missing_b, profile)
        has_b = SubjectView("s", frozenset("AB"), frozenset())
        assert is_authorized_for_relation(has_b, profile)

    def test_require_authorized_raises_with_context(self):
        profile = RelationProfile(visible_plaintext=frozenset("A"))
        subject = SubjectView("s", frozenset(), frozenset())
        with pytest.raises(UnauthorizedError) as error:
            require_authorized(subject, profile, "test relation")
        assert error.value.subject == "s"
        assert error.value.violations


class TestFigure3Assignees:
    def test_assignees_match_paper(self):
        example = build_running_example()
        assignees = authorized_assignees(
            example.plan, example.policy, example.subject_names
        )
        assert "".join(sorted(assignees[example.selection])) == "HU"
        assert "".join(sorted(assignees[example.join])) == "U"
        assert "".join(sorted(assignees[example.group_by])) == "U"
        assert "".join(sorted(assignees[example.having])) == "UY"


class TestVerifyAssignment:
    def test_accepts_authorized_assignment(self):
        example = build_running_example()
        assignment = {
            example.selection: "H",
            example.join: "U",
            example.group_by: "U",
            example.having: "U",
        }
        assert verify_assignment(example.plan, example.policy, assignment)

    def test_rejects_unauthorized_assignment(self):
        example = build_running_example()
        assignment = {
            example.selection: "H",
            example.join: "X",  # X may not see S, C in plaintext
            example.group_by: "U",
            example.having: "U",
        }
        with pytest.raises(UnauthorizedError):
            verify_assignment(example.plan, example.policy, assignment)

    def test_rejects_missing_coverage(self):
        example = build_running_example()
        with pytest.raises(UnauthorizedError):
            verify_assignment(example.plan, example.policy, {})

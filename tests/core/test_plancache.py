"""Policy-versioned assignment cache and plan fingerprints."""

import pytest

from repro.core.assignment import assign
from repro.core.authorization import Authorization, Policy
from repro.core.operators import BaseRelationNode, Projection, Selection
from repro.core.plan import NodeMap, QueryPlan
from repro.core.plancache import AssignmentCache
from repro.core.predicates import value_equals
from repro.core.schema import Relation, Schema
from repro.cost.pricing import PriceList
from repro.exceptions import AuthorizationError


@pytest.fixture()
def prices(example):
    return PriceList.from_subjects(example.subjects)


class TestPolicyVersion:
    def test_grant_bumps_version(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["a", "b"]))
        policy = Policy(schema)
        assert policy.version == 0
        policy.grant(Authorization(relation, ["a"], [], "U"))
        assert policy.version == 1
        policy.grant(Authorization(relation, [], ["b"], "P"))
        assert policy.version == 2

    def test_revoke_removes_rule_and_bumps_version(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["a"]))
        policy = Policy(schema)
        policy.grant(Authorization(relation, ["a"], [], "U"))
        before = policy.version
        revoked = policy.revoke("R", "U")
        assert revoked.plaintext == frozenset({"a"})
        assert policy.version == before + 1
        assert policy.rule_for("R", "U") is None
        assert "U" not in policy.subjects()

    def test_revoke_missing_rule_is_noop(self):
        policy = Policy()
        before = policy.version
        assert policy.revoke("R", "U") is None
        assert policy.version == before
        assert policy.deltas_since(before) == ()

    def test_duplicate_grant_is_noop(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["a"]))
        policy = Policy(schema)
        granted = policy.grant(Authorization(relation, ["a"], [], "U"))
        before = policy.version
        again = policy.grant(Authorization(relation, ["a"], [], "U"))
        assert again is granted
        assert policy.version == before
        assert policy.deltas_since(before) == ()

    def test_conflicting_grant_still_raises_without_bump(self):
        schema = Schema()
        relation = schema.add(Relation("R", ["a", "b"]))
        policy = Policy(schema)
        policy.grant(Authorization(relation, ["a"], [], "U"))
        before = policy.version
        with pytest.raises(AuthorizationError):
            policy.grant(Authorization(relation, ["b"], [], "U"))
        assert policy.version == before


class TestPlanFingerprint:
    def build(self, value=1):
        relation = Relation("R", ["a", "b"], cardinality=100)
        return QueryPlan(Selection(BaseRelationNode(relation),
                                   value_equals("a", value)))

    def test_structurally_equal_plans_share_fingerprints(self):
        assert self.build().fingerprint() == self.build().fingerprint()

    def test_different_predicates_differ(self):
        assert self.build(1).fingerprint() != self.build(2).fingerprint()

    def test_different_cardinality_differs(self):
        small = Relation("R", ["a"], cardinality=10)
        large = Relation("R", ["a"], cardinality=1000)
        plan_small = QueryPlan(Projection(BaseRelationNode(small), ["a"]))
        plan_large = QueryPlan(Projection(BaseRelationNode(large), ["a"]))
        assert plan_small.fingerprint() != plan_large.fingerprint()

    def test_fingerprint_is_cached(self):
        plan = self.build()
        assert plan.fingerprint() is plan.fingerprint()


class TestAssignmentCache:
    def test_repeated_query_hits(self, example, prices):
        cache = AssignmentCache()
        first = assign(example.plan, example.policy, example.subject_names,
                       prices, user="U", owners=example.owners, cache=cache)
        second = assign(example.plan, example.policy, example.subject_names,
                        prices, user="U", owners=example.owners, cache=cache)
        assert second is first
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_structurally_equal_plan_hits_and_rebinds(self, example,
                                                      prices):
        from repro.paper_example import build_running_example

        cache = AssignmentCache()
        first = assign(example.plan, example.policy, example.subject_names,
                       prices, user="U", owners=example.owners, cache=cache)
        other = build_running_example()
        # Same structure, same policy/prices objects: a hit, re-keyed
        # onto the fresh plan's nodes (the repeat-query scenario
        # re-parses the query per request).
        second = assign(other.plan, example.policy, example.subject_names,
                        prices, user="U", owners=example.owners, cache=cache)
        assert cache.info()["hits"] == 1
        assert second.cost is first.cost
        assert second.extended is first.extended
        # The rebound result answers for the *caller's* nodes.
        for node in other.plan.operations():
            assert second.assignee(node) in second.candidates[node]
        assert second.assignee(other.having) == first.assignee(
            example.having)
        assert second.candidates.min_views.result_profile(other.plan.root) \
            == first.candidates.min_views.result_profile(example.plan.root)

    def test_policy_change_invalidates(self, example, prices):
        cache = AssignmentCache()
        first = assign(example.plan, example.policy, example.subject_names,
                       prices, user="U", owners=example.owners, cache=cache)
        # Revoke + re-grant an unrelated-looking rule: the version moved,
        # so the cache must recompute.
        rule = example.policy.revoke("Ins", "Y")
        example.policy.grant(rule)
        second = assign(example.plan, example.policy, example.subject_names,
                        prices, user="U", owners=example.owners, cache=cache)
        assert second is not first
        assert second.cost.total_usd == pytest.approx(first.cost.total_usd)

    def test_different_prices_object_misses(self, example, prices):
        cache = AssignmentCache()
        first = assign(example.plan, example.policy, example.subject_names,
                       prices, user="U", owners=example.owners, cache=cache)
        other_prices = PriceList.from_subjects(example.subjects)
        second = assign(example.plan, example.policy,
                        example.subject_names, other_prices, user="U",
                        owners=example.owners, cache=cache)
        assert second is not first

    def test_different_strategy_misses(self, example, prices):
        cache = AssignmentCache()
        assign(example.plan, example.policy, example.subject_names, prices,
               user="U", owners=example.owners, cache=cache)
        assign(example.plan, example.policy, example.subject_names, prices,
               user="U", owners=example.owners, cache=cache,
               strategy="greedy")
        assert cache.info()["hits"] == 0
        assert cache.info()["size"] == 2

    def test_lru_eviction(self):
        cache = AssignmentCache(maxsize=2)
        cache.put(("a",), (), 1)
        cache.put(("b",), (), 2)
        assert cache.get(("a",), ()) == 1  # refresh a
        cache.put(("c",), (), 3)  # evicts b
        assert cache.get(("b",), ()) is None
        assert cache.get(("a",), ()) == 1
        assert cache.get(("c",), ()) == 3

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            AssignmentCache(maxsize=0)


class TestNodeMap:
    def test_identity_keyed(self):
        relation = Relation("R", ["a"])
        first = BaseRelationNode(relation)
        second = BaseRelationNode(relation)  # structurally equal, distinct
        mapping = NodeMap([(first, "one")])
        assert mapping[first] == "one"
        assert second not in mapping
        assert mapping.get(second) is None
        with pytest.raises(KeyError):
            mapping[second]

    def test_from_mapping_and_iteration(self):
        relation = Relation("R", ["a"])
        nodes = [BaseRelationNode(relation) for _ in range(3)]
        mapping = NodeMap({node: index for index, node in enumerate(nodes)})
        assert len(mapping) == 3
        assert list(mapping.values()) == [0, 1, 2]
        assert [node for node, _ in mapping.items()] == nodes
        assert all(node in mapping for node in nodes)


class TestAssigneeIsLive:
    def test_rebinding_an_assignee_is_visible(self, example, prices):
        result = assign(example.plan, example.policy,
                        example.subject_names, prices, user="U",
                        owners=example.owners)
        original = result.assignee(example.having)
        assert result.assignee(example.having) == original  # warm lookup
        result.assignment[example.having] = "rebound"
        assert result.assignee(example.having) == "rebound"
        ext_node = next(iter(result.extended.assignment))
        result.extended.assignment[ext_node] = "rebound"
        assert result.extended.assignee(ext_node) == "rebound"

"""Unit tests for the authorization model (§2) and Figure 4's views."""

import pytest

from repro.core.authorization import (
    ANY,
    Authorization,
    Policy,
    Subject,
    SubjectKind,
    SubjectView,
)
from repro.core.schema import Relation, Schema
from repro.exceptions import AuthorizationError
from repro.paper_example import FIGURE_4_VIEWS, build_running_example


class TestAuthorization:
    def test_p_and_e_must_be_disjoint(self):
        with pytest.raises(AuthorizationError):
            Authorization("R", ["a"], ["a"], "S")

    def test_relation_object_validates_attributes(self):
        relation = Relation("R", ["a", "b"])
        with pytest.raises(AuthorizationError):
            Authorization(relation, ["z"], [], "S")

    def test_describe_uses_paper_notation(self):
        rule = Authorization("Hosp", ["D", "T"], ["S"], "X")
        assert rule.describe() == "[DT,S]→X"

    def test_subject_object_accepted(self):
        rule = Authorization("R", ["a"], [], Subject("X"))
        assert rule.subject == "X"


class TestSubject:
    def test_reserved_any_rejected(self):
        with pytest.raises(AuthorizationError):
            Subject("any")

    def test_kinds(self):
        assert Subject("U", SubjectKind.USER).kind is SubjectKind.USER


class TestPolicy:
    def make_policy(self):
        schema = Schema()
        schema.add(Relation("R", ["a", "b"]))
        return Policy(schema), schema

    def test_grant_and_rule_lookup(self):
        policy, _ = self.make_policy()
        policy.grant(Authorization("R", ["a"], ["b"], "S"))
        rule = policy.rule_for("R", "S")
        assert rule is not None and rule.plaintext == frozenset({"a"})

    def test_duplicate_rule_rejected(self):
        policy, _ = self.make_policy()
        policy.grant(Authorization("R", ["a"], [], "S"))
        with pytest.raises(AuthorizationError):
            policy.grant(Authorization("R", ["b"], [], "S"))

    def test_unknown_relation_rejected(self):
        policy, _ = self.make_policy()
        with pytest.raises(AuthorizationError):
            policy.grant(Authorization("Zed", ["a"], [], "S"))

    def test_unknown_attribute_rejected(self):
        policy, _ = self.make_policy()
        with pytest.raises(AuthorizationError):
            policy.grant(Authorization("R", ["zzz"], [], "S"))

    def test_any_fallback(self):
        policy, _ = self.make_policy()
        policy.grant(Authorization("R", ["a"], [], ANY))
        rule = policy.rule_for("R", "stranger")
        assert rule is not None and rule.plaintext == frozenset({"a"})

    def test_explicit_rule_beats_any(self):
        policy, _ = self.make_policy()
        policy.grant(Authorization("R", ["a"], [], ANY))
        policy.grant(Authorization("R", [], ["a"], "S"))
        rule = policy.rule_for("R", "S")
        assert rule is not None and rule.encrypted == frozenset({"a"})

    def test_closed_policy_denies_by_default(self):
        policy, _ = self.make_policy()
        assert policy.rule_for("R", "S") is None
        view = policy.view("S")
        assert not view.plaintext and not view.encrypted

    def test_view_normalises_plaintext_over_encrypted(self):
        schema = Schema()
        schema.add(Relation("R1", ["a"]))
        schema.add(Relation("R2", ["b"]))
        policy = Policy(schema)
        policy.grant(Authorization("R1", ["a"], [], "S"))
        policy.grant(Authorization("R2", [], ["b"], "S"))
        view = policy.view("S")
        assert view.plaintext == frozenset({"a"})
        assert view.encrypted == frozenset({"b"})

    def test_subjects_and_relations(self):
        policy, _ = self.make_policy()
        policy.grant(Authorization("R", ["a"], [], "S"))
        policy.grant(Authorization("R", ["b"], [], ANY))
        assert policy.subjects() == frozenset({"S"})
        assert policy.relations() == frozenset({"R"})
        assert len(list(policy.rules())) == 2


class TestSubjectView:
    def test_plaintext_subsumes_encrypted(self):
        view = SubjectView("S", frozenset("A"), frozenset("B"))
        assert view.can_view_plaintext("A")
        assert view.can_view_encrypted("A")
        assert view.can_view_encrypted("B")
        assert not view.can_view_plaintext("B")
        assert not view.can_view_encrypted("Z")

    def test_describe(self):
        view = SubjectView("X", frozenset("DT"), frozenset("S"))
        assert view.describe() == "P_X=DT  E_X=S"


class TestFigure4:
    def test_overall_views_match_paper(self):
        example = build_running_example()
        for name, (plaintext, encrypted) in FIGURE_4_VIEWS.items():
            view = example.policy.view(name)
            assert view.plaintext == frozenset(plaintext), name
            assert view.encrypted == frozenset(encrypted), name

    def test_any_subject_views(self):
        example = build_running_example()
        view = example.policy.view("unknown-provider")
        assert view.plaintext == frozenset("DT")
        assert view.encrypted == frozenset("P")

"""Minimally extended plans (Definition 5.4) — Figure 7 and edge cases."""

import pytest

from repro.core.extension import minimally_extend
from repro.core.operators import Decrypt, Encrypt
from repro.core.visibility import verify_assignment
from repro.exceptions import PlanError, UnauthorizedError


class TestFigure7a:
    def test_encrypted_attributes(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        assert extended.encrypted_attributes == frozenset("SCP")

    def test_source_encryption(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        # I encrypts C and P of Ins at the source (Figure 7a).
        assert extended.source_encryption["Ins"] == frozenset("CP")
        # Hosp's S is encrypted after the selection, not at the leaf.
        assert "Hosp" not in extended.source_encryption

    def test_assignment_is_authorized(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        assert verify_assignment(
            extended.plan, example.policy, extended.assignment)

    def test_p_decrypted_before_having(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        decrypts = extended.decryption_operations()
        assert any(d.attributes == frozenset("P") for d in decrypts)
        # The decrypt is assigned to Y (the having's assignee).
        for node in decrypts:
            if node.attributes == frozenset("P"):
                assert extended.assignee(node) == "Y"


class TestFigure7b:
    def test_encrypted_attributes(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7b(),
            owners=example.owners,
        )
        assert extended.encrypted_attributes == frozenset("DP")

    def test_d_encrypted_below_selection(self, example):
        # "D is encrypted before executing the selection ... so not to
        # leave an implicit plaintext trace" (Fig. 7b note).
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7b(),
            owners=example.owners,
        )
        for node in extended.plan.postorder():
            if isinstance(node, Encrypt) and "D" in node.attributes:
                # The encrypt sits directly on the Hosp leaf.
                assert node.left.is_leaf
                assert extended.assignee(node) == "H"
                break
        else:
            pytest.fail("no encryption of D found")

    def test_selection_profile_shows_encrypted_implicit_d(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7b(),
            owners=example.owners,
        )
        profiles = extended.plan.profiles()
        for node in extended.plan.postorder():
            if node.label().startswith("σ[D="):
                assert "D" in profiles[node].implicit_encrypted
                assert "D" not in profiles[node].implicit_plaintext
                break
        else:
            pytest.fail("selection not found")


class TestGuards:
    def test_rejects_pre_extended_plans(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        with pytest.raises(PlanError):
            minimally_extend(extended.plan, example.policy,
                             extended.assignment)

    def test_rejects_incomplete_assignment(self, example):
        with pytest.raises(PlanError):
            minimally_extend(example.plan, example.policy,
                             {example.join: "X"})

    def test_rejects_non_candidate_assignment(self, example):
        # I has non-uniform visibility over {S, C}: never a candidate
        # for the join; the extension must fail verification.
        bad = dict(example.assignment_7a())
        bad[example.join] = "I"
        with pytest.raises(UnauthorizedError):
            minimally_extend(example.plan, example.policy, bad,
                             owners=example.owners)

    def test_deliver_to_decrypts_root(self, example):
        # Assign everything processable to X (encrypted end to end) and
        # deliver to U: the final result must be decrypted for U.
        assignment = {
            example.selection: "X",
            example.join: "X",
            example.group_by: "X",
            example.having: "Y",
        }
        extended = minimally_extend(
            example.plan, example.policy, assignment,
            owners=example.owners, deliver_to="U",
        )
        root_profile = extended.plan.root_profile()
        assert not root_profile.visible_encrypted

    def test_letter_of_definition_mode(self, example):
        # With opportunistic decryption off, only Ap-driven decrypts
        # appear (the letter of Def. 5.4(i)).
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners, opportunistic_decryption=False,
        )
        decrypts = extended.decryption_operations()
        assert all(d.attributes == frozenset("P") for d in decrypts)


class TestHarmonisation:
    def test_mixed_comparison_resolved(self, random_scenario):
        """Extensions of arbitrary candidate assignments always verify."""
        from repro.core.candidates import compute_candidates

        scenario = random_scenario
        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        assignment = {}
        for node in scenario.plan.operations():
            names = candidates[node]
            if not names:
                pytest.skip("scenario has an unassignable operation")
            assignment[node] = sorted(names)[0]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment)
        assert verify_assignment(
            extended.plan, scenario.policy, extended.assignment)

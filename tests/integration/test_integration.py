"""Integration tests: the paper's figures end to end, TPC-H pipelines,
and encrypted-vs-plaintext execution equivalence on random plans."""

import pytest

from repro.core.assignment import assign
from repro.core.candidates import compute_candidates
from repro.core.dispatch import dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys
from repro.cost.pricing import PriceList
from repro.crypto.keymanager import DistributedKeys
from repro.engine import Executor, Table
from repro.experiments import (
    run_economics,
    run_running_example,
    visibility_ablation,
)
from repro.tpch import (
    TPCH_UDFS,
    all_scenarios,
    build_tpch_schema,
    generate,
    query_plan,
)


class TestRunningExampleFigures:
    @pytest.fixture(scope="class")
    def results(self):
        return run_running_example()

    def test_figure3_profiles(self, results):
        assert results.figure3_profiles == {
            "σ(D='stroke')": "v:DST i:D ≃:-",
            "⋈(S=C)": "v:CDPST i:D ≃:{C,S}",
            "γ(T, avg(P))": "v:PT i:DT ≃:{C,S}",
            "σ(avg(P)>100)": "v:PT i:DPT ≃:{C,S}",
        }

    def test_figure3_assignees(self, results):
        assert results.figure3_assignees == {
            "σ(D='stroke')": "HU",
            "⋈(S=C)": "U",
            "γ(T, avg(P))": "U",
            "σ(avg(P)>100)": "UY",
        }

    def test_figure6_candidates(self, results):
        assert results.figure6_candidates == {
            "σ(D='stroke')": "HIUXYZ",
            "⋈(S=C)": "HUXYZ",
            "γ(T, avg(P))": "HUXYZ",
            "σ(avg(P)>100)": "UY",
        }

    def test_figure7_encryption_sets(self, results):
        assert results.figure7a.encrypted_attributes == frozenset("SCP")
        assert results.figure7b.encrypted_attributes == frozenset("DP")

    def test_figure8_structure(self, results):
        fragments = results.figure8.fragments
        assert fragments["reqX"].requests and \
            set(fragments["reqX"].requests.values()) == {"reqH", "reqI"}
        assert set(fragments["reqY"].requests.values()) == {"reqX"}

    def test_report_renders(self, results):
        text = results.describe()
        assert "Figure 3" in text and "Figure 8" in text


class TestTpchEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        scale = 0.002
        schema = build_tpch_schema(scale)
        data = generate(scale=scale, seed=42)
        scenarios = all_scenarios(schema)
        return schema, data, scenarios

    @pytest.mark.parametrize("number", [3, 5, 12])
    def test_distributed_matches_plaintext(self, setup, number):
        schema, data, scenarios = setup
        scenario_obj = scenarios["UAPenc"]
        plan = query_plan(number, schema)
        prices = PriceList.from_subjects(scenario_obj.subjects)
        outcome = assign(plan, scenario_obj.policy,
                         scenario_obj.subject_names, prices,
                         user=scenario_obj.user,
                         owners=scenario_obj.owners)
        keys = establish_keys(outcome.extended, scenario_obj.policy)
        dispatch_plan = dispatch(outcome.extended, keys,
                                 owners=scenario_obj.owners, user="U")
        from repro.distributed import build_runtime

        authority_tables = {"A1": {}, "A2": {}}
        from repro.tpch.schema import table_owners

        for name, owner in table_owners().items():
            authority_tables[owner][name] = data.table(name)
        runtime = build_runtime(
            scenario_obj.policy, list(scenario_obj.subjects),
            authority_tables, user="U", udfs=TPCH_UDFS,
        )
        result, trace = runtime.run(
            dispatch_plan, outcome.extended, keys,
            DistributedKeys.from_assignment(keys),
        )
        plain = Executor(data.catalog(), udfs=TPCH_UDFS).execute(
            query_plan(number, schema))
        assert not trace.violations
        assert set(result.columns) == set(plain.columns)
        assert len(result) == len(plain)

    def test_economics_shape_small(self):
        results = run_economics(scale=0.05, queries=(3, 5, 13))
        for q in (3, 5, 13):
            assert results.normalized(q, "UAPenc") <= 1.0 + 1e-9
            assert results.normalized(q, "UAPmix") \
                <= results.normalized(q, "UAPenc") + 1e-9

    def test_visibility_ablation_runs(self, setup):
        _, _, scenarios = setup
        points = visibility_ablation(13, scenarios["UAPenc"], scale=0.05)
        variants = {p.variant for p in points}
        assert variants == {"minimal-extension", "minimize-visibility"}


class TestEncryptedEquivalenceOnRandomPlans:
    """Encrypted execution computes the same answers as plaintext."""

    def test_random_scenarios(self, random_scenario):
        import random as stdlib_random

        scenario = random_scenario
        rng = stdlib_random.Random(99)
        catalog = {}
        for relation in scenario.relations:
            rows = [
                tuple(rng.randrange(0, 12)
                      for _ in relation.attribute_names)
                for _ in range(60)
            ]
            catalog[relation.name] = Table(
                relation.name, relation.attribute_names, rows)

        plain = Executor(catalog).execute(scenario.plan)

        candidates = compute_candidates(
            scenario.plan, scenario.policy, scenario.subjects)
        assignment = {}
        for node in scenario.plan.operations():
            if not candidates[node]:
                pytest.skip("unassignable scenario")
            # Prefer a non-user candidate to exercise encryption.
            names = sorted(candidates[node])
            non_user = [n for n in names if n != "U"]
            assignment[node] = (non_user or names)[0]
        extended = minimally_extend(
            scenario.plan, scenario.policy, assignment, deliver_to="U")
        keys = establish_keys(extended, scenario.policy)
        distributed = DistributedKeys.from_assignment(keys)
        encrypted = Executor(
            catalog, keystore=distributed.master).execute(extended.plan)

        assert set(encrypted.columns) == set(plain.columns)
        reordered = encrypted.project(list(plain.columns))
        deduped_plain = plain.project(list(plain.columns))
        got = sorted(map(repr, reordered.rows))
        want = sorted(map(repr, deduped_plain.rows))
        assert got == want

"""CLI surface and experiment-module behaviours."""

import pytest

from helpers import parse_prometheus
from repro.cli import main
from repro.experiments.economics import EconomicResults, run_economics
from repro.exceptions import ReproError


class TestCli:
    def test_example_command(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8" in out

    def test_fig9_subset(self, capsys):
        assert main(["fig9", "--scale", "0.05", "--queries", "3,13"]) == 0
        out = capsys.readouterr().out
        assert "Q3" in out and "Q13" in out and "Q1 " not in out

    def test_dispatch_command(self, capsys):
        assert main(["dispatch"]) == 0
        out = capsys.readouterr().out
        assert "reqX" in out or "⟦reqX⟧" in out or "X [" in out

    def test_ablate_mix(self, capsys):
        assert main(["ablate-mix", "--scale", "0.05",
                     "--queries", "3,10"]) == 0
        out = capsys.readouterr().out
        assert "uniform-visibility penalty" in out

    def test_workload_command(self, capsys):
        assert main(["workload", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "session U:" in out
        assert "X: DENIED" in out
        assert "service totals:" in out

    def test_workload_sequential_schedule(self, capsys):
        assert main(["workload", "--repeat", "1",
                     "--schedule", "sequential"]) == 0
        out = capsys.readouterr().out
        assert "[sequential," in out

    def test_workload_with_generous_budget_reports_remaining(self,
                                                             capsys):
        assert main(["workload", "--repeat", "1",
                     "--deadline-ms", "60000"]) == 0
        out = capsys.readouterr().out
        assert "budget[" in out and "left of 60000ms]" in out

    def test_workload_cost_ceiling_aborts_cleanly(self, capsys):
        assert main(["workload", "--repeat", "1",
                     "--cost-ceiling", "0.0000001"]) == 0
        out = capsys.readouterr().out
        assert "ABORTED" in out and "ceiling" in out
        assert "Traceback" not in out

    def test_metrics_budget_flags_surface_in_the_scrape(self, capsys):
        assert main(["metrics", "--tenants", "1", "--repeat", "1",
                     "--deadline-ms", "60000"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert "repro_gateway_budget_remaining_fraction" in families
        assert "repro_gateway_deadline_exceeded_total" in families
        assert "repro_gateway_shed_predicted_total" in families

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_metrics_command_emits_valid_prometheus(self, capsys):
        assert main(["metrics", "--tenants", "2", "--repeat", "1"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        for name in ("repro_gateway_queries_submitted_total",
                     "repro_gateway_queue_depth",
                     "repro_fragment_latency_seconds",
                     "repro_breaker_state",
                     "repro_cache_hits_total"):
            assert name in families, f"missing series {name}"
        submitted = families["repro_gateway_queries_submitted_total"]
        tenants = {labels["tenant"] for _, labels, _
                   in submitted["samples"]}
        assert tenants == {"tenant-0", "tenant-1"}


class TestCliValidation:
    """Bad knob values exit status 2 with a one-line ranged message."""

    @pytest.mark.parametrize("argv, needle", [
        (["workload", "--workers", "-3"], ">= 0"),
        (["workload", "--workers", "many"], ">= 0"),
        (["workload", "--join-strategy", "turbo"], "invalid choice"),
        (["workload", "--repeat", "0"], ">= 1"),
        (["workload", "--schedule", "bogus"], "invalid choice"),
        (["metrics", "--tenants", "0"], "1..64"),
        (["metrics", "--tenants", "900"], "1..64"),
        (["metrics", "--repeat", "-1"], ">= 1"),
        (["fig9", "--scale", "-1"], "> 0"),
        (["fig9", "--scale", "nan"], "> 0"),
        (["fig9", "--queries", "foo"], "comma-separated"),
        (["ablate-mix", "--queries", "3,,x"], "comma-separated"),
        (["workload", "--deadline-ms", "0"], "milliseconds > 0"),
        (["workload", "--deadline-ms", "soon"], "milliseconds > 0"),
        (["workload", "--cost-ceiling", "-0.5"], "USD > 0"),
        (["metrics", "--deadline-ms", "-10"], "milliseconds > 0"),
        (["metrics", "--cost-ceiling", "free"], "USD > 0"),
    ])
    def test_bad_knobs_exit_status_2(self, argv, needle, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        message = capsys.readouterr().err.strip().splitlines()[-1]
        assert "error:" in message and needle in message
        assert "Traceback" not in message


class TestEconomicsApi:
    @pytest.fixture(scope="class")
    def results(self) -> EconomicResults:
        return run_economics(scale=0.05, queries=(3, 13))

    def test_costs_indexed_per_query_and_scenario(self, results):
        assert len(results.costs) == 2 * 3
        point = results.cost_of(3, "UA")
        assert point.total_usd > 0 and point.assignees

    def test_normalization_baseline_is_one(self, results):
        assert results.normalized(3, "UA") == 1.0

    def test_missing_point_raises(self, results):
        with pytest.raises(ReproError):
            results.cost_of(7, "UA")

    def test_tables_render(self, results):
        assert "Q3" in results.figure9_table()
        assert "savings vs UA" in results.figure10_table()

    def test_savings_are_fractions(self, results):
        assert 0.0 <= results.saving("UAPenc") < 1.0
        assert 0.0 <= results.saving("UAPmix") < 1.0

    def test_cumulative_rows_accumulate(self, results):
        rows = results.cumulative_rows()
        assert rows[-1][1] == pytest.approx(len(rows))  # UA sums to N

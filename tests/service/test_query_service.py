"""QueryService / WorkloadSession: end-to-end SQL workloads with shared
caches, multi-user sessions, and authorization enforcement."""

import pytest

from repro.engine import Executor, Table
from repro.exceptions import SqlAnalysisError, UnauthorizedError
from repro.service import QueryService, WorkloadSession
from repro.tpch import TPCH_UDFS, all_scenarios, build_tpch_schema, \
    generate, query
from repro.tpch.schema import table_owners

RUNNING_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T having avg(P)>100")


@pytest.fixture()
def service(example, example_tables):
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners,
        {"H": {"Hosp": example_tables["Hosp"]},
         "I": {"Ins": example_tables["Ins"]}},
        user="U",
    )


class TestQueryService:
    def test_end_to_end_result(self, service):
        outcome = service.execute(RUNNING_SQL)
        assert outcome.result.sorted_rows() == [("tpa", 120.0)]
        assert outcome.user == "U"
        assert not outcome.trace.violations
        assert outcome.wall_seconds > 0
        assert outcome.cost_usd > 0
        assert not outcome.plan_cached
        assert not outcome.assignment_cached
        assert not outcome.keys_reused

    def test_repeat_query_hits_every_cache_layer(self, service):
        cold = service.execute(RUNNING_SQL)
        warm = service.execute(RUNNING_SQL)
        assert warm.result.rows == cold.result.rows
        assert warm.plan_cached
        assert warm.assignment_cached
        assert warm.keys_reused
        assert warm.trace.fragment_cache_hits == \
            len(warm.trace.fragments_run)
        info = service.cache_info()
        assert info["plans"] == 1
        assert info["assignment"]["hits"] == 1

    def test_rsa_keys_generated_once(self, service):
        before = {name: node.rsa_public
                  for name, node in service.runtime.nodes.items()}
        service.execute(RUNNING_SQL)
        service.execute(RUNNING_SQL)
        for name, node in service.runtime.nodes.items():
            assert node.rsa_public is before[name]

    def test_sequential_override_matches_parallel(self, service):
        parallel = service.execute(RUNNING_SQL)
        sequential = service.execute(RUNNING_SQL,
                                     schedule="sequential")
        assert sequential.trace.schedule == "sequential"
        assert sequential.result.rows == parallel.result.rows

    def test_unauthorized_user_is_refused(self, service):
        # X sees P only encrypted: it may never receive the plaintext
        # result, so the pipeline refuses before anything executes.
        with pytest.raises(UnauthorizedError):
            service.execute(RUNNING_SQL, user="X")

    def test_unknown_sql_rejected(self, service):
        with pytest.raises(SqlAnalysisError):
            service.execute("select Z from Nowhere")

    def test_refresh_tables_invalidates_caches(self, service,
                                               example_tables):
        before = service.execute(RUNNING_SQL)
        assert before.result.sorted_rows() == [("tpa", 120.0)]
        richer = Table("Ins", ("C", "P"), [
            ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
            ("s4", 160.0), ("s5", 150.0),
        ])
        service.refresh_tables({"I": {"Ins": richer}})
        after = service.execute(RUNNING_SQL)
        assert after.result.sorted_rows() == [
            ("surgery", 155.0), ("tpa", 120.0),
        ]

    def test_unrelated_grant_keeps_service_caches_warm(self, example,
                                                       service):
        # A grant to a subject outside the workload's candidate pool is
        # disjoint from every cached entry's dependency footprint: each
        # cache must reconcile surgically and keep its entries warm.
        from repro.core.authorization import Authorization

        service.execute(RUNNING_SQL)
        example.policy.grant(Authorization(
            example.schema.relation("Hosp"), ["T"], ["D"], "Auditor"))
        warm = service.execute(RUNNING_SQL)
        assert warm.assignment_cached
        assert warm.trace.fragment_cache_hits == \
            len(warm.trace.fragments_run)
        assert warm.reconcile.get("assignment_kept", 0) > 0
        assert warm.reconcile.get("assignment_evicted", 0) == 0
        assert warm.reconcile.get("fragment_kept", 0) > 0
        assert warm.reconcile.get("fragment_evicted", 0) == 0
        assert "reconcile[" in warm.describe()

    def test_candidate_revoke_evicts_assignment_but_not_fragments(
            self, example, service):
        # Z runs no fragment of this pipeline, but it *is* a candidate
        # the planner priced: revoking its Hosp rule must evict the
        # memoised assignment (the optimum may have shifted) while the
        # runtime's per-subject fragment entries stay warm.
        service.execute(RUNNING_SQL)
        example.policy.revoke("Hosp", "Z")
        warm = service.execute(RUNNING_SQL)
        assert not warm.assignment_cached
        assert warm.reconcile.get("assignment_evicted", 0) > 0
        assert warm.reconcile.get("fragment_kept", 0) > 0
        assert warm.reconcile.get("fragment_evicted", 0) == 0

    def test_involved_revoke_traced_and_recomputed(self, example,
                                                   service):
        # Y holds the join: churning its Ins rule must evict the memoised
        # assignment, and the outcome's reconcile trace must say so.
        cold = service.execute(RUNNING_SQL)
        rule = example.policy.revoke("Ins", "Y")
        example.policy.grant(rule)
        warm = service.execute(RUNNING_SQL)
        assert not warm.assignment_cached
        assert warm.reconcile.get("assignment_evicted", 0) > 0
        assert warm.result.sorted_rows() == cold.result.sorted_rows()

    def test_cache_info_reports_edge_tables(self, service):
        service.execute(RUNNING_SQL)
        info = service.cache_info()
        assert info["edge_tables"]["tables"] > 0
        assert "reconcile_kept" in info["edge_tables"]

    def test_each_user_priced_from_own_seat(self, example,
                                            example_tables, service):
        from repro.cost.network import NetworkTopology

        # Without an explicit topology the slow client link follows the
        # querying user — and the per-user object is memoized so the
        # assignment cache's identity-compared context still hits.
        assert service._topology_for("U").client_subjects == \
            frozenset({"U"})
        assert service._topology_for("Y").client_subjects == \
            frozenset({"Y"})
        assert service._topology_for("Y") is service._topology_for("Y")
        explicit = NetworkTopology.paper_defaults("U")
        pinned = QueryService(
            example.schema, example.policy, example.subjects,
            example.owners,
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U", topology=explicit,
        )
        assert pinned._topology_for("Y") is explicit

    def test_plan_cache_hot_entry_survives_one_off_queries(self, example):
        from repro.service.workload import _BoundedCache
        from repro.sql.planner import plan_query

        cache = _BoundedCache(limit=2)
        hot = plan_query(RUNNING_SQL, example.schema, cache=cache)
        plan_query("select T from Hosp", example.schema, cache=cache)
        # The hit refreshes recency, so the next one-off insert evicts
        # the earlier one-off, not the hot plan (identity preserved).
        assert plan_query(RUNNING_SQL, example.schema, cache=cache) is hot
        plan_query("select D from Hosp", example.schema, cache=cache)
        assert plan_query(RUNNING_SQL, example.schema, cache=cache) is hot

    def test_refresh_tables_unknown_subject_leaves_state_intact(
            self, service, example_tables):
        from repro.exceptions import DispatchError

        before = service.execute(RUNNING_SQL)
        richer = Table("Ins", ("C", "P"), [
            ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
            ("s4", 160.0), ("s5", 150.0),
        ])
        # The bad name must be rejected before any table is swapped —
        # a partial update would serve stale caches over new data.
        with pytest.raises(DispatchError):
            service.refresh_tables({"I": {"Ins": richer},
                                    "NOPE": {"X": richer}})
        again = service.execute(RUNNING_SQL)
        assert again.result.sorted_rows() == before.result.sorted_rows()

    def test_byte_bounded_executors_still_correct(self, example,
                                                  example_tables):
        tiny = QueryService(
            example.schema, example.policy, example.subjects,
            example.owners,
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U", executor_cache_bytes=1,
        )
        outcome = tiny.execute(RUNNING_SQL)
        assert outcome.result.sorted_rows() == [("tpa", 120.0)]


class TestWorkloadSession:
    def test_session_accumulates_stats(self, service):
        session = service.session()
        assert isinstance(session, WorkloadSession)
        session.run(RUNNING_SQL)
        session.run(RUNNING_SQL)
        assert session.stats.queries == 2
        assert session.stats.rows_returned == 2
        assert session.stats.plan_cache_hits == 1
        assert session.stats.assignment_cache_hits == 1
        assert session.stats.fragment_cache_hits > 0
        assert "2 queries" in session.describe()

    def test_sessions_share_service_caches(self, service):
        first = service.session("U")
        second = service.session("U")
        first.run(RUNNING_SQL)
        outcome = second.run(RUNNING_SQL)
        # A different session, the same service: still warm.
        assert outcome.assignment_cached
        assert outcome.keys_reused

    def test_per_user_authorization_is_separate(self, service):
        denied = service.session("X")
        with pytest.raises(UnauthorizedError):
            denied.run(RUNNING_SQL)
        allowed = service.session("U")
        outcome = allowed.run(RUNNING_SQL)
        assert outcome.result.sorted_rows() == [("tpa", 120.0)]


class TestTpchWorkload:
    @pytest.fixture(scope="class")
    def tpch_service(self):
        scale = 0.002
        schema = build_tpch_schema(scale)
        data = generate(scale=scale, seed=11)
        scenario_obj = all_scenarios(schema)["UAPenc"]
        authority_tables = {"A1": {}, "A2": {}}
        for name, owner in table_owners().items():
            authority_tables[owner][name] = data.table(name)
        service = QueryService(
            schema, scenario_obj.policy, scenario_obj.subjects,
            scenario_obj.owners, authority_tables,
            user=scenario_obj.user, udfs=TPCH_UDFS,
        )
        return service, schema, data

    @pytest.mark.parametrize("number", [3, 5])
    def test_tpch_sql_through_service(self, tpch_service, number):
        service, schema, data = tpch_service
        sql = query(number).sql
        assert sql is not None
        outcome = service.execute(sql)
        plain = Executor(data.catalog(), udfs=TPCH_UDFS).execute(
            query(number).plan(schema))
        assert set(outcome.result.columns) == set(plain.columns)
        assert len(outcome.result) == len(plain)
        warm = service.execute(sql)
        assert warm.assignment_cached
        assert warm.result.rows == outcome.result.rows

"""Envelopes, runtime execution, and enforcement."""

import pytest

from repro.core.dispatch import dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import QueryKey, establish_keys
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import DistributedKeys, KeyStore
from repro.crypto.rsa import generate_keypair
from repro.distributed import build_runtime
from repro.distributed.messages import (
    SubQueryPayload,
    decode_payload,
    deserialize_key_material,
    encode_payload,
    open_envelope,
    seal_envelope,
    serialize_key_material,
)
from repro.exceptions import DispatchError, UnauthorizedError


class TestMessages:
    def make_payload(self):
        store = KeyStore.generate([
            QueryKey(frozenset({"S", "C"}),
                     EncryptionScheme.DETERMINISTIC),
            QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
        ])
        return SubQueryPayload("reqX", "select 1", store)

    def test_payload_roundtrip(self):
        payload = self.make_payload()
        decoded = decode_payload(encode_payload(payload))
        assert decoded.fragment_id == "reqX"
        assert decoded.keystore.names() == payload.keystore.names()
        # Paillier private parts travel with the material.
        material = decoded.keystore.material_for_attribute("P")
        assert material.paillier_private is not None

    def test_key_material_roundtrip(self):
        payload = self.make_payload()
        material = payload.keystore.material("kCS")
        decoded = deserialize_key_material(
            serialize_key_material(material))
        assert decoded.symmetric == material.symmetric
        assert decoded.query_key == material.query_key

    def test_envelope_roundtrip_and_signature(self):
        sender_pub, sender_priv = generate_keypair(512)
        recipient_pub, recipient_priv = generate_keypair(512)
        payload = self.make_payload()
        blob = seal_envelope(payload, sender_priv, recipient_pub)
        received = open_envelope(blob, recipient_priv, sender_pub)
        assert received.query_text == payload.query_text

    def test_wrong_sender_key_rejected(self):
        _, sender_priv = generate_keypair(512)
        impostor_pub, _ = generate_keypair(512)
        recipient_pub, recipient_priv = generate_keypair(512)
        blob = seal_envelope(self.make_payload(), sender_priv,
                             recipient_pub)
        with pytest.raises(DispatchError):
            open_envelope(blob, recipient_priv, impostor_pub)

    def test_malformed_payload_rejected(self):
        with pytest.raises(DispatchError):
            decode_payload(b"not json")


class TestRuntime:
    def run_7a(self, example, example_tables, enforce=True,
               schedule="parallel"):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        plan = dispatch(extended, keys, owners=example.owners, user="U")
        runtime = build_runtime(
            example.policy, list(example.subjects),
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U", schedule=schedule,
        )
        runtime.enforce = enforce
        return runtime.run(plan, extended, keys,
                           DistributedKeys.from_assignment(keys))

    def test_end_to_end_result(self, example, example_tables):
        result, trace = self.run_7a(example, example_tables)
        assert result.sorted_rows() == [("tpa", 120.0)]
        assert not trace.violations

    def test_trace_accounting(self, example, example_tables):
        _, trace = self.run_7a(example, example_tables,
                               schedule="sequential")
        # 4 envelopes + 3 inter-fragment transfers.
        assert trace.messages == 7
        assert trace.envelope_bytes > 0
        # The sequential reference schedule is demand-driven: root first.
        assert [f for f, _ in trace.fragments_run] == [
            "reqY", "reqX", "reqH", "reqI",
        ]

    def test_trace_accounting_parallel(self, example, example_tables):
        _, trace = self.run_7a(example, example_tables)
        assert trace.schedule == "parallel"
        assert trace.messages == 7
        assert trace.envelope_bytes > 0
        # Under the concurrent schedule completion order varies, but the
        # same four fragments run exactly once each.
        assert sorted(f for f, _ in trace.fragments_run) == [
            "reqH", "reqI", "reqX", "reqY",
        ]

    def test_enforcement_blocks_unauthorized_profile(self, example,
                                                     example_tables):
        # Build an extension without verification for an assignment NOT
        # in Λ (I cannot host the join); the runtime must refuse it.
        bad = dict(example.assignment_7a())
        bad[example.join] = "I"
        extended = minimally_extend(
            example.plan, example.policy, bad, owners=example.owners,
            verify=False,
        )
        keys = establish_keys(extended, None)
        plan = dispatch(extended, keys, owners=example.owners, user="U")
        runtime = build_runtime(
            example.policy, list(example.subjects),
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U",
        )
        with pytest.raises(UnauthorizedError):
            runtime.run(plan, extended, keys,
                        DistributedKeys.from_assignment(keys))

    def test_value_level_guard_catches_plaintext_leak(self, example,
                                                      example_tables):
        # Strip all encryption operations from the 7(a) plan: X then
        # receives plaintext S, C, P — the value-level guard must fire.
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        stripped_plan = extended.plan.strip_crypto_nodes()
        # Rebuild the bookkeeping for the stripped plan.
        from repro.core.extension import ExtendedPlan

        label_assign = {}
        for node, subject in extended.assignment.items():
            label_assign[node.label()] = subject
        new_assignment = {}
        for node in stripped_plan.postorder():
            if not node.is_leaf and node.label() in label_assign:
                new_assignment[node] = label_assign[node.label()]
        stripped = ExtendedPlan(
            plan=stripped_plan, original=example.plan,
            assignment=new_assignment,
            encrypted_attributes=frozenset(),
        )
        keys = establish_keys(stripped, None)
        plan = dispatch(stripped, keys, owners=example.owners, user="U")
        runtime = build_runtime(
            example.policy, list(example.subjects),
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U",
        )
        with pytest.raises(UnauthorizedError):
            runtime.run(plan, stripped, keys,
                        DistributedKeys.from_assignment(keys))

    def test_missing_runtime_node(self, example):
        with pytest.raises(DispatchError):
            build_runtime(example.policy, [], {}, user="U")

"""Deterministic unit tests for the circuit breaker and retry policy.

Every test drives :class:`HealthRegistry` with a fake, manually
advanced clock — no wall-clock sleeps — so the closed → open →
half-open → closed transitions are exact.
"""

import pytest

from repro.distributed.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    HealthRegistry,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return HealthRegistry(clock, failure_threshold=3,
                          reset_timeout_seconds=0.5, half_open_probes=1)


class TestBreakerTransitions:
    def test_starts_closed_and_admits(self, registry):
        assert registry.state("Y") == CLOSED
        assert registry.admit("Y")
        assert registry.available("Y")

    def test_failures_below_threshold_stay_closed(self, registry):
        assert not registry.record_failure("Y")
        assert not registry.record_failure("Y")
        assert registry.state("Y") == CLOSED
        assert registry.admit("Y")

    def test_threshold_trips_open(self, registry):
        registry.record_failure("Y")
        registry.record_failure("Y")
        assert registry.record_failure("Y")  # third consecutive error
        assert registry.state("Y") == OPEN
        assert registry.subject("Y").breaker_trips == 1

    def test_success_resets_consecutive_errors(self, registry):
        registry.record_failure("Y")
        registry.record_failure("Y")
        registry.record_success("Y")
        registry.record_failure("Y")
        registry.record_failure("Y")
        assert registry.state("Y") == CLOSED

    def test_fatal_failure_trips_immediately(self, registry):
        assert registry.record_failure("Y", fatal=True)
        assert registry.state("Y") == OPEN

    def test_open_refuses_until_reset_timeout(self, registry, clock):
        for _ in range(3):
            registry.record_failure("Y")
        assert not registry.admit("Y")
        assert not registry.available("Y")
        clock.advance(0.49)
        assert not registry.admit("Y")
        clock.advance(0.02)  # past reset_timeout_seconds
        assert registry.available("Y")
        assert registry.admit("Y")
        assert registry.state("Y") == HALF_OPEN

    def test_half_open_admits_exactly_probe_budget(self, clock):
        registry = HealthRegistry(clock, failure_threshold=1,
                                  reset_timeout_seconds=0.5,
                                  half_open_probes=2)
        registry.record_failure("Y")
        clock.advance(1.0)
        assert registry.admit("Y")
        assert registry.admit("Y")
        assert not registry.admit("Y")  # both probe slots taken
        assert not registry.available("Y")

    def test_probe_success_closes_breaker(self, registry, clock):
        for _ in range(3):
            registry.record_failure("Y")
        clock.advance(1.0)
        assert registry.admit("Y")
        registry.record_success("Y", latency_seconds=0.01)
        assert registry.state("Y") == CLOSED
        assert registry.admit("Y")
        assert registry.subject("Y").consecutive_errors == 0

    def test_probe_failure_reopens_and_restarts_timeout(self, registry,
                                                        clock):
        for _ in range(3):
            registry.record_failure("Y")
        clock.advance(1.0)
        assert registry.admit("Y")
        assert registry.record_failure("Y")  # probe disproved recovery
        assert registry.state("Y") == OPEN
        assert registry.subject("Y").breaker_trips == 2
        assert not registry.admit("Y")  # timeout restarted at trip time
        clock.advance(0.51)
        assert registry.admit("Y")
        assert registry.state("Y") == HALF_OPEN

    def test_release_probe_frees_slot_without_verdict(self, registry,
                                                      clock):
        for _ in range(3):
            registry.record_failure("Y")
        clock.advance(1.0)
        assert registry.admit("Y")
        assert not registry.admit("Y")
        registry.release_probe("Y")
        assert registry.admit("Y")
        assert registry.state("Y") == HALF_OPEN


class TestDeathAndRevival:
    def test_mark_dead_refuses_forever(self, registry, clock):
        assert registry.mark_dead("Y")
        assert not registry.mark_dead("Y")  # already dead
        assert registry.is_dead("Y")
        assert not registry.admit("Y")
        clock.advance(1e6)
        assert not registry.admit("Y")
        assert not registry.available("Y")

    def test_revive_restores_closed_breaker(self, registry):
        registry.mark_dead("Y")
        registry.revive("Y")
        assert not registry.is_dead("Y")
        assert registry.state("Y") == CLOSED
        assert registry.admit("Y")

    def test_unavailable_subjects(self, registry):
        registry.record_success("X", 0.01)
        registry.mark_dead("Y")
        for _ in range(3):
            registry.record_failure("Z")
        assert registry.unavailable_subjects() == frozenset({"Y", "Z"})


class TestLatencyEwma:
    def test_first_observation_seeds_ewma(self, registry):
        assert registry.latency_hint("Y") == 0.0
        registry.record_success("Y", 0.10)
        assert registry.latency_hint("Y") == pytest.approx(0.10)

    def test_ewma_update(self, clock):
        registry = HealthRegistry(clock, ewma_alpha=0.5)
        registry.record_success("Y", 0.10)
        registry.record_success("Y", 0.20)
        assert registry.latency_hint("Y") == pytest.approx(0.15)
        registry.record_success("Y", 0.05)
        assert registry.latency_hint("Y") == pytest.approx(0.10)

    def test_snapshot_shape(self, registry):
        registry.record_success("Y", 0.01)
        registry.record_failure("X")
        snap = registry.snapshot()
        assert set(snap) == {"X", "Y"}
        assert snap["Y"]["state"] == CLOSED
        assert snap["Y"]["successes"] == 1
        assert snap["X"]["failures"] == 1
        assert snap["X"]["dead"] is False


class TestConstructorValidation:
    def test_bad_alpha(self, clock):
        with pytest.raises(ValueError, match="ewma_alpha"):
            HealthRegistry(clock, ewma_alpha=0.0)

    def test_bad_threshold(self, clock):
        with pytest.raises(ValueError, match="failure_threshold"):
            HealthRegistry(clock, failure_threshold=0)

    def test_bad_probes(self, clock):
        with pytest.raises(ValueError, match="half_open_probes"):
            HealthRegistry(clock, half_open_probes=0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_cap(self):
        policy = RetryPolicy(backoff_base_seconds=0.1,
                             backoff_cap_seconds=0.5,
                             backoff_multiplier=2.0, jitter_fraction=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_seconds=0.1,
                             jitter_fraction=0.25)
        for attempt in (1, 2, 3):
            for salt in ("reqX:Y", "reqZ:Z", ""):
                a = policy.backoff(attempt, salt=salt)
                b = policy.backoff(attempt, salt=salt)
                assert a == b  # same inputs, same delay
                raw = RetryPolicy(backoff_base_seconds=0.1,
                                  jitter_fraction=0.0).backoff(attempt)
                assert raw * 0.75 <= a <= raw

    def test_distinct_salts_desynchronize(self):
        policy = RetryPolicy(jitter_fraction=0.25)
        delays = {policy.backoff(1, salt=f"frag{i}") for i in range(8)}
        assert len(delays) > 1

"""Unit tests for the deterministic fault injector."""

import pytest

from repro.distributed import FaultInjector, FaultSpec
from repro.exceptions import ProviderDeadError, TransientProviderError


def drive(injector, subject, n):
    """Run ``n`` executions, recording ('ok', latency) / error types."""
    events = []
    for _ in range(n):
        try:
            events.append(("ok", injector.on_execute(subject)))
        except TransientProviderError:
            events.append(("transient", None))
        except ProviderDeadError:
            events.append(("dead", None))
    return events


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec(transient_error_rate=0.3,
                         latency_spike_seconds=0.05, latency_spike_rate=0.2)
        runs = []
        for _ in range(2):
            injector = FaultInjector(seed=42)
            injector.set_fault("Y", spec)
            runs.append(drive(injector, "Y", 50))
        assert runs[0] == runs[1]

    def test_subject_streams_are_independent(self):
        injector = FaultInjector(seed=42)
        injector.set_fault("Y", transient_error_rate=0.3)
        injector.set_fault("Z", transient_error_rate=0.3)
        solo = FaultInjector(seed=42)
        solo.set_fault("Y", transient_error_rate=0.3)
        # Interleaving Z's draws must not perturb Y's stream.
        interleaved = []
        for _ in range(30):
            try:
                interleaved.append(("ok", injector.on_execute("Y")))
            except TransientProviderError:
                interleaved.append(("transient", None))
            try:
                injector.on_execute("Z")
            except TransientProviderError:
                pass
        assert interleaved == drive(solo, "Y", 30)

    def test_different_seeds_differ(self):
        spec = FaultSpec(transient_error_rate=0.5)
        a = FaultInjector(seed=1)
        b = FaultInjector(seed=2)
        a.set_fault("Y", spec)
        b.set_fault("Y", spec)
        assert drive(a, "Y", 40) != drive(b, "Y", 40)


class TestFaultShapes:
    def test_no_spec_is_transparent(self):
        injector = FaultInjector()
        assert drive(injector, "Y", 5) == [("ok", 0.0)] * 5
        assert injector.calls("Y") == 5

    def test_crash_on_call_is_transient_once(self):
        injector = FaultInjector()
        injector.set_fault("Y", crash_on_call=2)
        assert drive(injector, "Y", 4) == [
            ("ok", 0.0), ("transient", None), ("ok", 0.0), ("ok", 0.0)]

    def test_fatal_crash_kills_permanently(self):
        injector = FaultInjector()
        injector.set_fault("Y", crash_on_call=1, crash_is_fatal=True)
        assert drive(injector, "Y", 3) == [("dead", None)] * 3
        assert injector.is_dead("Y")

    def test_die_after_calls(self):
        injector = FaultInjector()
        injector.set_fault("Y", die_after_calls=2)
        assert drive(injector, "Y", 4) == [
            ("ok", 0.0), ("ok", 0.0), ("dead", None), ("dead", None)]
        assert injector.is_dead("Y")

    def test_kill_and_revive(self):
        injector = FaultInjector()
        injector.kill("Y")
        with pytest.raises(ProviderDeadError) as excinfo:
            injector.on_execute("Y")
        assert excinfo.value.subject == "Y"
        assert injector.calls("Y") == 0  # dead executions don't count
        injector.revive("Y")
        assert injector.on_execute("Y") == 0.0

    def test_rate_one_always_fails(self):
        injector = FaultInjector()
        injector.set_fault("Y", transient_error_rate=1.0)
        assert drive(injector, "Y", 5) == [("transient", None)] * 5

    def test_rate_zero_never_fails(self):
        injector = FaultInjector()
        injector.set_fault("Y", transient_error_rate=0.0,
                           latency_spike_rate=0.0)
        assert drive(injector, "Y", 5) == [("ok", 0.0)] * 5

    def test_latency_spike_rate_one(self):
        injector = FaultInjector()
        injector.set_fault("Y", latency_spike_seconds=0.25,
                           latency_spike_rate=1.0)
        assert drive(injector, "Y", 3) == [("ok", 0.25)] * 3


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="fault rate"):
            FaultSpec(transient_error_rate=1.5)
        with pytest.raises(ValueError, match="fault rate"):
            FaultSpec(latency_spike_rate=-0.1)

    def test_spec_and_kwargs_exclusive(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="not both"):
            injector.set_fault("Y", FaultSpec(), crash_on_call=1)

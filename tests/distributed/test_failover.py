"""Failover integration tests: retries, takeover, standby, re-plan.

Each test runs the running-example query through a :class:`QueryService`
wired with a deterministic :class:`FaultInjector` and a no-op sleeper
(retry backoff and simulated latency cost no wall-clock time), then
checks the recovery invariants from the failover contract:

* recovered results are bit-identical to the fault-free run;
* every re-dispatch target passed :func:`verify_assignment`
  (re-checked here, independently of the runtime);
* tampering/spoofing is never retried or failed over;
* a dead data authority is unrecoverable.
"""

import time

import pytest

from repro.core.visibility import verify_assignment
from repro.distributed import FaultInjector, build_runtime
from repro.distributed import runtime as runtime_module
from repro.engine import Table
from repro.exceptions import (
    CryptoError,
    DispatchError,
    UnrecoverableAssignmentError,
)
from repro.paper_example import build_running_example
from repro.service import QueryService

SQL = ("select T, avg(P) from Hosp join Ins on S=C "
       "where D='stroke' group by T having avg(P)>100")


def make_tables(rows=30):
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery") for i in range(rows)])
    ins = Table("Ins", ("C", "P"), [(f"s{i}", 40.0 + 7.0 * (i % 30))
                                    for i in range(rows)])
    return {"H": {"Hosp": hosp}, "I": {"Ins": ins}}


def make_service(injector=None, **kwargs):
    example = build_running_example()
    kwargs.setdefault("sleeper", lambda seconds: None)
    return QueryService(example.schema, example.policy, example.subjects,
                        example.owners, make_tables(), user="U",
                        fault_injector=injector, **kwargs)


@pytest.fixture(scope="module")
def clean_outcome():
    """Fault-free reference run (fresh service, no injector)."""
    return make_service().execute(SQL)


def compute_victim(outcome, *, user="U"):
    """A killable compute subject from the chosen assignment.

    Data authorities cannot fail over (their stored relations are not
    reassignable) and the querying user is the last-resort assignee, so
    the interesting victim is a third-party compute provider actually
    chosen by the planner.
    """
    assigned = set(outcome.assignment.extended.assignment.values())
    victims = sorted(s for s in assigned if s not in {"H", "I", user})
    assert victims, "planner assigned only authorities/user?"
    return victims[0]


def assert_rows_equal(a: Table, b: Table):
    assert a.columns == b.columns
    assert sorted(a.rows) == sorted(b.rows)


class TestRetries:
    def test_transient_fault_retried_without_failover(self, clean_outcome):
        victim = compute_victim(clean_outcome)
        injector = FaultInjector(seed=3)
        injector.set_fault(victim, crash_on_call=1)
        outcome = make_service(injector).execute(SQL)
        assert outcome.retries >= 1
        assert not outcome.failed_over
        assert outcome.failovers == ()
        assert_rows_equal(outcome.result, clean_outcome.result)

    def test_injected_sleeper_absorbs_latency(self):
        # Satellite: simulated provider latency goes through the
        # injected sleeper, not a real time.sleep.
        recorded = []
        service = make_service(latency_seconds=5.0,
                               sleeper=recorded.append)
        started = time.monotonic()
        outcome = service.execute(SQL)
        assert time.monotonic() - started < 2.0
        assert 5.0 in recorded
        assert len(outcome.result) > 0


class TestInPlaceTakeover:
    def test_dead_provider_triggers_verified_takeover(self, clean_outcome):
        victim = compute_victim(clean_outcome)
        injector = FaultInjector(seed=5)
        injector.kill(victim)
        service = make_service(injector)
        outcome = service.execute(SQL)

        assert outcome.failed_over
        assert outcome.failovers, "expected an in-place fragment takeover"
        assert_rows_equal(outcome.result, clean_outcome.result)
        for event in outcome.failovers:
            assert event.failed_subject == victim
            assert event.replacement != victim
            assert event.verified
            # Independent audit: the repaired assignment must satisfy
            # Definition 4.2 on the extended plan under the live policy.
            verify_assignment(outcome.assignment.extended.plan,
                              service.policy, event.repaired_assignment)
        assert outcome.breaker_trips >= 1
        assert outcome.failover_seconds >= 0.0
        # The recovery is visible in the human-readable trace line.
        assert "failover[" in outcome.describe()

    def test_health_info_reports_dead_subject(self, clean_outcome):
        victim = compute_victim(clean_outcome)
        injector = FaultInjector(seed=5)
        injector.kill(victim)
        service = make_service(injector)
        service.execute(SQL)
        info = service.health_info()
        assert info[victim]["dead"] is True
        assert info[victim]["state"] == "open"

    def test_sequential_schedule_fails_over_too(self, clean_outcome):
        victim = compute_victim(clean_outcome)
        injector = FaultInjector(seed=5)
        injector.kill(victim)
        outcome = make_service(injector, schedule="sequential").execute(
            SQL, schedule="sequential")
        assert outcome.failed_over
        assert_rows_equal(outcome.result, clean_outcome.result)

    def test_all_compute_providers_dead_still_recovers(self, clean_outcome):
        injector = FaultInjector(seed=5)
        for name in ("X", "Y", "Z"):
            injector.kill(name)
        outcome = make_service(injector).execute(SQL)
        assert outcome.failed_over
        assert_rows_equal(outcome.result, clean_outcome.result)
        survivors = set(outcome.failovers and {
            e.replacement for e in outcome.failovers} or set())
        assert not survivors & {"X", "Y", "Z"}


class TestServiceTierRepair:
    def test_runtime_failover_disabled_uses_standby_or_replan(
            self, clean_outcome):
        # With in-place takeover switched off the runtime escalates
        # ProviderUnavailableError and the service tier must recover
        # via a warm standby plan or a full re-plan.
        victim = compute_victim(clean_outcome)
        injector = FaultInjector(seed=5)
        injector.kill(victim)
        outcome = make_service(injector, failover=False).execute(SQL)
        assert outcome.failed_over
        assert outcome.standby_used or outcome.replanned
        assert outcome.failovers == ()  # no runtime-level takeover ran
        assert_rows_equal(outcome.result, clean_outcome.result)
        assert victim not in set(
            outcome.assignment.extended.assignment.values())

    def test_dead_data_authority_is_unrecoverable(self):
        injector = FaultInjector(seed=5)
        injector.kill("H")  # owner of Hosp: its data cannot move
        with pytest.raises(UnrecoverableAssignmentError,
                           match="data authority"):
            make_service(injector).execute(SQL)


class TestEnforcementNeverRetried:
    def test_tampered_envelope_raises_and_is_not_retried(self, monkeypatch):
        injector = FaultInjector(seed=9)
        service = make_service(injector)
        original = runtime_module.seal_envelope

        def tampering_seal(payload, sender_private, recipient_public):
            blob = original(payload, sender_private, recipient_public)
            return blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:]

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            tampering_seal)
        with pytest.raises((DispatchError, CryptoError)):
            service.execute(SQL)
        # Tampering is an integrity violation, not a provider fault:
        # nothing was retried or failed over, no execution ever ran.
        assert sum(injector.calls(s.name)
                   for s in service.subjects) == 0

    def test_spoofed_signature_raises_and_is_not_retried(self, monkeypatch):
        from repro.crypto.rsa import generate_keypair

        _, impostor_private = generate_keypair(512)
        injector = FaultInjector(seed=9)
        service = make_service(injector)
        original = runtime_module.seal_envelope

        def spoofing_seal(payload, sender_private, recipient_public):
            return original(payload, impostor_private, recipient_public)

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            spoofing_seal)
        with pytest.raises(DispatchError, match="signature"):
            service.execute(SQL)
        assert sum(injector.calls(s.name)
                   for s in service.subjects) == 0


class TestBuildRuntimeValidation:
    def test_unknown_latency_subject_rejected(self):
        # Satellite bugfix: a typo in the latency map used to be
        # silently ignored; it must raise.
        example = build_running_example()
        with pytest.raises(ValueError, match="unknown subjects.*'Q'"):
            build_runtime(example.policy, list(example.subjects),
                          make_tables(), "U",
                          latency_seconds={"Q": 0.1})

    def test_unknown_latency_subject_rejected_via_service(self):
        with pytest.raises(ValueError, match="unknown subjects"):
            make_service(latency_seconds={"Y": 0.1, "Nope": 0.2})

    def test_known_latency_subjects_accepted(self):
        service = make_service(latency_seconds={"Y": 0.0, "H": 0.0})
        assert len(service.execute(SQL).result) > 0

"""The concurrent fragment scheduler: dependency graph, equivalence with
the sequential reference, enforcement under concurrency, and the
cross-run fragment/executor caches."""

import threading
import time

import pytest

from repro.core.authorization import Authorization, Policy, Subject, \
    SubjectKind
from repro.core.dispatch import DispatchPlan, SubQuery, dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys
from repro.core.operators import BaseRelationNode, Join, Selection
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import Relation, Schema
from repro.cost.pricing import PriceList
from repro.core.assignment import assign
from repro.crypto.keymanager import DistributedKeys
from repro.distributed import build_runtime, generate_subject_keys
from repro.distributed import runtime as runtime_module
from repro.engine import Executor, Table
from repro.exceptions import CryptoError, DispatchError, UnauthorizedError
from repro.tpch import TPCH_UDFS, all_scenarios, build_tpch_schema, \
    generate, query_plan
from repro.tpch.schema import table_owners


def pipeline_7a(example, example_tables, schedule="parallel",
                rsa_keys=None):
    """The Figure 7(a) pipeline, returning (runtime, run-callable)."""
    extended = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )
    keys = establish_keys(extended, example.policy)
    plan = dispatch(extended, keys, owners=example.owners, user="U")
    runtime = build_runtime(
        example.policy, list(example.subjects),
        {"H": {"Hosp": example_tables["Hosp"]},
         "I": {"Ins": example_tables["Ins"]}},
        user="U", schedule=schedule, rsa_keys=rsa_keys,
    )
    distributed = DistributedKeys.from_assignment(keys)

    def run(**kwargs):
        return runtime.run(plan, extended, keys, distributed, **kwargs)

    return runtime, run


class TestDependencyGraph:
    def dispatch_7a(self, example):
        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        keys = establish_keys(extended, example.policy)
        return dispatch(extended, keys, owners=example.owners, user="U")

    def test_dependencies_and_dependents(self, example):
        plan = self.dispatch_7a(example)
        dependencies = plan.dependencies()
        assert sorted(dependencies["reqX"]) == ["reqH", "reqI"]
        assert dependencies["reqY"] == ("reqX",)
        assert dependencies["reqH"] == ()
        dependents = plan.dependents()
        assert dependents["reqH"] == ("reqX",)
        assert dependents["reqY"] == ()

    def test_execution_levels(self, example):
        plan = self.dispatch_7a(example)
        assert plan.execution_levels() == (
            ("reqH", "reqI"), ("reqX",), ("reqY",),
        )

    def test_cycle_detected(self):
        leaf = BaseRelationNode(Relation("R", ["a"], cardinality=1))
        a = SubQuery("a", "S", leaf, (leaf,), requests={1: "b"})
        b = SubQuery("b", "S", leaf, (leaf,), requests={2: "a"})
        plan = DispatchPlan(fragments={"a": a, "b": b},
                            root_fragment_id="a", user="U")
        with pytest.raises(DispatchError, match="cycle"):
            plan.execution_levels()

    def test_unknown_request_target(self):
        leaf = BaseRelationNode(Relation("R", ["a"], cardinality=1))
        a = SubQuery("a", "S", leaf, (leaf,), requests={1: "ghost"})
        plan = DispatchPlan(fragments={"a": a},
                            root_fragment_id="a", user="U")
        with pytest.raises(DispatchError, match="unknown"):
            plan.dependents()


class TestScheduleEquivalence:
    def test_parallel_matches_sequential_running_example(
            self, example, example_tables):
        _, run_par = pipeline_7a(example, example_tables, "parallel")
        _, run_seq = pipeline_7a(example, example_tables, "sequential")
        parallel, trace_par = run_par()
        sequential, trace_seq = run_seq()
        # Identical tables — including row order, not just content.
        assert parallel.columns == sequential.columns
        assert parallel.rows == sequential.rows
        assert trace_par.messages == trace_seq.messages
        assert sorted(trace_par.fragments_run) == \
            sorted(trace_seq.fragments_run)

    def test_per_run_schedule_override(self, example, example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        result, trace = run(schedule="sequential")
        assert trace.schedule == "sequential"
        assert [f for f, _ in trace.fragments_run] == [
            "reqY", "reqX", "reqH", "reqI",
        ]
        with pytest.raises(DispatchError):
            run(schedule="zigzag")

    @pytest.mark.parametrize("number", [3, 5, 18])
    def test_tpch_parallel_matches_sequential_and_plaintext(self, number):
        scale = 0.002
        schema = build_tpch_schema(scale)
        data = generate(scale=scale, seed=7)
        scenario_obj = all_scenarios(schema)["UAPenc"]
        plan = query_plan(number, schema)
        prices = PriceList.from_subjects(scenario_obj.subjects)
        outcome = assign(plan, scenario_obj.policy,
                         scenario_obj.subject_names, prices,
                         user=scenario_obj.user,
                         owners=scenario_obj.owners)
        keys = establish_keys(outcome.extended, scenario_obj.policy)
        dispatch_plan = dispatch(outcome.extended, keys,
                                 owners=scenario_obj.owners, user="U")
        authority_tables = {"A1": {}, "A2": {}}
        for name, owner in table_owners().items():
            authority_tables[owner][name] = data.table(name)
        distributed = DistributedKeys.from_assignment(keys)
        results = {}
        for schedule in ("parallel", "sequential"):
            runtime = build_runtime(
                scenario_obj.policy, list(scenario_obj.subjects),
                authority_tables, user="U", udfs=TPCH_UDFS,
                schedule=schedule,
            )
            table, trace = runtime.run(dispatch_plan, outcome.extended,
                                       keys, distributed)
            assert not trace.violations
            results[schedule] = table
        assert results["parallel"].columns == \
            results["sequential"].columns
        assert results["parallel"].rows == results["sequential"].rows
        plain = Executor(data.catalog(), udfs=TPCH_UDFS).execute(
            query_plan(number, schema))
        assert set(results["parallel"].columns) == set(plain.columns)
        assert len(results["parallel"]) == len(plain)


class TestEnforcementUnderConcurrency:
    def test_flipped_envelope_bytes_rejected(self, example,
                                             example_tables, monkeypatch):
        original = runtime_module.seal_envelope
        victims = []

        def tampering_seal(payload, sender_private, recipient_public):
            blob = original(payload, sender_private, recipient_public)
            if payload.fragment_id == "reqX":
                victims.append(payload.fragment_id)
                blob = blob[:-1] + bytes([blob[-1] ^ 0x55])
            return blob

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            tampering_seal)
        _, run = pipeline_7a(example, example_tables, "parallel")
        # In-flight corruption breaks the hybrid encryption layer.
        with pytest.raises((DispatchError, CryptoError)):
            run()
        assert victims == ["reqX"]

    def test_spoofed_signature_rejected(self, example, example_tables,
                                        monkeypatch):
        from repro.crypto.rsa import generate_keypair

        _, impostor_private = generate_keypair(512)
        original = runtime_module.seal_envelope

        def spoofing_seal(payload, sender_private, recipient_public):
            if payload.fragment_id == "reqX":
                sender_private = impostor_private
            return original(payload, sender_private, recipient_public)

        monkeypatch.setattr(runtime_module, "seal_envelope",
                            spoofing_seal)
        _, run = pipeline_7a(example, example_tables, "parallel")
        # A payload signed by anyone but the user fails verification.
        with pytest.raises(DispatchError, match="signature"):
            run()

    def test_unauthorized_profile_rejected_in_parallel(
            self, example, example_tables):
        bad = dict(example.assignment_7a())
        bad[example.join] = "I"
        extended = minimally_extend(
            example.plan, example.policy, bad, owners=example.owners,
            verify=False,
        )
        keys = establish_keys(extended, None)
        plan = dispatch(extended, keys, owners=example.owners, user="U")
        runtime = build_runtime(
            example.policy, list(example.subjects),
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U", schedule="parallel",
        )
        with pytest.raises(UnauthorizedError):
            runtime.run(plan, extended, keys,
                        DistributedKeys.from_assignment(keys))

    def test_value_guard_fires_in_parallel(self, example, example_tables):
        # Strip all encryption: X then receives plaintext S, C, P.
        from repro.core.extension import ExtendedPlan

        extended = minimally_extend(
            example.plan, example.policy, example.assignment_7a(),
            owners=example.owners,
        )
        stripped_plan = extended.plan.strip_crypto_nodes()
        label_assign = {
            node.label(): subject
            for node, subject in extended.assignment.items()
        }
        new_assignment = {
            node: label_assign[node.label()]
            for node in stripped_plan.postorder()
            if not node.is_leaf and node.label() in label_assign
        }
        stripped = ExtendedPlan(
            plan=stripped_plan, original=example.plan,
            assignment=new_assignment,
            encrypted_attributes=frozenset(),
        )
        keys = establish_keys(stripped, None)
        plan = dispatch(stripped, keys, owners=example.owners, user="U")
        runtime = build_runtime(
            example.policy, list(example.subjects),
            {"H": {"Hosp": example_tables["Hosp"]},
             "I": {"Ins": example_tables["Ins"]}},
            user="U", schedule="parallel",
        )
        with pytest.raises(UnauthorizedError):
            runtime.run(plan, stripped, keys,
                        DistributedKeys.from_assignment(keys))


class TestSubjectSerialization:
    """Same-subject fragments never overlap; independent subjects do."""

    def build_scenario(self):
        schema = Schema()
        r1 = schema.add(Relation("R1", ["a", "b"], cardinality=100))
        r2 = schema.add(Relation("R2", ["c", "d"], cardinality=100))
        policy = Policy(schema)
        subjects = (
            Subject("U", SubjectKind.USER),
            Subject("A1", SubjectKind.AUTHORITY),
            Subject("A2", SubjectKind.AUTHORITY),
            Subject("P", SubjectKind.PROVIDER),
        )
        for relation, authority in ((r1, "A1"), (r2, "A2")):
            names = relation.attribute_names
            policy.grant(Authorization(relation, names, (), "U"))
            policy.grant(Authorization(relation, names, (), authority))
            policy.grant(Authorization(relation, names, (), "P"))
        left = Selection(BaseRelationNode(r1),
                         AttributeValuePredicate("b", ComparisonOp.GE, 0))
        right = Selection(BaseRelationNode(r2),
                          AttributeValuePredicate("d", ComparisonOp.GE, 0))
        join = Join(left, right, equals("a", "c"))
        plan = QueryPlan(join)
        assignment = {left: "P", right: "P", join: "U"}
        owners = {"R1": "A1", "R2": "A2"}
        tables = {
            "A1": {"R1": Table("R1", ("a", "b"),
                               [(i, i) for i in range(4)])},
            "A2": {"R2": Table("R2", ("c", "d"),
                               [(i, i * 10) for i in range(4)])},
        }
        return (schema, policy, subjects, plan, assignment, owners,
                tables)

    def test_same_subject_fragments_serialize(self, monkeypatch):
        (_, policy, subjects, plan, assignment, owners,
         tables) = self.build_scenario()
        extended = minimally_extend(plan, policy, assignment,
                                    owners=owners, deliver_to="U")
        keys = establish_keys(extended, policy)
        dispatch_plan = dispatch(extended, keys, owners=owners, user="U")
        by_subject = {}
        for fragment in dispatch_plan.fragments.values():
            by_subject.setdefault(fragment.subject, []).append(
                fragment.fragment_id)
        assert len(by_subject["P"]) == 2  # two sibling selections at P

        runtime = build_runtime(
            policy, list(subjects), tables, user="U",
            schedule="parallel", latency_seconds=0.05,
        )
        intervals = []
        intervals_lock = threading.Lock()
        original = runtime_module.DistributedRuntime._evaluate_fragment

        def recording(self, context, fragment, node, payload, view,
                      inputs):
            start = time.perf_counter()
            try:
                return original(self, context, fragment, node, payload,
                                view, inputs)
            finally:
                with intervals_lock:
                    intervals.append(
                        (fragment.subject, start, time.perf_counter()))

        monkeypatch.setattr(runtime_module.DistributedRuntime,
                            "_evaluate_fragment", recording)
        result, _ = runtime.run(dispatch_plan, extended, keys,
                                DistributedKeys.from_assignment(keys))
        assert len(result) == 4

        def overlap(x, y):
            return min(x[2], y[2]) - max(x[1], y[1]) > 0

        same_p = [i for i in intervals if i[0] == "P"]
        assert len(same_p) == 2
        assert not overlap(*same_p)  # per-subject serialization
        authorities = [i for i in intervals if i[0] in ("A1", "A2")]
        assert overlap(*authorities)  # independent subjects do overlap


class TestCrossRunCaches:
    def test_second_run_hits_fragment_cache(self, example,
                                            example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        first, trace_first = run()
        assert trace_first.fragment_cache_hits == 0
        second, trace_second = run()
        assert second.rows == first.rows
        assert trace_second.fragment_cache_hits == \
            len(trace_second.fragments_run)

    def test_unrelated_revoke_keeps_fragment_cache_warm(
            self, example, example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        first, _ = run()
        # Z plays no role in 7(a): the revoke's delta touches only Z, so
        # the reconcile pass rebases every cached fragment onto the new
        # version instead of flushing — the warm re-run stays warm.
        example.policy.revoke("Hosp", "Z")
        second, trace = run()
        assert second.rows == first.rows
        assert trace.fragment_cache_hits == len(trace.fragments_run)
        info = runtime.cache_info()
        assert info["fragment_kept"] > 0
        assert info["fragment_evicted"] == 0
        assert info["fragment_flushed"] == 0

    def test_unrelated_revoke_keeps_executor_memos(self, example,
                                                   example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        first, _ = run()
        with runtime._caches_guard:
            old_executors = set(map(id, runtime._executors.values()))
        # The revoke leaves every other subject's view untouched, so the
        # pooled executors (and their memos) survive, rebased onto the
        # new policy version.
        example.policy.revoke("Hosp", "Z")
        second, trace = run()
        with runtime._caches_guard:
            versions = {key[3] for key in runtime._executors}
            new_executors = set(map(id, runtime._executors.values()))
        assert versions == {example.policy.version}
        assert old_executors <= new_executors
        assert second.rows == first.rows
        info = runtime.cache_info()
        assert info["executor_kept"] > 0
        assert info["executor_evicted"] == 0

    def test_revoked_authorization_rejected_on_warm_rerun(
            self, example, example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        run()
        # X joins over encrypted C/P; with its Ins authorization revoked
        # the warm re-run must fail enforcement instead of serving the
        # memoized fragment results (the keystore signature is
        # unchanged, so only the delta reconcile catches this).  The
        # delta touches X over attributes in X's fragment footprint, so
        # under-invalidation is impossible: X's entries die.
        example.policy.revoke("Ins", "X")
        with pytest.raises(UnauthorizedError):
            run()
        info = runtime.cache_info()
        assert info["fragment_evicted"] > 0
        assert info["executor_evicted"] > 0

    def test_input_dependent_nodes_stay_out_of_executor_memo(
            self, example, example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        run()
        with runtime._caches_guard:
            by_subject = {}
            for (subject, *_), executor in runtime._executors.items():
                by_subject.setdefault(subject, []).append(executor)
        # Authorities evaluate pure subtrees over their own catalogs:
        # those are executor-memoized across runs.
        assert any(len(e._cache) for e in by_subject["H"])
        # Every node of X's fragment hangs off boundary inputs; the
        # executor memo keys on node identity only, so memoizing them
        # would serve stale results if the same fragment ever re-ran
        # with value-different inputs under an identical keystore.
        # Cross-run reuse for X comes from the fragment cache instead.
        assert all(not e._cache for e in by_subject["X"])

    def test_invalidate_caches_drops_everything(self, example,
                                                example_tables):
        runtime, run = pipeline_7a(example, example_tables, "parallel")
        run()
        assert runtime.cache_info()["fragment_entries"] > 0
        runtime.invalidate_caches()
        assert runtime.cache_info()["fragment_entries"] == 0
        assert runtime.cache_info()["executors"] == 0
        _, trace = run()
        assert trace.fragment_cache_hits == 0

    def test_invalidate_during_run_cannot_repopulate_caches(
            self, example, example_tables, monkeypatch):
        runtime, run = pipeline_7a(example, example_tables, "sequential")
        original = runtime_module.DistributedRuntime._evaluate
        fired = []

        def invalidating(self, context, fragment, node, executor, inputs,
                         view, impure):
            # Simulate a concurrent refresh landing while the first
            # fragment (reqH, sequentially innermost) is mid-evaluation.
            if not fired:
                fired.append(True)
                self.invalidate_caches()
            return original(self, context, fragment, node, executor,
                            inputs, view, impure)

        monkeypatch.setattr(runtime_module.DistributedRuntime,
                            "_evaluate", invalidating)
        result, _ = run()
        assert result.sorted_rows() == [("tpa", 120.0)]
        # reqH captured the pre-invalidation generation: its executor
        # was cleared and its fragment result must not be re-inserted;
        # the three fragments that started afterwards cache normally.
        info = runtime.cache_info()
        assert info["fragment_entries"] == 3
        assert info["executors"] == 3

    def test_pregenerated_rsa_keys_are_used(self, example,
                                            example_tables):
        rsa_keys = generate_subject_keys(list(example.subjects))
        runtime, run = pipeline_7a(example, example_tables, "parallel",
                                   rsa_keys=rsa_keys)
        for name, (public, private) in rsa_keys.items():
            assert runtime.nodes[name].rsa_public is public
            assert runtime.nodes[name].rsa_private is private
        result, _ = run()
        assert result.sorted_rows() == [("tpa", 120.0)]

"""TPC-H substrate: schema, generator, 22 queries, scenarios."""

import pytest

from repro.core.candidates import compute_candidates
from repro.engine import Executor
from repro.exceptions import AuthorizationError, PlanError
from repro.tpch import (
    TPCH_UDFS,
    all_queries,
    all_scenarios,
    build_tpch_schema,
    generate,
    query,
    query_plan,
    scenario,
    table_owners,
    table_rows,
)


@pytest.fixture(scope="module")
def schema():
    return build_tpch_schema(scale=0.01)


@pytest.fixture(scope="module")
def data():
    return generate(scale=0.001, seed=7)


class TestSchema:
    def test_eight_relations(self, schema):
        assert len(schema) == 8

    def test_scaling_rules(self):
        assert table_rows("region", 0.1) == 5  # unscaled
        assert table_rows("lineitem", 0.1) == 600_000
        assert table_rows("orders", 0.01) == 15_000

    def test_owners_cover_all_tables(self, schema):
        owners = table_owners()
        assert set(owners) == set(r.name for r in schema)
        assert set(owners.values()) == {"A1", "A2"}

    def test_global_attribute_uniqueness(self, schema):
        assert len(schema.all_attributes()) == sum(
            len(r) for r in schema)


class TestDatagen:
    def test_sizes_match_scaling(self, data):
        assert len(data.table("region")) == 5
        assert len(data.table("nation")) == 25
        assert len(data.table("lineitem")) == table_rows("lineitem", 0.001)

    def test_referential_integrity(self, data):
        nation_keys = set(data.table("nation").column_values("n_nationkey"))
        for key in data.table("customer").column_values("c_nationkey"):
            assert key in nation_keys
        order_keys = set(data.table("orders").column_values("o_orderkey"))
        for key in data.table("lineitem").column_values("l_orderkey"):
            assert key in order_keys

    def test_deterministic_given_seed(self):
        first = generate(scale=0.001, seed=3)
        second = generate(scale=0.001, seed=3)
        assert first.table("orders").rows == second.table("orders").rows

    def test_value_domains(self, data):
        segments = set(data.table("customer").column_values("c_mktsegment"))
        assert segments <= {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"}
        flags = set(data.table("lineitem").column_values("l_returnflag"))
        assert flags <= {"A", "N", "R"}


class TestQueries:
    def test_all_22_defined(self):
        assert len(all_queries()) == 22
        assert query(1).number == 1
        with pytest.raises(PlanError):
            query(23)

    @pytest.mark.parametrize("number", range(1, 23))
    def test_plan_builds_and_profiles(self, schema, number):
        plan = query_plan(number, schema)
        profiles = plan.profiles()
        assert profiles[plan.root].visible

    @pytest.mark.parametrize("number", [1, 3, 6, 12, 16, 18])
    def test_queries_execute_on_generated_data(self, schema, data,
                                               number):
        plan = query_plan(number, schema)
        result = Executor(data.catalog(), udfs=TPCH_UDFS).execute(plan)
        assert result.columns  # shape only; values depend on the seed

    @pytest.mark.parametrize("number", [8, 9, 14, 22])
    def test_udf_queries_execute(self, schema, data, number):
        plan = query_plan(number, schema)
        result = Executor(data.catalog(), udfs=TPCH_UDFS).execute(plan)
        assert result.columns

    def test_q1_aggregates_correctly(self, schema, data):
        plan = query_plan(1, schema)
        result = Executor(data.catalog(), udfs=TPCH_UDFS).execute(plan)
        rows = list(result.iter_dicts())
        assert rows
        lineitem = data.table("lineitem")
        cutoff = __import__("datetime").date(1998, 9, 2)
        manual = {}
        for row in lineitem.iter_dicts():
            if row["l_shipdate"] <= cutoff:
                key = (row["l_returnflag"], row["l_linestatus"])
                bucket = manual.setdefault(key, [0, 0])
                bucket[0] += row["l_quantity"]
                bucket[1] += 1
        for row in rows:
            key = (row["l_returnflag"], row["l_linestatus"])
            assert row["sum_qty"] == manual[key][0]
            assert row["count_order"] == manual[key][1]

    def test_approximations_documented(self):
        for q in all_queries():
            assert q.approximations, f"Q{q.number} lists no approximations"


class TestScenarios:
    def test_ua_denies_providers(self, schema):
        ua = scenario("UA", schema)
        view = ua.policy.view("P1")
        assert not view.plaintext and not view.encrypted

    def test_uapenc_grants_all_encrypted(self, schema):
        enc = scenario("UAPenc", schema)
        view = enc.policy.view("P1")
        assert view.encrypted == schema.all_attributes()

    def test_uapmix_prefix_split(self, schema):
        mix = scenario("UAPmix", schema)
        view = mix.policy.view("P1")
        assert view.plaintext and view.encrypted
        assert view.plaintext | view.encrypted == schema.all_attributes()

    def test_unknown_scenario_rejected(self, schema):
        with pytest.raises(AuthorizationError):
            scenario("UAPzzz", schema)
        with pytest.raises(AuthorizationError):
            scenario("UAPmix", schema, mix_split="diagonal")

    def test_alternating_split_breaks_uniform_visibility(self, schema):
        # The ablation premise: under the alternating split, providers
        # lose the big joins to condition 3 (non-uniform visibility).
        prefix = all_scenarios(schema, "prefix")["UAPmix"]
        alternating = all_scenarios(schema, "alternating")["UAPmix"]
        plan_prefix = query_plan(3, schema)
        plan_alt = query_plan(3, schema)
        c_prefix = compute_candidates(
            plan_prefix, prefix.policy, prefix.subject_names)
        c_alt = compute_candidates(
            plan_alt, alternating.policy, alternating.subject_names)
        joins_prefix = [n for n in plan_prefix.operations()
                        if n.label().startswith("⋈")]
        joins_alt = [n for n in plan_alt.operations()
                     if n.label().startswith("⋈")]
        prefix_providers = {
            s for n in joins_prefix for s in c_prefix[n]
            if s.startswith("P")
        }
        alt_providers = {
            s for n in joins_alt for s in c_alt[n] if s.startswith("P")
        }
        assert prefix_providers and not alt_providers


class TestNullBearingData:
    """``generate(null_rate=...)`` data runs end to end (ISSUE 1)."""

    @pytest.fixture(scope="class")
    def sparse(self):
        return generate(scale=0.001, seed=7, null_rate=0.3)

    def test_nulls_injected_only_in_nullable_columns(self, sparse):
        orders = sparse.table("orders")
        totals = orders.column_values("o_totalprice")
        assert any(v is None for v in totals)
        assert all(v is not None
                   for v in orders.column_values("o_orderkey"))

    def test_aggregate_query_over_nulls(self, sparse, schema):
        from repro.sql.planner import plan_query

        plan = plan_query(
            "select o_orderstatus, avg(o_totalprice), count(*) as n"
            " from orders group by o_orderstatus",
            schema,
        )
        result = Executor(sparse.catalog()).execute(plan)
        # The leaf projection keeps set semantics, so the engine sees
        # distinct (status, totalprice) pairs — mirror that here.
        pairs = {
            (row["o_orderstatus"], row["o_totalprice"])
            for row in sparse.table("orders").iter_dicts()
        }
        manual: dict[str, list[float]] = {}
        counts: dict[str, int] = {}
        for status, total in pairs:
            counts[status] = counts.get(status, 0) + 1
            if total is not None:
                manual.setdefault(status, []).append(total)
        for row in result.iter_dicts():
            status = row["o_orderstatus"]
            assert row["n"] == counts[status]
            values = manual.get(status)
            if values is None:
                assert row["o_totalprice"] is None
            else:
                assert abs(row["o_totalprice"]
                           - sum(values) / len(values)) < 1e-9

    def test_join_query_over_nulls(self, sparse, schema):
        from repro.sql.planner import plan_query

        plan = plan_query(
            "select c_name, sum(o_totalprice) as spent"
            " from customer join orders on c_custkey = o_custkey"
            " group by c_name",
            schema,
        )
        result = Executor(sparse.catalog()).execute(plan)
        # Expected values, mirroring the leaves' set semantics: distinct
        # projected pairs, joined on custkey, SUM skipping NULLs (an
        # all-NULL customer sums to NULL, not 0).
        names = {
            row["c_custkey"]: row["c_name"]
            for row in sparse.table("customer").iter_dicts()
        }
        order_pairs = {
            (row["o_custkey"], row["o_totalprice"])
            for row in sparse.table("orders").iter_dicts()
        }
        expected: dict[str, object] = {}
        totals: dict[str, list[float]] = {}
        for custkey, total in order_pairs:
            name = names[custkey]
            expected.setdefault(name, None)
            if total is not None:
                totals.setdefault(name, []).append(total)
        for name, values in totals.items():
            expected[name] = sum(values)
        got = {row["c_name"]: row["spent"] for row in result.iter_dicts()}
        assert set(got) == set(expected)
        for name, want in expected.items():
            if want is None:
                assert got[name] is None
            else:
                assert abs(got[name] - want) < 1e-6

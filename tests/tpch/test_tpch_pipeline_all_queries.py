"""The full §6 pipeline on every TPC-H query under every scenario.

These are the workhorse integration checks behind Figures 9/10: for all
22 queries × 3 scenarios, the assignment pipeline must produce a
verified-authorized extended plan whose keys distribute consistently,
with scenario costs dominated UA ≥ UAPenc ≥ UAPmix.
"""

import pytest

from repro.core.visibility import verify_assignment
from repro.cost.pricing import PriceList
from repro.core.assignment import assign
from repro.tpch import all_scenarios, build_tpch_schema, query_plan

SCALE = 0.05


@pytest.fixture(scope="module")
def schema():
    return build_tpch_schema(SCALE)


@pytest.fixture(scope="module")
def scenarios(schema):
    return all_scenarios(schema)


@pytest.mark.parametrize("number", range(1, 23))
def test_pipeline_all_queries_all_scenarios(schema, scenarios, number):
    costs = {}
    for name, scenario_obj in scenarios.items():
        plan = query_plan(number, schema)
        prices = PriceList.from_subjects(scenario_obj.subjects)
        outcome = assign(
            plan, scenario_obj.policy, scenario_obj.subject_names,
            prices, user=scenario_obj.user, owners=scenario_obj.owners,
        )
        # The chosen plan is genuinely authorized...
        assert verify_assignment(
            outcome.extended.plan, scenario_obj.policy,
            outcome.extended.assignment,
        )
        # ...its assignment is drawn from Λ...
        for node, subject in outcome.assignment.items():
            assert subject in outcome.candidates[node]
        # ...and every encrypted attribute has an established key.
        for attribute in outcome.extended.encrypted_attributes:
            assert outcome.keys.key_for(attribute)
        costs[name] = outcome.cost.total_usd
    assert costs["UAPenc"] <= costs["UA"] * (1 + 1e-9)
    assert costs["UAPmix"] <= costs["UAPenc"] * (1 + 1e-9)


@pytest.mark.parametrize("number", [3, 9, 18])
def test_ua_assignments_avoid_providers(schema, scenarios, number):
    """In UA, providers hold no authorizations and never appear."""
    scenario_obj = scenarios["UA"]
    plan = query_plan(number, schema)
    prices = PriceList.from_subjects(scenario_obj.subjects)
    outcome = assign(
        plan, scenario_obj.policy, scenario_obj.subject_names, prices,
        user=scenario_obj.user, owners=scenario_obj.owners,
    )
    assert not any(
        subject.startswith("P") for subject in outcome.assignment.values()
    )


@pytest.mark.parametrize("number", [5, 13, 21])
def test_uapenc_assignments_use_providers(schema, scenarios, number):
    """Provider-friendly queries actually delegate under UAPenc."""
    scenario_obj = scenarios["UAPenc"]
    plan = query_plan(number, schema)
    prices = PriceList.from_subjects(scenario_obj.subjects)
    outcome = assign(
        plan, scenario_obj.policy, scenario_obj.subject_names, prices,
        user=scenario_obj.user, owners=scenario_obj.owners,
    )
    assert any(
        subject.startswith("P") for subject in outcome.assignment.values()
    )

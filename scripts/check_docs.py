#!/usr/bin/env python
"""Check that every relative link in README.md and docs/ resolves.

Markdown links of the form ``[text](target)`` are extracted from
README.md and every ``docs/*.md`` file. External targets (http/https/
mailto) are skipped; everything else must name an existing file or
directory relative to the linking document (anchors are stripped, and a
pure ``#anchor`` link must point at a heading in the same file).

Exit status 0 when everything resolves, 1 with one line per broken
link otherwise. Run from anywhere::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(text: str) -> set[str]:
    """GitHub-style anchors for every markdown heading in ``text``."""
    anchors = set()
    for match in re.finditer(r"^#+\s+(.+)$", text, re.MULTILINE):
        title = re.sub(r"[`*_]", "", match.group(1).strip()).lower()
        anchors.add(re.sub(r"[^\w\- ]", "", title).replace(" ", "-"))
    return anchors


def check_file(path: Path) -> list[str]:
    text = path.read_text()
    problems = []
    for target in LINK.findall(text):
        if target.startswith(EXTERNAL) or target.startswith("<"):
            continue
        base, _, anchor = target.partition("#")
        if not base:
            if anchor and anchor not in heading_anchors(text):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: no heading for "
                    f"anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: broken link {target}")
        elif anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved.read_text()):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: {base} has no "
                    f"heading for anchor #{anchor}")
    return problems


def main() -> int:
    documents = [REPO_ROOT / "README.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    problems = []
    for document in documents:
        if not document.exists():
            problems.append(f"missing document: {document.name}")
            continue
        problems.extend(check_file(document))
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(f"{len(documents)} documents checked, all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

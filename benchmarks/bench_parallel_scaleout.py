#!/usr/bin/env python
"""Multicore data-plane scale-out: process-pool kernels vs single-core.

The ISSUE-7 acceptance bar: fanning the CPU-bound hot paths across the
shared :class:`~repro.parallel.WorkerPool` must buy ≥3× on whole-column
Paillier decryption at ≥4 workers, while every parallel path stays
**bit-identical** to the single-core reference it shadows.

Three phases:

1. whole-column Paillier decrypt (`decrypt_column`) with 1 worker vs N;
2. encrypted TPC-H Q3 through a :class:`~repro.service.QueryService`
   with ``workers=0`` (today's inline plane) vs ``workers=N`` with
   ``join_strategy="parallel-hash"``;
3. a 2k×2k equi-join with residual, ``hash`` vs ``parallel-hash``.

Structural invariants always gate the exit status: parallel results
must equal the sequential rows *exactly* (values and order).  The
wall-clock speedup bar gates only the full run, and only when the host
actually has ≥4 CPUs — a single-core runner physically cannot
demonstrate parallel speedup, so there it is report-only (printed as a
warning), as it is under ``--quick``.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaleout.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaleout.py \
        --quick --json BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.keys import QueryKey
from repro.core.operators import BaseRelationNode, Join
from repro.core.predicates import (
    AttributeComparisonPredicate,
    ComparisonOp,
    Conjunction,
)
from repro.core.requirements import EncryptionScheme
from repro.core.schema import Relation
from repro.crypto.keymanager import KeyMaterial
from repro.crypto.paillier import generate_keypair
from repro.engine import Executor, Table
from repro.engine.codec import decrypt_column, encrypt_column
from repro.parallel import ExecutionSettings, WorkerPool
from repro.service import QueryService
from repro.tpch import TPCH_UDFS, all_scenarios, build_tpch_schema, \
    generate, query
from repro.tpch.schema import table_owners

SPEEDUP_BAR = 3.0
MIN_CPUS_FOR_BAR = 4


def pick_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(2, min(cpus, 8))


def warm(pool: WorkerPool) -> None:
    """Spawn the pool's processes before any timing starts."""
    count = max(pool.workers * 2, pool.min_parallel_items)
    pool.map_chunks(_noop_task, None, list(range(count)))


def _noop_task(_payload, items):
    return items


def bench_paillier_decrypt(values: int, bits: int,
                           workers: int) -> dict[str, object]:
    """Phase 1: whole-column Paillier decrypt, 1 worker vs N."""
    public, private = generate_keypair(bits)
    material = KeyMaterial(
        query_key=QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
        paillier_public=public, paillier_private=private,
    )
    rng = random.Random(17)
    plain = [rng.randrange(10_000) for _ in range(values)]
    column = encrypt_column(material, plain)

    sequential = decrypt_column(material, column)

    timings: dict[str, float] = {}
    rows: dict[str, list] = {}
    for label, count in (("workers_1", 1), ("workers_n", workers)):
        pool = WorkerPool(count, min_parallel_items=1)
        warm(pool)
        started = time.perf_counter()
        rows[label] = decrypt_column(material, column, pool=pool)
        timings[label] = time.perf_counter() - started
        pool.close()

    return {
        "values": values,
        "paillier_bits": bits,
        "workers_n": workers,
        "seconds_1": timings["workers_1"],
        "seconds_n": timings["workers_n"],
        "speedup": timings["workers_1"] / timings["workers_n"],
        "matches_sequential": (rows["workers_1"] == sequential
                               and rows["workers_n"] == sequential
                               and sequential == plain),
    }


def bench_tpch_q3(scale: float, workers: int) -> dict[str, object]:
    """Phase 2: encrypted TPC-H Q3, inline plane vs parallel plane."""
    schema = build_tpch_schema(scale)
    data = generate(scale=scale, seed=11)
    scenario = all_scenarios(schema)["UAPenc"]
    authority_tables: dict[str, dict[str, Table]] = {"A1": {}, "A2": {}}
    for name, owner in table_owners().items():
        authority_tables[owner][name] = data.table(name)
    sql = query(3).sql

    def run(settings: ExecutionSettings) -> tuple[float, list]:
        service = QueryService(
            schema, scenario.policy, scenario.subjects, scenario.owners,
            authority_tables, user=scenario.user, udfs=TPCH_UDFS,
            settings=settings,
        )
        pool = settings.pool()
        if pool is not None:
            warm(pool)
        started = time.perf_counter()
        outcome = service.execute(sql)
        return time.perf_counter() - started, list(outcome.result.rows)

    inline_seconds, inline_rows = run(ExecutionSettings())
    parallel_seconds, parallel_rows = run(ExecutionSettings(
        workers=workers, join_strategy="parallel-hash",
        min_parallel_items=64,
    ))
    return {
        "scale": scale,
        "workers_n": workers,
        "result_rows": len(inline_rows),
        "seconds_inline": inline_seconds,
        "seconds_parallel": parallel_seconds,
        "speedup": inline_seconds / parallel_seconds,
        "matches_sequential": parallel_rows == inline_rows,
    }


def bench_join(rows_per_side: int, workers: int) -> dict[str, object]:
    """Phase 3: equi-join with residual, hash vs parallel-hash probe."""
    rng = random.Random(23)
    keyspace = max(rows_per_side // 10, 1)
    left = Relation("L", ["a", "x"], cardinality=rows_per_side)
    right = Relation("R", ["b", "y"], cardinality=rows_per_side)
    catalog = {
        "L": Table("L", ("a", "x"), [
            (rng.randrange(keyspace), rng.randrange(1000))
            for _ in range(rows_per_side)
        ]),
        "R": Table("R", ("b", "y"), [
            (rng.randrange(keyspace), rng.randrange(1000))
            for _ in range(rows_per_side)
        ]),
    }
    node = Join(BaseRelationNode(left), BaseRelationNode(right), Conjunction([
        AttributeComparisonPredicate("a", ComparisonOp.EQ, "b"),
        AttributeComparisonPredicate("x", ComparisonOp.LT, "y"),
    ]))

    started = time.perf_counter()
    sequential = Executor(dict(catalog)).execute(node)
    hash_seconds = time.perf_counter() - started

    pool = WorkerPool(workers, min_parallel_items=1)
    warm(pool)
    started = time.perf_counter()
    parallel = Executor(dict(catalog), join_strategy="parallel-hash",
                        pool=pool).execute(node)
    parallel_seconds = time.perf_counter() - started
    pool.close()

    return {
        "rows_per_side": rows_per_side,
        "workers_n": workers,
        "output_rows": len(sequential),
        "seconds_hash": hash_seconds,
        "seconds_parallel": parallel_seconds,
        "speedup": hash_seconds / parallel_seconds,
        "matches_sequential": list(parallel.rows) == list(sequential.rows),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration for CI")
    parser.add_argument("--json", type=Path, default=None,
                        help="write measurements to this path")
    arguments = parser.parse_args()

    workers = pick_workers()
    cpus = os.cpu_count() or 1
    if arguments.quick:
        decrypt_values, paillier_bits = 240, 256
        tpch_scale = 0.002
        join_rows = 300
    else:
        decrypt_values, paillier_bits = 3000, 512
        tpch_scale = 0.002
        join_rows = 2000

    print(f"multicore scale-out: {cpus} CPUs, using {workers} workers")

    paillier = bench_paillier_decrypt(decrypt_values, paillier_bits, workers)
    print(f"  paillier decrypt ({paillier['values']} values, "
          f"{paillier['paillier_bits']}-bit): "
          f"1 worker {paillier['seconds_1'] * 1000:.1f} ms, "
          f"{workers} workers {paillier['seconds_n'] * 1000:.1f} ms "
          f"→ {paillier['speedup']:.2f}x")

    tpch = bench_tpch_q3(tpch_scale, workers)
    print(f"  encrypted TPC-H Q3 (scale {tpch['scale']}): "
          f"inline {tpch['seconds_inline'] * 1000:.1f} ms, "
          f"parallel {tpch['seconds_parallel'] * 1000:.1f} ms "
          f"→ {tpch['speedup']:.2f}x")

    join = bench_join(join_rows, workers)
    print(f"  join {join['rows_per_side']}x{join['rows_per_side']} "
          f"({join['output_rows']} output rows): "
          f"hash {join['seconds_hash'] * 1000:.1f} ms, "
          f"parallel-hash {join['seconds_parallel'] * 1000:.1f} ms "
          f"→ {join['speedup']:.2f}x")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "cpus": cpus,
            "workers": workers,
            "paillier_decrypt": paillier,
            "tpch_q3": tpch,
            "join": join,
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    failures = []
    for name, phase in (("paillier decrypt", paillier),
                        ("tpch q3", tpch), ("join", join)):
        if not phase["matches_sequential"]:
            failures.append(
                f"{name}: parallel rows differ from sequential reference")
    if paillier["speedup"] < SPEEDUP_BAR:
        miss = (f"paillier decrypt speedup {paillier['speedup']:.2f}x "
                f"< bar {SPEEDUP_BAR}x at {workers} workers")
        if arguments.quick:
            # Timing is report-only in smoke mode: shared CI runners are
            # too contended to gate merges on wall-clock bars.
            print(f"WARN (report-only under --quick): {miss}",
                  file=sys.stderr)
        elif cpus < MIN_CPUS_FOR_BAR:
            # A host without enough cores cannot demonstrate parallel
            # speedup no matter how good the data plane is.
            print(f"WARN (host has {cpus} CPUs < {MIN_CPUS_FOR_BAR}; "
                  f"speedup bar not gated): {miss}", file=sys.stderr)
        else:
            failures.append(miss)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

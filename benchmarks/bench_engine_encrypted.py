#!/usr/bin/env python
"""Encrypted end-to-end execution: batch crypto kernels vs the seed path.

Executes the running-example query end to end on generated data —
plaintext, then through the Figure 7(a) extended plan with real
encryption, twice: once with the engine's columnar batch-crypto kernels
(``encrypt_column``/``decrypt_column`` over ``Table.replace_columns``,
memoized ciphers, binomial/CRT Paillier) and once through
``benchmarks/_seed_crypto.py``'s ``SeedCryptoExecutor``, which keeps the
seed's per-cell, per-call crypto operators verbatim.  All encrypted runs
must agree with the plaintext answer.

The ISSUE-5 acceptance bar enforced here is a ≥5× end-to-end speedup of
the encrypted running example at 500+ rows.  The measured wall times
(and the encrypted-over-plaintext slowdown that contextualizes the cost
model's per-value factors) are emitted with ``--json``.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_engine_encrypted.py
    PYTHONPATH=src python benchmarks/bench_engine_encrypted.py --quick \
        --json BENCH_encrypted.json

Exits non-zero when the bar is missed or results diverge.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import _seed_crypto as seed

from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys
from repro.crypto.keymanager import DistributedKeys
from repro.engine import Executor, Table
from repro.paper_example import build_running_example

SPEEDUP_BAR = 5.0
ROWS = 500  # the bar is defined at 500+ rows; --quick trims repeats only


def example_data(rows: int) -> dict[str, Table]:
    rng = random.Random(7)
    diseases = ["stroke", "flu", "cardiac", "asthma"]
    treatments = ["tpa", "surgery", "rest", "statins"]
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + rng.randrange(60), rng.choice(diseases),
         rng.choice(treatments))
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", round(rng.uniform(40.0, 400.0), 2)) for i in range(rows)
    ])
    return {"Hosp": hosp, "Ins": ins}


def check_against_plaintext(result: Table, plain: Table, label: str) -> bool:
    if result.columns != plain.columns:
        print(f"FAIL: {label} columns {result.columns} != {plain.columns}")
        return False
    got = sorted(result.rows)
    want = sorted(plain.rows)
    if len(got) != len(want):
        print(f"FAIL: {label} returned {len(got)} rows, wanted {len(want)}")
        return False
    for (t1, p1), (t2, p2) in zip(got, want):
        # Paillier fixed-point arithmetic rounds at 1e-6; allow for it.
        if t1 != t2 or abs(p1 - p2) >= 1e-6:
            print(f"FAIL: {label} row ({t1}, {p1}) != ({t2}, {p2})")
            return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="end-to-end encrypted execution, fast vs seed crypto")
    parser.add_argument("--rows", type=int, default=ROWS,
                        help=f"rows per base table (default {ROWS})")
    parser.add_argument("--quick", action="store_true",
                        help="single timing round for CI smoke runs")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds (fresh keys each), best taken")
    parser.add_argument("--json", type=str, default=None,
                        help="write measurements to this path")
    args = parser.parse_args(argv)
    rows = args.rows
    rounds = 1 if args.quick else args.rounds

    catalog = example_data(rows)
    example = build_running_example()
    extended = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )

    plain_executor = Executor(catalog, cache_size=0)
    start = time.perf_counter()
    plain = plain_executor.execute(example.plan)
    plain_time = time.perf_counter() - start

    print(f"running example at {rows} rows/table "
          f"(plaintext: {plain_time * 1000:.1f} ms)")

    best_seed = best_fast = float("inf")
    ok = True
    for _ in range(rounds):
        # Fresh key material per round: both paths start cold, and the
        # seed/fast executors share identical keys within a round.
        keys = establish_keys(extended, example.policy)
        distributed = DistributedKeys.from_assignment(keys)

        executor = seed.SeedCryptoExecutor(
            catalog, keystore=distributed.master, cache_size=0)
        start = time.perf_counter()
        seed_result = executor.execute(extended.plan)
        best_seed = min(best_seed, time.perf_counter() - start)

        executor = Executor(catalog, keystore=distributed.master,
                            cache_size=0)
        start = time.perf_counter()
        fast_result = executor.execute(extended.plan)
        best_fast = min(best_fast, time.perf_counter() - start)

        ok = check_against_plaintext(seed_result, plain, "seed path") and ok
        ok = check_against_plaintext(fast_result, plain, "fast path") and ok

    speedup = best_seed / best_fast if best_fast > 0 else float("inf")
    print(f"  seed crypto path:  {best_seed * 1000:10.1f} ms "
          f"({best_seed / plain_time:8.1f}× over plaintext)")
    print(f"  batch kernels:     {best_fast * 1000:10.1f} ms "
          f"({best_fast / plain_time:8.1f}× over plaintext)")
    print(f"  speedup:           {speedup:10.1f}×  (bar: ≥{SPEEDUP_BAR:.0f}×)")

    if args.json:
        payload = {
            "rows": rows,
            "bar": {"end_to_end_speedup_min": SPEEDUP_BAR,
                    "measured": speedup},
            "plaintext_seconds": plain_time,
            "seed_encrypted_seconds": best_seed,
            "fast_encrypted_seconds": best_fast,
            "seed_slowdown_vs_plaintext": best_seed / plain_time,
            "fast_slowdown_vs_plaintext": best_fast / plain_time,
            "quick": args.quick,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"  measurements written to {args.json}")

    if not ok:
        return 1
    if speedup < SPEEDUP_BAR:
        # Match the repo's CI policy: --quick runs on shared runners
        # gate only result correctness; the wall-clock bar is a
        # report-only warning there and enforced on full runs.
        if args.quick:
            print(f"WARN: speedup {speedup:.1f}× below the "
                  f"{SPEEDUP_BAR:.0f}× bar (report-only in --quick)")
        else:
            print(f"FAIL: speedup {speedup:.1f}× below the "
                  f"{SPEEDUP_BAR:.0f}× bar")
            return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

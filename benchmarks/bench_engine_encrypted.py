"""Encrypted vs plaintext execution throughput (engine substrate).

Executes the running-example query end to end on generated data, once in
plaintext and once through the Figure 7(a) extended plan with real
encryption.  The slowdown factor contextualizes the per-value costs used
by the cost model.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dispatch import dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys
from repro.crypto.keymanager import DistributedKeys
from repro.engine import Executor, Table
from repro.paper_example import build_running_example

ROWS = 500


@pytest.fixture(scope="module")
def example_data():
    rng = random.Random(7)
    diseases = ["stroke", "flu", "cardiac", "asthma"]
    treatments = ["tpa", "surgery", "rest", "statins"]
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + rng.randrange(60), rng.choice(diseases),
         rng.choice(treatments))
        for i in range(ROWS)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", round(rng.uniform(40.0, 400.0), 2)) for i in range(ROWS)
    ])
    return {"Hosp": hosp, "Ins": ins}


def test_plaintext_execution(benchmark, example_data):
    example = build_running_example()
    # cache_size=0: measure execution, not subtree-cache lookups (the
    # benchmark calls the same plan object repeatedly).
    executor = Executor(example_data, cache_size=0)
    result = benchmark(lambda: executor.execute(example.plan))
    assert result.columns == ("T", "P")


def test_encrypted_execution(benchmark, example_data):
    example = build_running_example()
    extended = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )
    keys = establish_keys(extended, example.policy)
    distributed = DistributedKeys.from_assignment(keys)
    executor = Executor(example_data, keystore=distributed.master)

    result = benchmark.pedantic(
        lambda: executor.execute(extended.plan), rounds=1, iterations=1
    )
    plain = Executor(example_data).execute(example.plan)
    assert result.columns == plain.columns
    got = sorted(result.rows)
    want = sorted(plain.rows)
    assert len(got) == len(want)
    for (t1, p1), (t2, p2) in zip(got, want):
        # Paillier fixed-point arithmetic rounds at 1e-6; allow for it.
        assert t1 == t2 and abs(p1 - p2) < 1e-6


def test_dispatch_construction(benchmark, example_data):
    """Time sub-query dispatch (fragmenting + rendering + key routing)."""
    example = build_running_example()
    extended = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )
    keys = establish_keys(extended, example.policy)
    plan = benchmark(
        dispatch, extended, keys, owners=example.owners, user="U"
    )
    assert len(plan.fragments) == 4

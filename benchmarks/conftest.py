"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

import pytest

from repro.experiments.economics import run_economics
from repro.tpch.scenarios import all_scenarios
from repro.tpch.schema import build_tpch_schema

#: Scale factor used across the economic benchmarks.
BENCH_SCALE = 0.1


@pytest.fixture(scope="session")
def economics_results():
    """The full Figure 9/10 dataset, computed once per session."""
    return run_economics(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def tpch_schema():
    """TPC-H schema at the benchmark scale."""
    return build_tpch_schema(BENCH_SCALE)


@pytest.fixture(scope="session")
def scenarios(tpch_schema):
    """The three §7 scenarios."""
    return all_scenarios(tpch_schema)

"""Ablation — §5's visibility extremes.

The paper discusses two extreme policies for inserting encryption:
maximizing visibility (encrypt only when strictly needed) and minimizing
visibility (encrypt by default, decrypt on demand), and motivates its
candidate-driven middle ground.  This bench compares the minimal
extension (with opportunistic decryption) against the
minimize-visibility variant on representative queries.

Expected shape: minimize-visibility performs at least as many encryption
operations and costs at least as much, often dramatically more when it
forces Paillier/OPE work the minimal extension avoids.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import visibility_ablation

from conftest import BENCH_SCALE

#: Queries spanning the interesting regimes: lineitem-heavy aggregation,
#: deep cross-authority joins, and count-style aggregation.
ABLATION_QUERIES = (3, 5, 10, 13, 21)


@pytest.mark.parametrize("query_number", ABLATION_QUERIES)
def test_visibility_ablation(benchmark, scenarios, query_number, capsys):
    """Minimal extension vs minimize-visibility on one query."""
    scenario_obj = scenarios["UAPenc"]
    points = benchmark.pedantic(
        visibility_ablation,
        args=(query_number, scenario_obj),
        kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    by_variant = {p.variant: p for p in points}
    minimal = by_variant["minimal-extension"]
    maximal = by_variant["minimize-visibility"]
    with capsys.disabled():
        print(
            f"\nQ{query_number}: minimal-extension ${minimal.total_usd:.6f} "
            f"({minimal.encryption_operations} enc ops) vs "
            f"minimize-visibility ${maximal.total_usd:.6f} "
            f"({maximal.encryption_operations} enc ops)"
        )
    assert minimal.total_usd <= maximal.total_usd * 1.001

"""Figure 10 — total economic cost of evaluating the 22 queries.

Regenerates the cumulative normalized-cost series and the §7 headline
numbers: "involving providers in the processing of encrypted data
(UAPenc) provides a saving of 54.2 % compared to the base UA scenario;
the saving further increases (71.3 %) with the loosening of the policy
(UAPmix)".

Our reproduction (simulated substrate — see EXPERIMENTS.md) measures the
same ordering with savings of the same order of magnitude.
"""

from __future__ import annotations

from repro.experiments.economics import run_economics

from conftest import BENCH_SCALE


def test_fig10_cumulative_pipeline(benchmark):
    """Time the full 22-query × 3-scenario experiment."""
    results = benchmark.pedantic(
        run_economics, kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    assert len(results.costs) == 22 * 3


def test_fig10_report(benchmark, economics_results, capsys):
    """Print the Figure 10 table and check the headline savings."""
    benchmark(economics_results.figure10_table)
    with capsys.disabled():
        print("\n=== Figure 10: cumulative normalized cost ===")
        print(economics_results.figure10_table())

    enc_saving = economics_results.saving("UAPenc")
    mix_saving = economics_results.saving("UAPmix")
    # Shape assertions: both scenarios save, UAPmix saves more (paper:
    # 54.2 % and 71.3 %).
    assert 0.10 <= enc_saving < 1.0
    assert 0.40 <= mix_saving < 1.0
    assert mix_saving > enc_saving


def test_fig10_cumulative_series_monotone(benchmark, economics_results):
    """Cumulative series are non-decreasing and ordered UA≥UAPenc≥UAPmix."""
    rows = benchmark(economics_results.cumulative_rows)
    previous = (0.0, 0.0, 0.0)
    for _, ua, enc, mix in rows:
        assert ua >= previous[0] and enc >= previous[1] and mix >= previous[2]
        assert ua >= enc - 1e-9 >= mix - 2e-9
        previous = (ua, enc, mix)

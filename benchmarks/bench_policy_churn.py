#!/usr/bin/env python
"""Warm-cache throughput under policy churn: journal vs flush-everything.

The ISSUE-6 acceptance bar: a :class:`~repro.service.QueryService`
serving a repeated query while the policy churns — every query preceded
by grant/revoke mutations that do **not** involve the workload's
candidate subjects — must sustain ≥10× the throughput of the
flush-everything baseline (the same service with the delta journal
disabled via ``journal_limit=0``, which degrades every reconcile to the
PR 2 flush).

With the journal on, each mutation's :class:`PolicyDelta` is disjoint
from every cached entry's dependency footprint, so the assignment cache,
edge tables, fragment results, and executor memos all reconcile to
*kept* and the query runs on the warm path.  With the journal off,
``deltas_since`` returns ``None``, every cache flushes, and each query
pays the full assign + keygen + dispatch + execute pipeline again.

``--quick`` runs a smaller smoke configuration for CI; ``--json PATH``
emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_policy_churn.py
    PYTHONPATH=src python benchmarks/bench_policy_churn.py \
        --quick --json BENCH_churn.json

Structural invariants (identical results across both runs, every warm
query a cache hit with the journal, zero hits without it, no
evictions/flushes on the journal path) always gate the exit status.
The wall-clock throughput bar gates only the full run: under ``--quick``
it is report-only (printed as a warning), so contended CI runners cannot
flake unrelated merges on timing noise.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.authorization import Authorization
from repro.engine.table import Table
from repro.paper_example import build_running_example
from repro.service import QueryService

SPEEDUP_BAR = 10.0

RUNNING_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T having avg(P)>100")

#: Subjects that churn but hold no role in the workload: they are not in
#: the service's candidate pool, so their deltas are disjoint from every
#: cached entry's dependency footprint.
OUTSIDE_SUBJECTS = ("W0", "W1", "W2", "W3")

#: The rule each outside subject toggles, per relation.
OUTSIDE_RULES = {
    "Hosp": (("T",), ("D",)),
    "Ins": ((), ("P",)),
}


def build_service(journal: bool, rows: int,
                  latency: float) -> QueryService:
    """The running-example service over synthetic rows.

    Every non-user subject simulates a provider round-trip of
    ``latency`` seconds — the cost a warm fragment cache avoids and a
    flushed one pays again on every query, exactly as in
    ``bench_distributed_workload.py``.
    """
    example = build_running_example()
    if not journal:
        example.policy.journal_limit = 0
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 7.0 * (i % 30)) for i in range(rows)
    ])
    latencies = {name: (0.0 if name == "U" else latency)
                 for name in example.subject_names}
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U", latency_seconds=latencies,
    )


def run_churn_stream(journal: bool, queries: int,
                     mutations_per_query: int, rows: int,
                     latency: float) -> dict:
    """One service, one seeded churn stream, ``queries`` warm queries.

    The stream is deterministic given the seed and identical for both
    the journal and the baseline run, so their results must agree.
    """
    service = build_service(journal, rows, latency)
    policy = service.policy
    schema = service.schema
    session = service.session()
    cold = session.run(RUNNING_SQL)  # warm-up, untimed

    rng = random.Random(20170601)
    started = time.perf_counter()
    for _ in range(queries):
        for _ in range(mutations_per_query):
            relation = rng.choice(tuple(OUTSIDE_RULES))
            subject = rng.choice(OUTSIDE_SUBJECTS)
            if policy.revoke(relation, subject) is None:
                plaintext, encrypted = OUTSIDE_RULES[relation]
                policy.grant(Authorization(
                    schema.relation(relation), plaintext, encrypted,
                    subject))
        session.run(RUNNING_SQL)
    elapsed = time.perf_counter() - started

    info = service.cache_info()
    assignment = info["assignment"]
    return {
        "journal": journal,
        "queries": queries,
        "mutations_per_query": mutations_per_query,
        "latency_seconds": latency,
        "policy_version": policy.version,
        "elapsed_seconds": elapsed,
        "throughput_qps": queries / elapsed,
        "result_rows": sorted(cold.result.rows),
        "assignment_cache_hits": session.stats.assignment_cache_hits,
        "fragment_cache_hits": session.stats.fragment_cache_hits,
        "fragments_run": session.stats.fragments_run,
        "reconcile_kept": assignment["reconcile_kept"],
        "reconcile_evicted": assignment["reconcile_evicted"],
        "reconcile_flushed": assignment["reconcile_flushed"],
        "fragment_kept": info["fragment_kept"],
        "fragment_evicted": info["fragment_evicted"],
        "fragment_flushed": info["fragment_flushed"],
        "executor_kept": info["executor_kept"],
        "executor_evicted": info["executor_evicted"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration (CI)")
    parser.add_argument("--json", type=Path, default=None,
                        help="emit measurements to this JSON file")
    arguments = parser.parse_args(argv)

    if arguments.quick:
        queries, mutations, rows, latency = 12, 2, 40, 0.015
    else:
        queries, mutations, rows, latency = 40, 3, 80, 0.025

    journal = run_churn_stream(True, queries, mutations, rows, latency)
    baseline = run_churn_stream(False, queries, mutations, rows, latency)
    speedup = journal["throughput_qps"] / baseline["throughput_qps"]

    print(f"policy churn workload: {queries} queries, "
          f"{mutations} mutations before each "
          f"(policy version {journal['policy_version']} at the end)")
    print(f"  journal on:  {journal['throughput_qps']:8.1f} q/s "
          f"({journal['elapsed_seconds'] * 1000:.1f} ms; "
          f"{journal['assignment_cache_hits']}/{queries} assignment hits, "
          f"{journal['fragment_cache_hits']}/{journal['fragments_run']} "
          f"fragment hits)")
    print(f"  journal off: {baseline['throughput_qps']:8.1f} q/s "
          f"({baseline['elapsed_seconds'] * 1000:.1f} ms; "
          f"{baseline['assignment_cache_hits']} assignment hits, "
          f"{baseline['reconcile_flushed']} entries flushed)")
    print(f"  speedup: {speedup:.1f}x (bar {SPEEDUP_BAR}x)")
    print(f"  journal reconcile: {journal['reconcile_kept']} kept, "
          f"{journal['reconcile_evicted']} evicted, "
          f"{journal['fragment_kept']} fragment entries kept, "
          f"{journal['executor_kept']} executor memos kept")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "journal": journal,
            "baseline": baseline,
            "speedup": speedup,
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    failures = []
    if journal["result_rows"] != baseline["result_rows"]:
        failures.append("journal and baseline runs returned different rows")
    if journal["assignment_cache_hits"] != queries:
        failures.append(
            f"journal run: expected {queries} assignment cache hits, "
            f"got {journal['assignment_cache_hits']}")
    if baseline["assignment_cache_hits"] != 0:
        failures.append(
            f"baseline run: expected 0 assignment cache hits, "
            f"got {baseline['assignment_cache_hits']}")
    if journal["reconcile_evicted"] or journal["reconcile_flushed"]:
        failures.append(
            "journal run evicted/flushed entries for disjoint deltas "
            f"({journal['reconcile_evicted']} evicted, "
            f"{journal['reconcile_flushed']} flushed)")
    if journal["fragment_evicted"] or journal["fragment_flushed"]:
        failures.append(
            "journal run lost fragment entries to disjoint deltas")
    if not journal["fragment_kept"] or not journal["executor_kept"]:
        failures.append("journal run shows no kept runtime entries")
    if speedup < SPEEDUP_BAR:
        miss = (f"churn speedup {speedup:.1f}x < bar {SPEEDUP_BAR}x")
        if arguments.quick:
            # Timing is report-only in smoke mode: shared CI runners are
            # too contended to gate merges on wall-clock bars.
            print(f"WARN (report-only under --quick): {miss}",
                  file=sys.stderr)
        else:
            failures.append(miss)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Throughput of the encryption substrate: batch kernels vs the seed path.

The §7 tool prices encryption "based on common benchmarks"; this
benchmark measures our actual primitives — once through the columnar
batch kernels of :mod:`repro.crypto` (cached HMAC subkeys, memoized
deterministic/OPE, binomial + pooled Paillier, CRT decryption) and once
through the seed's per-call implementations kept verbatim in
``benchmarks/_seed_crypto.py`` — so the per-scheme *ratios* that drive
the assignment search (``repro.cost.factors``) can be calibrated against
reality.  Deterministic outputs are asserted bit-identical between the
two paths.

The ISSUE-5 acceptance bar enforced here is a ≥10× Paillier encryption
speedup (binomial shortcut + precomputed ``r^n`` pool vs double-pow).
Other scheme speedups are reported, and the measured per-value seconds
are emitted with ``--json`` for trend tracking and factor recalibration.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_crypto.py
    PYTHONPATH=src python benchmarks/bench_crypto.py --quick \
        --json BENCH_crypto.json

Exits non-zero when the Paillier bar is missed or outputs diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import _seed_crypto as seed

from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import generate_keypair
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher

PAILLIER_BAR = 10.0

KEY = b"benchmark-key-32-bytes-long!!!!!"


def timed(thunk, repeat: int) -> float:
    """Best-of-``repeat`` wall time of ``thunk()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def report(name: str, seed_s: float, fast_s: float, count: int,
           results: dict) -> float:
    speedup = seed_s / fast_s if fast_s > 0 else float("inf")
    print(f"  {name:<26} seed {seed_s * 1e6 / count:9.2f} µs/val   "
          f"fast {fast_s * 1e6 / count:9.2f} µs/val   {speedup:8.1f}×")
    results[name] = {
        "seed_seconds_per_value": seed_s / count,
        "fast_seconds_per_value": fast_s / count,
        "speedup": speedup,
        "values": count,
    }
    return speedup


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="batch crypto kernels vs the seed per-call path")
    parser.add_argument("--quick", action="store_true",
                        help="smaller value counts for CI smoke runs")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing runs per measurement, best taken")
    parser.add_argument("--json", type=str, default=None,
                        help="write measurements to this path")
    args = parser.parse_args(argv)

    sym_n = 200 if args.quick else 1000
    ope_n = 100 if args.quick else 400
    pai_n = 24 if args.quick else 64
    repeat = args.repeat

    # Realistic column shape: many repeats over a modest distinct set
    # (join/grouping columns), plus a distinct tail.
    strings = [f"value-{i % 50}" for i in range(sym_n)]
    numbers = [(i % 80) * 7 - 100 for i in range(ope_n)]
    pai_values = [i * 3 - pai_n for i in range(pai_n)]
    results: dict[str, dict] = {}
    failures: list[str] = []

    print(f"crypto substrate: {sym_n} symmetric / {ope_n} OPE / "
          f"{pai_n} Paillier values, best of {repeat}")

    # -- deterministic -------------------------------------------------
    fast_det = DeterministicCipher(KEY)
    seed_det = seed.SeedDeterministicCipher(KEY)
    fast_tokens = fast_det.encrypt_many(strings)
    if fast_tokens != [seed_det.encrypt(v) for v in strings]:
        failures.append("deterministic ciphertexts diverge from the seed")
    seed_s = timed(lambda: [seed.SeedDeterministicCipher(KEY).encrypt(v)
                            for v in strings], repeat)
    fast_s = timed(lambda: DeterministicCipher(KEY).encrypt_many(strings),
                   repeat)
    report("deterministic encrypt", seed_s, fast_s, sym_n, results)

    seed_s = timed(lambda: [seed.SeedDeterministicCipher(KEY).decrypt(t)
                            for t in fast_tokens], repeat)
    fast_s = timed(lambda: DeterministicCipher(KEY).decrypt_many(fast_tokens),
                   repeat)
    report("deterministic decrypt", seed_s, fast_s, sym_n, results)

    # -- randomized ----------------------------------------------------
    seed_s = timed(lambda: [seed.SeedRandomizedCipher(KEY).encrypt(v)
                            for v in strings], repeat)
    fast_s = timed(lambda: RandomizedCipher(KEY).encrypt_many(strings),
                   repeat)
    report("randomized encrypt", seed_s, fast_s, sym_n, results)
    rand_tokens = RandomizedCipher(KEY).encrypt_many(strings)
    if RandomizedCipher(KEY).decrypt_many(rand_tokens) != strings:
        failures.append("randomized bulk roundtrip diverged")

    # -- OPE -----------------------------------------------------------
    fast_ope = OpeCipher(KEY)
    seed_ope = seed.SeedOpeCipher(KEY)
    if fast_ope.encrypt_many(numbers) != [seed_ope.encrypt(v)
                                          for v in numbers]:
        failures.append("OPE ciphertexts diverge from the seed")
    seed_s = timed(lambda: [seed.SeedOpeCipher(KEY).encrypt(v)
                            for v in numbers], repeat)
    fast_s = timed(lambda: OpeCipher(KEY).encrypt_many(numbers), repeat)
    report("ope encrypt", seed_s, fast_s, ope_n, results)

    # -- Paillier ------------------------------------------------------
    public, private = generate_keypair(512)
    obfuscator = public._next_obfuscator()
    fast_c = public.encrypt(123.25, obfuscator=obfuscator)
    if fast_c.value != public.encrypt_reference(
            123.25, obfuscator=obfuscator).value:
        failures.append("binomial encryption diverges from the reference")

    seed_s = timed(lambda: [seed.seed_paillier_encrypt(public, v)
                            for v in pai_values], repeat)
    fast_s = timed(lambda: public.encrypt_many(pai_values), repeat)
    paillier_speedup = report("paillier encrypt", seed_s, fast_s, pai_n,
                              results)

    ciphertexts = public.encrypt_many(pai_values)
    if private.decrypt_many(ciphertexts) != \
            [private.decrypt_reference(c) for c in ciphertexts]:
        failures.append("CRT decryption diverges from the reference")
    seed_s = timed(lambda: [private.decrypt_reference(c)
                            for c in ciphertexts], repeat)
    fast_s = timed(lambda: private.decrypt_many(ciphertexts), repeat)
    report("paillier decrypt", seed_s, fast_s, pai_n, results)

    total = private.decrypt(sum(ciphertexts))
    if total != sum(pai_values):
        failures.append(
            f"homomorphic sum() produced {total}, wanted {sum(pai_values)}")

    if args.json:
        payload = {
            "bar": {"paillier_encrypt_speedup_min": PAILLIER_BAR,
                    "measured": paillier_speedup},
            "measurements": results,
            "quick": args.quick,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"  measurements written to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if paillier_speedup < PAILLIER_BAR:
        # Match the repo's CI policy: --quick runs on shared runners
        # gate only structural invariants; wall-clock bars are
        # report-only warnings there and enforced on full runs.
        if args.quick:
            print(f"WARN: paillier encrypt speedup {paillier_speedup:.1f}× "
                  f"below the {PAILLIER_BAR:.0f}× bar (report-only in "
                  f"--quick)")
        else:
            print(f"FAIL: paillier encrypt speedup {paillier_speedup:.1f}× "
                  f"below the {PAILLIER_BAR:.0f}× bar")
            return 1
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Throughput of the encryption substrate.

The §7 tool prices encryption "based on common benchmarks"; these
benchmarks measure our actual primitives so the cost-model factors in
``repro.cost.factors`` can be sanity-checked against reality (the *ratios*
between schemes are what drives the assignment search).
"""

from __future__ import annotations

import pytest

from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import generate_keypair
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher

KEY = b"benchmark-key-32-bytes-long!!!!!"
VALUES = [f"value-{i}" for i in range(200)]
NUMBERS = list(range(200))


def test_deterministic_encrypt(benchmark):
    cipher = DeterministicCipher(KEY)
    benchmark(lambda: [cipher.encrypt(v) for v in VALUES])


def test_randomized_encrypt(benchmark):
    cipher = RandomizedCipher(KEY)
    benchmark(lambda: [cipher.encrypt(v) for v in VALUES])


def test_deterministic_decrypt(benchmark):
    cipher = DeterministicCipher(KEY)
    tokens = [cipher.encrypt(v) for v in VALUES]
    benchmark(lambda: [cipher.decrypt(t) for t in tokens])


def test_ope_encrypt(benchmark):
    cipher = OpeCipher(KEY)
    benchmark(lambda: [cipher.encrypt(n) for n in NUMBERS])


@pytest.fixture(scope="module")
def paillier_keys():
    return generate_keypair(512)


def test_paillier_encrypt(benchmark, paillier_keys):
    public, _ = paillier_keys
    benchmark(lambda: [public.encrypt(n) for n in NUMBERS[:20]])


def test_paillier_homomorphic_sum(benchmark, paillier_keys):
    public, private = paillier_keys
    ciphertexts = [public.encrypt(n) for n in NUMBERS[:50]]

    def homomorphic_sum():
        total = ciphertexts[0]
        for c in ciphertexts[1:]:
            total = total + c
        return private.decrypt(total)

    result = benchmark(homomorphic_sum)
    assert result == sum(NUMBERS[:50])

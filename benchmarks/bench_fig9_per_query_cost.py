"""Figure 9 — economic cost of evaluating individual queries.

Regenerates the per-query normalized-cost series of the paper: for every
TPC-H query, the cost of the cheapest authorized plan under UA (the
baseline, normalized to 1), UAPenc, and UAPmix.  The benchmark times the
full assignment pipeline per query; the figure itself is printed once at
the end of the module.

Expected shape (paper, Figure 9): UAPenc ≤ UA and UAPmix ≤ UAPenc for
every query, with large savings on the provider-friendly queries and
parity on single-authority queries.
"""

from __future__ import annotations

import pytest

from repro.experiments.economics import run_query_scenario

from conftest import BENCH_SCALE

QUERIES = list(range(1, 23))


@pytest.mark.parametrize("query_number", QUERIES)
def test_fig9_query_pipeline(benchmark, scenarios, query_number):
    """Time the full §6 pipeline for one query under UAPenc."""
    scenario_obj = scenarios["UAPenc"]

    result = benchmark.pedantic(
        run_query_scenario,
        args=(query_number, scenario_obj),
        kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    assert result.cost.total_usd > 0


def test_fig9_report(benchmark, economics_results, capsys):
    """Print the Figure 9 table and assert its shape."""
    table = benchmark(economics_results.figure9_table)
    with capsys.disabled():
        print("\n=== Figure 9: per-query normalized cost ===")
        print(table)
    for query, ua, enc, mix in economics_results.per_query_rows():
        assert ua == 1.0
        assert enc <= 1.0 + 1e-9, f"Q{query}: UAPenc worse than UA"
        assert mix <= enc + 1e-9, f"Q{query}: UAPmix worse than UAPenc"

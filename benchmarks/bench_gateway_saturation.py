#!/usr/bin/env python
"""Gateway saturation: fairness, lossless shedding, quota gating.

The ISSUE-9 acceptance bar: a :class:`~repro.gateway.Gateway` driven at
4x oversubscription (standing backlog = 4x the in-flight window) must

* keep every tenant's **dispatch share** within 20% of its fair
  weighted share while all tenants are backlogged;
* lose nothing: every submit attempt either completes or is rejected
  explicitly (``completed + rejected == submitted``, per tenant);
* reject quota-exhausted tenants at :meth:`Gateway.submit`, **before
  any planning work** — proven here by counting the service's
  ``execute`` calls per query text;
* emit a parseable Prometheus scrape whose counters agree with the
  driver's own bookkeeping.

Fairness is audited on **dispatch order**, not completion order:
dispatches are numbered under the admission controller's lock and
recorded in each :class:`~repro.cost.metering.LedgerEntry`, so the
measurement is deterministic while executions overlap.  The audited
window starts after a short warm-up (the queues fill tenant by tenant)
and ends at the heaviest tenant's final dispatch — up to that point
every tenant provably still had queries queued.

``--quick`` runs a smaller smoke configuration for CI; ``--json PATH``
emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_gateway_saturation.py
    PYTHONPATH=src python benchmarks/bench_gateway_saturation.py \
        --quick --json BENCH_gateway.json

Structural invariants (fair shares, conservation, quota gating, scrape
consistency) always gate the exit status.  The tail-latency bar (the
heaviest tenant waits no longer than the lightest) gates only the full
run: under ``--quick`` it is report-only, so contended CI runners
cannot flake unrelated merges on timing noise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.table import Table
from repro.exceptions import AdmissionRejected, QuotaExceeded
from repro.gateway import Gateway, TenantConfig
from repro.paper_example import build_running_example
from repro.service import QueryService

#: Weighted tenants driving the saturation phase (the broke tenant is
#: exhausted separately, before the storm).
WEIGHTS = {"gold": 4, "silver": 2, "bronze": 1}

#: Per-tenant queue depth; with ``max_inflight = len(WEIGHTS)`` the
#: standing backlog is QUEUE_DEPTH x the in-flight window: 4x.
QUEUE_DEPTH = 4

#: Allowed relative deviation from the fair dispatch share (the ISSUE
#: bar), with an absolute floor of two dispatches for tiny windows.
FAIRNESS_TOLERANCE = 0.20

#: Dispatches skipped at the start of the fairness window: the queues
#: fill tenant by tenant while workers already drain, so the first few
#: dispatches predate all-tenants-backlogged.
WARMUP_DISPATCHES = 2 * len(WEIGHTS)

#: Distinct query constants per tenant: enough to exercise plan and
#: assignment caching, few enough that queries stay fast and uniform.
VARIANTS = 4

#: HAVING thresholds per tenant keep each tenant's SQL distinct, which
#: is what lets the execute-call counter attribute planning per tenant.
BASES = {"gold": 100, "silver": 200, "bronze": 300, "broke": 400}

SQL_TEMPLATE = ("select T, avg(P) from Hosp join Ins on S=C "
                "where D='stroke' group by T having avg(P)>{threshold}")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
_LABEL = re.compile(r'(\w+)="([^"]*)"')


def tenant_sql(tenant: str, index: int) -> str:
    return SQL_TEMPLATE.format(
        threshold=BASES[tenant] + index % VARIANTS)


def build_service(rows: int) -> QueryService:
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 7.0 * (i % 30)) for i in range(rows)
    ])
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U",
    )


def parse_scrape(text: str) -> dict:
    """Prometheus text -> {family: [(labels dict, value)]}; strict."""
    families: dict[str, list] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise SystemExit(f"unparseable scrape line: {line!r}")
        labels = dict(_LABEL.findall(match.group("labels") or ""))
        families.setdefault(match.group("name"), []).append(
            (labels, float(match.group("value"))))
    return families


def by_tenant(families: dict, family: str,
              extra: dict | None = None) -> dict[str, float]:
    out: dict[str, float] = {}
    for labels, value in families.get(family, ()):
        if extra is not None and any(labels.get(k) != v
                                     for k, v in extra.items()):
            continue
        out[labels["tenant"]] = value
    return out


class TenantDriver:
    """Keeps one tenant's queue topped up until its budget completes."""

    def __init__(self, gateway: Gateway, name: str, budget: int) -> None:
        self.gateway = gateway
        self.name = name
        self.budget = budget
        self.attempts = 0
        self.admitted = 0
        self.rejected = 0
        self.done_count = 0
        self.futures: list = []
        self.lock = threading.Lock()
        self.finished = threading.Event()

    def pump(self) -> None:
        with self.lock:
            while (self.admitted < self.budget
                   and self.gateway.queue_depths().get(self.name, 0)
                   < QUEUE_DEPTH):
                if not self._submit_locked():
                    break

    def probe(self) -> bool:
        """One deliberate submit beyond the queue check; True if rejected."""
        with self.lock:
            admitted = self._submit_locked()
            if admitted:
                self.budget = max(self.budget, self.admitted)
            return not admitted

    def _submit_locked(self) -> bool:
        self.attempts += 1
        try:
            future = self.gateway.submit(
                self.name, tenant_sql(self.name, self.admitted))
        except AdmissionRejected:
            self.rejected += 1
            return False
        self.admitted += 1
        self.futures.append(future)
        future.add_done_callback(self._on_done)
        return True

    def _on_done(self, _future) -> None:
        with self.lock:
            self.done_count += 1
            finished = (self.admitted >= self.budget
                        and self.done_count == self.admitted)
        if finished:
            self.finished.set()
        else:
            self.pump()


def exhaust_broke_tenant(gateway: Gateway, service_calls: dict):
    """Run the broke tenant until its credits refuse admission."""
    completed = 0
    refusal = None
    for index in range(12):
        try:
            gateway.execute("broke", tenant_sql("broke", index))
            completed += 1
        except QuotaExceeded as error:
            refusal = error
            break
    broke_sqls = {tenant_sql("broke", index) for index in range(VARIANTS)}
    planned = sum(count for sql, count in service_calls.items()
                  if sql in broke_sqls)
    return completed, refusal, planned


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration (CI)")
    parser.add_argument("--json", type=Path, default=None,
                        help="emit measurements to this JSON file")
    arguments = parser.parse_args(argv)

    budget, rows = (16, 40) if arguments.quick else (48, 80)
    max_inflight = len(WEIGHTS)
    oversubscription = QUEUE_DEPTH * len(WEIGHTS) / max_inflight

    service = build_service(rows)
    service_calls: dict[str, int] = {}
    calls_lock = threading.Lock()
    original_execute = service.execute

    def counted_execute(sql, user=None, **kwargs):
        with calls_lock:
            service_calls[sql] = service_calls.get(sql, 0) + 1
        return original_execute(sql, user=user, **kwargs)

    service.execute = counted_execute

    # Price one probe query so the broke tenant's prepaid credit covers
    # roughly 2.5 queries: two clean debits plus one postpaid overdraw.
    probe_cost = original_execute(
        SQL_TEMPLATE.format(threshold=999)).cost_usd
    broke_credits = 2.5 * probe_cost

    tenants = [TenantConfig(name, weight=weight, queue_depth=QUEUE_DEPTH)
               for name, weight in WEIGHTS.items()]
    tenants.append(TenantConfig("broke", weight=1,
                                queue_depth=QUEUE_DEPTH,
                                credits_usd=broke_credits))
    gateway = Gateway(service, tenants, max_inflight=max_inflight)

    # ------------------------------------------------------------------
    # Phase 1 — quota gating, before the storm.
    # ------------------------------------------------------------------
    broke_completed, broke_refusal, broke_planned = \
        exhaust_broke_tenant(gateway, service_calls)

    # ------------------------------------------------------------------
    # Phase 2 — saturation: all weighted tenants backlogged at 4x.
    # ------------------------------------------------------------------
    drivers = {name: TenantDriver(gateway, name, budget)
               for name in WEIGHTS}
    started = time.perf_counter()
    for driver in drivers.values():
        driver.pump()
    probe_rejections = 0
    for driver in drivers.values():
        for _ in range(20):  # a dispatch may free a slot mid-probe
            if driver.probe():
                probe_rejections += 1
                break
    for driver in drivers.values():
        if not driver.finished.wait(timeout=600):
            raise SystemExit(f"tenant {driver.name} never finished")
    elapsed = time.perf_counter() - started
    total_completed = sum(d.done_count for d in drivers.values())

    # ------------------------------------------------------------------
    # Audit: dispatch-order fairness within the backlogged window.
    # ------------------------------------------------------------------
    entries = [entry for entry in gateway.ledger.all_entries()
               if entry.tenant in WEIGHTS
               and entry.dispatch_sequence is not None]
    entries.sort(key=lambda entry: entry.dispatch_sequence)
    # Dispatch numbering is global — the broke tenant's phase-1 queries
    # consumed the first few sequences — so the warm-up skip is relative
    # to the first *saturation* dispatch.
    first_dispatch = entries[0].dispatch_sequence
    window_start = first_dispatch + WARMUP_DISPATCHES
    gold_last = max(entry.dispatch_sequence for entry in entries
                    if entry.tenant == "gold")
    window = [entry.tenant for entry in entries
              if window_start < entry.dispatch_sequence <= gold_last]
    total_weight = sum(WEIGHTS.values())
    shares = {}
    fairness_misses = []
    for name, weight in WEIGHTS.items():
        served = window.count(name)
        expected = len(window) * weight / total_weight
        shares[name] = {"served": served, "expected": expected,
                        "fair_share": weight / total_weight}
        if abs(served - expected) > max(
                FAIRNESS_TOLERANCE * expected, 2.0):
            fairness_misses.append(
                f"{name}: {served} dispatches in a window of "
                f"{len(window)}, expected ~{expected:.1f} "
                f"(weight {weight}/{total_weight})")

    scrape = gateway.metrics_text()
    families = parse_scrape(scrape)
    gateway.close()
    submitted = by_tenant(families, "repro_gateway_queries_submitted_total")
    completed = by_tenant(families, "repro_gateway_queries_completed_total")
    failed = by_tenant(families, "repro_gateway_queries_failed_total")
    waits_sum = by_tenant(families, "repro_gateway_queue_wait_seconds_sum")
    waits_count = by_tenant(families,
                            "repro_gateway_queue_wait_seconds_count")
    rejected_total: dict[str, float] = {}
    for labels, value in families.get(
            "repro_gateway_queries_rejected_total", ()):
        rejected_total[labels["tenant"]] = \
            rejected_total.get(labels["tenant"], 0.0) + value
    mean_waits = {name: waits_sum.get(name, 0.0)
                  / max(waits_count.get(name, 0.0), 1.0)
                  for name in WEIGHTS}

    print(f"gateway saturation: {len(WEIGHTS)} weighted tenants x "
          f"{budget} queries, max_inflight={max_inflight}, "
          f"queue_depth={QUEUE_DEPTH} "
          f"({oversubscription:.0f}x oversubscription)")
    print(f"  {total_completed} completed in {elapsed:.2f}s "
          f"({total_completed / elapsed:.1f} q/s), "
          f"{probe_rejections} overflow probes rejected")
    for name in WEIGHTS:
        share = shares[name]
        print(f"  {name:7s} w={WEIGHTS[name]}: "
              f"{share['served']:3d} window dispatches "
              f"(expected {share['expected']:5.1f}), "
              f"mean queue wait {mean_waits[name] * 1000:6.1f} ms")
    print(f"  broke tenant: {broke_completed} completed on "
          f"${broke_credits:.6f} credit, then rejected "
          f"(reason={getattr(broke_refusal, 'reason', None)!r}); "
          f"{broke_planned} planning cycles spent")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "budget_per_tenant": budget,
            "max_inflight": max_inflight,
            "queue_depth": QUEUE_DEPTH,
            "oversubscription": oversubscription,
            "elapsed_seconds": elapsed,
            "throughput_qps": total_completed / elapsed,
            "window_dispatches": len(window),
            "shares": shares,
            "mean_queue_wait_seconds": mean_waits,
            "probe_rejections": probe_rejections,
            "tenants": {
                name: {"attempts": driver.attempts,
                       "admitted": driver.admitted,
                       "rejected": driver.rejected,
                       "completed": driver.done_count}
                for name, driver in drivers.items()},
            "broke": {"credits_usd": broke_credits,
                      "completed": broke_completed,
                      "planned": broke_planned},
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    failures = list(fairness_misses)
    # Conservation: nothing lost, nothing silently dropped.
    for name, driver in drivers.items():
        if driver.attempts != driver.admitted + driver.rejected:
            failures.append(
                f"{name}: {driver.attempts} attempts != "
                f"{driver.admitted} admitted + {driver.rejected} rejected")
        if driver.done_count != driver.admitted:
            failures.append(
                f"{name}: {driver.admitted} admitted but only "
                f"{driver.done_count} resolved")
        if any(not future.done() for future in driver.futures):
            failures.append(f"{name}: unresolved futures after drain")
    # The scrape agrees with the driver's own bookkeeping.
    for name, driver in drivers.items():
        if submitted.get(name) != driver.attempts:
            failures.append(
                f"scrape submitted[{name}]={submitted.get(name)} != "
                f"driver attempts {driver.attempts}")
        if completed.get(name) != driver.done_count:
            failures.append(
                f"scrape completed[{name}]={completed.get(name)} != "
                f"driver completions {driver.done_count}")
        if rejected_total.get(name, 0.0) != driver.rejected:
            failures.append(
                f"scrape rejected[{name}]={rejected_total.get(name)} "
                f"!= driver rejections {driver.rejected}")
    if any(failed.get(name, 0.0) for name in WEIGHTS):
        failures.append(f"executions failed under saturation: {failed}")
    if probe_rejections == 0:
        failures.append("no overflow probe was ever rejected — the "
                        "backlog never reached queue_depth")
    # Quota gating: the broke tenant was stopped by credits, before
    # planning: the service saw exactly its completed queries.
    if broke_refusal is None:
        failures.append("broke tenant was never quota-rejected")
    elif broke_refusal.reason != "credits":
        failures.append(
            f"broke tenant rejected for {broke_refusal.reason!r}, "
            f"expected 'credits'")
    if broke_planned != broke_completed:
        failures.append(
            f"broke tenant spent {broke_planned} planning cycles for "
            f"{broke_completed} completed queries — the rejected query "
            f"reached the service")
    if gold_mean := mean_waits["gold"]:
        if gold_mean > mean_waits["bronze"]:
            miss = (f"gold mean queue wait {gold_mean * 1000:.1f} ms "
                    f"exceeds bronze "
                    f"{mean_waits['bronze'] * 1000:.1f} ms")
            if arguments.quick:
                # Timing is report-only in smoke mode: shared CI
                # runners are too contended to gate merges on it.
                print(f"WARN (report-only under --quick): {miss}",
                      file=sys.stderr)
            else:
                failures.append(miss)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

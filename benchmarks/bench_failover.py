#!/usr/bin/env python
"""Mid-run provider death: failover correctness and latency blow-up.

The ISSUE-7 acceptance bar: a :class:`~repro.service.QueryService`
streaming queries while a compute provider is killed mid-run must

* return **bit-identical** results to the fault-free run for every
  query, before and after the kill;
* record the recovery in each affected
  :class:`~repro.service.QueryOutcome` (failover events, breaker
  trips, added latency);
* never dispatch a fragment to an unauthorized replacement — every
  re-dispatch target is re-checked here with
  :func:`~repro.core.visibility.verify_assignment`, independently of
  the runtime's own gate;
* keep the post-kill latency blow-up bounded.

The victim is not hardcoded: the fault-free run is inspected and the
kill targets a compute subject the planner actually chose (data
authorities cannot fail over; the querying user is the last-resort
assignee).  Each query uses a distinct selection constant so every
round exercises the full plan → assign → dispatch → execute pipeline
instead of the warm fragment cache.

``--quick`` runs a smaller smoke configuration for CI; ``--json PATH``
emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_failover.py
    PYTHONPATH=src python benchmarks/bench_failover.py \
        --quick --json BENCH_failover.json

Structural invariants (identical rows, failover recorded, zero
unauthorized re-dispatches, the victim never chosen again) always gate
the exit status.  The latency blow-up bar gates only the full run:
under ``--quick`` it is report-only, so contended CI runners cannot
flake unrelated merges on timing noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.visibility import verify_assignment
from repro.distributed import FaultInjector
from repro.engine.table import Table
from repro.exceptions import UnauthorizedError
from repro.paper_example import build_running_example
from repro.service import QueryService

#: Post-kill queries may cost at most this multiple of the fault-free
#: per-query mean (full mode only; --quick reports instead of gating).
BLOWUP_BAR = 5.0

SQL_TEMPLATE = ("select T, avg(P) from Hosp join Ins on S=C "
                "where D='stroke' group by T having avg(P)>{threshold}")


def query_stream(queries: int):
    """Distinct SQL per round, so no round rides the fragment cache."""
    return [SQL_TEMPLATE.format(threshold=100 + i)
            for i in range(queries)]


def build_service(rows: int, latency: float,
                  injector: FaultInjector | None = None) -> QueryService:
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 7.0 * (i % 30)) for i in range(rows)
    ])
    latencies = {name: (0.0 if name == "U" else latency)
                 for name in example.subject_names}
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U", latency_seconds=latencies, fault_injector=injector,
    )


def pick_victim(outcome, owners, user: str) -> str:
    """A compute subject the fault-free planner actually chose."""
    immortal = set(owners.values()) | {user}
    assigned = sorted(
        subject
        for subject in set(outcome.assignment.extended.assignment.values())
        if subject not in immortal)
    if not assigned:
        raise SystemExit("planner assigned only authorities/user; "
                         "no killable compute subject")
    return assigned[0]


def run_stream(service: QueryService, stream, kill_after: int | None,
               injector: FaultInjector | None, victim: str | None):
    """Run the stream, killing ``victim`` after ``kill_after`` queries."""
    outcomes = []
    timings = []
    for index, sql in enumerate(stream):
        if kill_after is not None and index == kill_after:
            injector.kill(victim)
        started = time.perf_counter()
        outcomes.append(service.execute(sql))
        timings.append(time.perf_counter() - started)
    return outcomes, timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration (CI)")
    parser.add_argument("--json", type=Path, default=None,
                        help="emit measurements to this JSON file")
    arguments = parser.parse_args(argv)

    if arguments.quick:
        queries, kill_after, rows, latency = 8, 3, 40, 0.002
    else:
        queries, kill_after, rows, latency = 24, 8, 80, 0.005

    stream = query_stream(queries)

    clean_service = build_service(rows, latency)
    clean_outcomes, clean_timings = run_stream(
        clean_service, stream, None, None, None)
    victim = pick_victim(clean_outcomes[0], clean_service.owners,
                         clean_service.user)

    injector = FaultInjector(seed=20170601)
    faulted_service = build_service(rows, latency, injector)
    faulted_outcomes, faulted_timings = run_stream(
        faulted_service, stream, kill_after, injector, victim)

    # ------------------------------------------------------------------
    # Audit every recovery the faulted run performed.
    # ------------------------------------------------------------------
    mismatched_rows = []
    unauthorized = []
    victim_reused = []
    failovers_total = 0
    breaker_trips = 0
    retries = 0
    affected_queries = 0
    for index, (clean, faulted) in enumerate(
            zip(clean_outcomes, faulted_outcomes)):
        if sorted(clean.result.rows) != sorted(faulted.result.rows):
            mismatched_rows.append(index)
        failovers_total += len(faulted.failovers)
        breaker_trips += faulted.breaker_trips
        retries += faulted.retries
        affected_queries += int(faulted.failed_over)
        for event in faulted.failovers:
            if event.replacement == victim:
                victim_reused.append(index)
            try:
                verify_assignment(faulted.assignment.extended.plan,
                                  faulted_service.policy,
                                  event.repaired_assignment)
            except UnauthorizedError:
                unauthorized.append(
                    (index, event.fragment_id, event.replacement))

    post_kill = slice(kill_after, queries)
    clean_mean = sum(clean_timings[post_kill]) / (queries - kill_after)
    faulted_mean = sum(faulted_timings[post_kill]) / (queries - kill_after)
    blowup = faulted_mean / clean_mean if clean_mean else float("inf")

    health = faulted_service.health_info()
    print(f"failover workload: {queries} queries, provider {victim!r} "
          f"killed before query {kill_after}")
    print(f"  fault-free: {sum(clean_timings) * 1000:8.1f} ms total, "
          f"{clean_mean * 1000:.1f} ms/query post-kill window")
    print(f"  faulted:    {sum(faulted_timings) * 1000:8.1f} ms total, "
          f"{faulted_mean * 1000:.1f} ms/query post-kill window")
    print(f"  blow-up: {blowup:.2f}x (bar {BLOWUP_BAR}x); "
          f"{failovers_total} failovers across {affected_queries} "
          f"queries, {breaker_trips} breaker trips, {retries} retries")
    print(f"  victim health: state={health[victim]['state']}, "
          f"dead={health[victim]['dead']}")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "queries": queries,
            "kill_after": kill_after,
            "victim": victim,
            "failovers_total": failovers_total,
            "affected_queries": affected_queries,
            "breaker_trips": breaker_trips,
            "retries": retries,
            "unauthorized_failovers": len(unauthorized),
            "clean_mean_seconds": clean_mean,
            "faulted_mean_seconds": faulted_mean,
            "blowup": blowup,
            "victim_health": health[victim],
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    failures = []
    if mismatched_rows:
        failures.append(
            f"faulted run returned different rows for queries "
            f"{mismatched_rows}")
    if not failovers_total and not affected_queries:
        failures.append("provider death triggered no recorded failover")
    if unauthorized:
        failures.append(
            f"unauthorized re-dispatch targets: {unauthorized}")
    if victim_reused:
        failures.append(
            f"dead victim chosen as replacement in queries {victim_reused}")
    if not health[victim]["dead"]:
        failures.append("health registry never marked the victim dead")
    if any(outcome.failed_over
           for outcome in faulted_outcomes[:kill_after]):
        failures.append("failover recorded before the kill")
    if blowup > BLOWUP_BAR:
        miss = (f"post-kill latency blow-up {blowup:.2f}x "
                f"> bar {BLOWUP_BAR}x")
        if arguments.quick:
            # Timing is report-only in smoke mode: shared CI runners are
            # too contended to gate merges on wall-clock bars.
            print(f"WARN (report-only under --quick): {miss}",
                  file=sys.stderr)
        else:
            failures.append(miss)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Figures 3–8 — the paper's worked example, regenerated and timed.

Asserts the exact values the paper prints: the Figure 3 profiles, the
Figure 4 views, the Figure 6 candidate sets, the Figure 7 encrypted
attributes and key distributions, and the Figure 8 dispatch structure.
"""

from __future__ import annotations

from repro.experiments.running_example import run_running_example


def test_running_example_pipeline(benchmark, capsys):
    """Time the full figures 3–8 regeneration and validate the values."""
    results = benchmark.pedantic(run_running_example, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(results.describe())

    # Figure 6 candidate sets, exactly as printed in the paper.
    assert results.figure6_candidates == {
        "σ(D='stroke')": "HIUXYZ",
        "⋈(S=C)": "HUXYZ",
        "γ(T, avg(P))": "HUXYZ",
        "σ(avg(P)>100)": "UY",
    }
    # Figure 7(a): S, C, P encrypted; kSC → H,I; kP → I,Y.
    assert results.figure7a.encrypted_attributes == frozenset("SCP")
    holders_7a = {
        key.name: "".join(sorted(results.keys7a.holders(key)))
        for key in results.keys7a.keys
    }
    assert holders_7a == {"kCS": "HI", "kP": "IY"}
    # Figure 7(b): D, P encrypted; kD → H; kP → I,Y.
    assert results.figure7b.encrypted_attributes == frozenset("DP")
    holders_7b = {
        key.name: "".join(sorted(results.keys7b.holders(key)))
        for key in results.keys7b.keys
    }
    assert holders_7b == {"kD": "H", "kP": "IY"}
    # Figure 8: four sub-queries, called Y → X → (H, I).
    call_order = [f.subject for f in results.figure8.in_call_order()]
    assert call_order == ["Y", "X", "H", "I"]

#!/usr/bin/env python
"""Hash-partitioned join vs the seed nested-loop path.

Times a 2k×2k theta-join with one equality conjunct plus one residual
predicate (``R.a = S.k AND R.b < S.w``), once through the seed's
``σ_C(L×R)`` nested-loop reference strategy and once through the batched
hash-partitioned path, verifying identical results.  The ISSUE-1
acceptance bar is a ≥5× speedup.  Also reports the effect of the
plan-subtree result cache on a repeated execution.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_engine_joins.py          # full
    PYTHONPATH=src python benchmarks/bench_engine_joins.py --quick  # smoke

Exits non-zero when the speedup bar is missed or results diverge.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.operators import BaseRelationNode, Join
from repro.core.predicates import (
    AttributeComparisonPredicate,
    ComparisonOp,
    Conjunction,
)
from repro.core.schema import Relation
from repro.engine import Executor, Table

SPEEDUP_BAR = 5.0

R = Relation("R", ["a", "b"])
S = Relation("S", ["k", "w"])


def build_catalog(rows: int, seed: int = 20170801) -> dict[str, Table]:
    """Two ``rows``-tuple operands with ~4 matches per join key."""
    rng = random.Random(seed)
    domain = max(1, rows // 4)
    left = Table("R", ("a", "b"), [
        (rng.randrange(domain), rng.randrange(1000)) for _ in range(rows)
    ])
    right = Table("S", ("k", "w"), [
        (rng.randrange(domain), rng.randrange(1000)) for _ in range(rows)
    ])
    return {"R": left, "S": right}


def theta_join_node() -> Join:
    return Join(
        BaseRelationNode(R), BaseRelationNode(S),
        Conjunction([
            AttributeComparisonPredicate("a", ComparisonOp.EQ, "k"),
            AttributeComparisonPredicate("b", ComparisonOp.LT, "w"),
        ]),
    )


def timed_run(catalog: dict[str, Table], node: Join, strategy: str,
              repeat: int) -> tuple[float, Table]:
    """Best-of-``repeat`` wall time (robust against scheduler noise)."""
    # cache_size=0: time the operator itself, not the subtree cache.
    executor = Executor(catalog, join_strategy=strategy, cache_size=0)
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = executor.execute(node)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="hash-partitioned vs nested-loop theta-join")
    parser.add_argument("--rows", type=int, default=2000,
                        help="rows per operand (default 2000)")
    parser.add_argument("--quick", action="store_true",
                        help="500-row smoke run for CI")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing runs per strategy, best taken")
    args = parser.parse_args(argv)
    rows = 500 if args.quick else args.rows

    catalog = build_catalog(rows)
    node = theta_join_node()

    print(f"theta-join R({rows}) ⋈[a=k ∧ b<w] S({rows})")
    nested_time, nested_result = timed_run(catalog, node, "nested-loop",
                                           args.repeat)
    print(f"  nested-loop (seed path):  {nested_time * 1000:10.1f} ms "
          f"({rows * rows:,} pairs scanned)")
    hash_time, hash_result = timed_run(catalog, node, "hash", args.repeat)
    print(f"  hash-partitioned:         {hash_time * 1000:10.1f} ms "
          f"({len(hash_result):,} result rows)")

    if not hash_result.same_content(nested_result):
        print("FAIL: strategies disagree on the join result")
        return 1

    speedup = nested_time / hash_time if hash_time > 0 else float("inf")
    print(f"  speedup:                  {speedup:10.1f}×  "
          f"(bar: ≥{SPEEDUP_BAR:.0f}×)")

    # Subtree cache: the same plan re-executed on one executor is free.
    executor = Executor(catalog)
    executor.execute(node)
    start = time.perf_counter()
    executor.execute(node)
    cached_time = time.perf_counter() - start
    info = executor.cache_info()
    print(f"  re-run via subtree cache: {cached_time * 1000:10.3f} ms "
          f"(hits={info['hits']})")

    if speedup < SPEEDUP_BAR:
        print(f"FAIL: speedup {speedup:.1f}× below the "
              f"{SPEEDUP_BAR:.0f}× bar")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Scalability of the core algorithms on synthetic plans.

Not a paper figure, but the reproduction's own sanity check that the
candidate computation (Definition 5.3), the minimal extension
(Definition 5.4), and profile propagation scale as expected: all are
linear passes over the plan, so doubling the plan should roughly double
the time.
"""

from __future__ import annotations

import pytest

from repro.core.authorization import ANY, Authorization, Policy
from repro.core.candidates import compute_candidates
from repro.core.extension import minimally_extend
from repro.core.operators import BaseRelationNode, Join, Selection
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import Relation, Schema


def build_chain(relations: int) -> tuple[QueryPlan, Policy, list[str]]:
    """A left-deep join chain over ``relations`` two-attribute relations."""
    schema = Schema()
    policy = Policy(schema)
    subjects = ["U", "P1", "P2"]
    nodes = []
    for index in range(relations):
        relation = schema.add(Relation(
            f"R{index}", [f"a{index}", f"b{index}"], cardinality=1000,
        ))
        policy.grant(Authorization(
            relation, relation.attribute_names, (), "U"
        ))
        policy.grant(Authorization(
            relation, (), relation.attribute_names, ANY
        ))
        leaf = BaseRelationNode(relation)
        nodes.append(Selection(
            leaf,
            AttributeValuePredicate(f"b{index}", ComparisonOp.EQ, index),
        ))
    current = nodes[0]
    for index in range(1, relations):
        current = Join(current, nodes[index],
                       equals(f"a{index - 1}", f"a{index}"))
    return QueryPlan(current), policy, subjects


@pytest.mark.parametrize("relations", [4, 8, 16, 32])
def test_candidate_computation_scales(benchmark, relations):
    """Candidate sets over growing join chains."""
    plan, policy, subjects = build_chain(relations)
    candidates = benchmark(compute_candidates, plan, policy, subjects)
    for node in plan.operations():
        assert candidates[node]  # 'any' grants keep everyone eligible


@pytest.mark.parametrize("relations", [4, 8, 16, 32])
def test_minimal_extension_scales(benchmark, relations):
    """Minimal extension over growing join chains."""
    plan, policy, subjects = build_chain(relations)
    assignment = {node: "P1" for node in plan.operations()}

    def extend():
        return minimally_extend(plan, policy, assignment, deliver_to="U")

    extended = benchmark(extend)
    assert extended.encrypted_attributes


@pytest.mark.parametrize("relations", [8, 32])
def test_profile_computation_scales(benchmark, relations):
    """Profile propagation over growing join chains."""
    plan, _, _ = build_chain(relations)

    def profiles():
        return QueryPlan(plan.root).profiles()

    result = benchmark(profiles)
    assert len(result) == len(plan.nodes())

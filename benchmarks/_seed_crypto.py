"""The seed's crypto path, kept verbatim for fast-vs-reference bars.

These are the pre-batch-kernel implementations from the seed commit
(``git show 50b4a52``): per-call HMAC key scheduling, a ``bytearray``-
append keystream, per-byte generator XOR, per-cell cipher construction
in the Encrypt/Decrypt operators, double-``pow`` Paillier encryption and
``λ/µ`` decryption, and no memoization anywhere.  The benchmarks run
them side by side with :mod:`repro.crypto` to measure the speedup and to
assert the deterministic outputs stayed bit-identical.

Not imported by the library — benchmark support only.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from repro.core.requirements import EncryptionScheme
from repro.crypto import primitives
from repro.crypto.keymanager import KeyMaterial
from repro.crypto.paillier import PaillierCiphertext, PaillierPublicKey
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import CryptoError, ExecutionError

_BLOCK = 32
_IV_LEN = 16
_TAG_LEN = 12
_ENC_DOMAIN = b"enc"
_MAC_DOMAIN = b"mac"
_SIV_DOMAIN = b"siv"


# ---------------------------------------------------------------------------
# Seed primitives (per-call HMAC scheduling, bytearray keystream, per-byte
# XOR) — verbatim from the seed's ``repro/crypto/primitives.py``.
# ---------------------------------------------------------------------------
def seed_prf(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


def seed_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += seed_prf(key, iv + struct.pack(">Q", counter))
        counter += 1
    return bytes(out[:length])


def seed_xor_bytes(left: bytes, right: bytes) -> bytes:
    if len(left) != len(right):
        raise CryptoError("xor operands must have equal length")
    return bytes(a ^ b for a, b in zip(left, right))


# ---------------------------------------------------------------------------
# Seed symmetric ciphers — subkeys derived inside every call, no memo.
# ---------------------------------------------------------------------------
class SeedStreamCipher:
    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("symmetric keys must be at least 16 bytes")
        self._key = key

    def _seal(self, iv: bytes, encoded: bytes) -> bytes:
        body = seed_xor_bytes(
            encoded,
            seed_keystream(
                seed_prf(self._key, _ENC_DOMAIN), iv, len(encoded)
            ),
        )
        tag = seed_prf(
            seed_prf(self._key, _MAC_DOMAIN), iv + body
        )[:_TAG_LEN]
        return iv + body + tag

    def _open(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _IV_LEN + _TAG_LEN:
            raise CryptoError("ciphertext too short")
        iv = ciphertext[:_IV_LEN]
        body = ciphertext[_IV_LEN:-_TAG_LEN]
        tag = ciphertext[-_TAG_LEN:]
        expected = seed_prf(
            seed_prf(self._key, _MAC_DOMAIN), iv + body
        )[:_TAG_LEN]
        if not primitives.constant_time_equal(tag, expected):
            raise CryptoError("ciphertext authentication failed (wrong key?)")
        return seed_xor_bytes(
            body,
            seed_keystream(
                seed_prf(self._key, _ENC_DOMAIN), iv, len(body)
            ),
        )

    def decrypt(self, ciphertext: bytes) -> object:
        return primitives.decode_value(self._open(ciphertext))


class SeedRandomizedCipher(SeedStreamCipher):
    def encrypt(self, value: object) -> bytes:
        return self._seal(
            primitives.random_bytes(_IV_LEN), primitives.encode_value(value)
        )


class SeedDeterministicCipher(SeedStreamCipher):
    def encrypt(self, value: object) -> bytes:
        encoded = primitives.encode_value(value)
        iv = seed_prf(
            seed_prf(self._key, _SIV_DOMAIN), encoded
        )[:_IV_LEN]
        return self._seal(iv, encoded)


# ---------------------------------------------------------------------------
# Seed OPE — the same recursive walk as ``repro.crypto.ope`` but with no
# pivot/value memos and the per-call HMAC scheduling of seed_prf.
# ---------------------------------------------------------------------------
from repro.crypto.ope import (  # noqa: E402  (domain constants shared)
    DOMAIN_MAX,
    DOMAIN_MIN,
    RANGE_BITS,
    encode_orderable,
)


class SeedOpeCipher:
    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("OPE keys must be at least 16 bytes")
        self._key = seed_prf(key, b"ope")

    def encrypt(self, value: object) -> int:
        return self._encrypt_int(encode_orderable(value))

    def _pivot(self, dlo: int, dhi: int, rlo: int, rhi: int) -> tuple[int, int]:
        dmid = (dlo + dhi) // 2
        span = rhi - rlo
        quarter = span // 4
        seed = seed_prf(
            self._key, struct.pack(">qqQQ", dlo, dhi, rlo, rhi)
        )
        offset = int.from_bytes(seed[:8], "big") % max(quarter * 2, 1)
        rmid = rlo + quarter + offset
        left_need = dmid - dlo + 1
        right_need = dhi - dmid
        rmid = max(rlo + left_need - 1, min(rmid, rhi - right_need))
        return dmid, rmid

    def _encrypt_int(self, value: int) -> int:
        if not DOMAIN_MIN <= value <= DOMAIN_MAX:
            raise CryptoError(f"value {value} outside the OPE domain")
        dlo, dhi = DOMAIN_MIN, DOMAIN_MAX
        rlo, rhi = 0, 2 ** RANGE_BITS - 1
        while dlo < dhi:
            dmid, rmid = self._pivot(dlo, dhi, rlo, rhi)
            if value <= dmid:
                dhi, rhi = dmid, rmid
            else:
                dlo, rlo = dmid + 1, rmid + 1
        return rlo


# ---------------------------------------------------------------------------
# Seed Paillier paths — double-pow encryption, λ/µ decryption.  These call
# into the library's key objects (``encrypt_reference`` /
# ``decrypt_reference`` preserve the seed formulas bit-identically).
# ---------------------------------------------------------------------------
def seed_paillier_encrypt(public: PaillierPublicKey,
                          value: int | float) -> PaillierCiphertext:
    return public.encrypt_reference(value)


# ---------------------------------------------------------------------------
# Seed codec + executor: per-cell cipher construction and dispatch, exactly
# the seed's ``encrypt_value``/``decrypt_value`` + ``map_columns`` closures.
# ---------------------------------------------------------------------------
def seed_encrypt_value(material: KeyMaterial, value: object) -> EncryptedValue:
    if isinstance(value, (EncryptedValue, EncryptedAggregate)):
        raise ExecutionError("value is already encrypted")
    scheme = material.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_public is None:
            raise ExecutionError(f"key {material.name} lacks Paillier parts")
        if not isinstance(value, (int, float)):
            raise ExecutionError("Paillier encrypts numeric values only")
        return EncryptedValue(
            key_name=material.name, scheme=scheme,
            token=seed_paillier_encrypt(material.paillier_public, value),
        )
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        token: object = SeedDeterministicCipher(
            material.symmetric).encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.RANDOMIZED:
        token = SeedRandomizedCipher(material.symmetric).encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.OPE:
        token = SeedOpeCipher(material.symmetric).encrypt(value)
        recovery = SeedRandomizedCipher(
            seed_prf(material.symmetric, b"recovery")
        ).encrypt(value)
        return EncryptedValue(material.name, scheme, token, recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


def seed_decrypt_value(material: KeyMaterial, value: object) -> object:
    if isinstance(value, EncryptedAggregate):
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
        total = material.paillier_private.decrypt_reference(
            value.ciphertext_sum)
        if value.is_average:
            return total / value.count
        return total
    if not isinstance(value, EncryptedValue):
        raise ExecutionError("value is not encrypted")
    if value.key_name != material.name:
        raise ExecutionError(
            f"value encrypted under {value.key_name}, not {material.name}"
        )
    scheme = value.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
        assert isinstance(value.token, PaillierCiphertext)
        return material.paillier_private.decrypt_reference(value.token)
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        assert isinstance(value.token, bytes)
        return SeedDeterministicCipher(material.symmetric).decrypt(value.token)
    if scheme is EncryptionScheme.RANDOMIZED:
        assert isinstance(value.token, bytes)
        return SeedRandomizedCipher(material.symmetric).decrypt(value.token)
    if scheme is EncryptionScheme.OPE:
        if value.recovery is None:
            raise ExecutionError("OPE value lacks its recovery ciphertext")
        return SeedRandomizedCipher(
            seed_prf(material.symmetric, b"recovery")
        ).decrypt(value.recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


class SeedCryptoExecutor(Executor):
    """An :class:`Executor` whose Encrypt/Decrypt run the seed crypto path.

    Only the two crypto operators are overridden (per-cell
    ``map_columns`` closures over the seed codec); the relational
    operators stay the library's, so the fast-vs-seed delta isolates the
    crypto substrate.
    """

    def _encrypt(self, node, child: Table) -> Table:
        keystore = self._require_keystore()
        transforms = {}
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            transforms[attribute] = (
                lambda v, m=material: None if v is None
                else seed_encrypt_value(m, v)
            )
        return child.map_columns(transforms).rename("enc")

    def _decrypt(self, node, child: Table) -> Table:
        keystore = self._require_keystore()
        transforms = {}
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            transforms[attribute] = (
                lambda v, m=material: None if v is None
                else seed_decrypt_value(m, v)
            )
        return child.map_columns(transforms).rename("dec")

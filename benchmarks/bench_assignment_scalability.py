#!/usr/bin/env python
"""Many-provider assignment planner vs the reference search.

Builds a 32-operation join chain (selection per leaf, left-deep equality
joins, a SUM group-by on top) over a 64-provider market with mixed
plaintext/encrypted authorizations, then times the full ``assign``
pipeline three ways:

* ``search_impl="fast"`` — the decomposed, memoized DP (default path);
* ``search_impl="reference"`` — the direct per-pair edge-cost DP the
  fast path was derived from (the pre-refactor code path);
* the policy-versioned :class:`~repro.core.plancache.AssignmentCache`
  repeat-query path (same plan, same policy version → full-result hit).

The ISSUE-2 acceptance bars are a ≥10× planner speedup over the
reference at 64 providers × 32 operations, cost-identical (±0.1%)
assignments, and a ≥100× cached repeat-query speedup.  ``--quick`` runs
a smaller smoke configuration with proportionally relaxed bars for CI.
``--json PATH`` emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_assignment_scalability.py
    PYTHONPATH=src python benchmarks/bench_assignment_scalability.py \
        --quick --json BENCH_assignment.json

Exits non-zero when a bar is missed or the implementations disagree.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.assignment import assign
from repro.core.authorization import ANY, Authorization, Policy
from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Join,
    Selection,
)
from repro.core.plan import QueryPlan
from repro.core.plancache import AssignmentCache
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import Relation, Schema
from repro.cost.pricing import PriceList

SPEEDUP_BAR = 10.0
CACHE_BAR = 100.0
COST_TOLERANCE = 1e-3

QUICK_SPEEDUP_BAR = 2.0
QUICK_CACHE_BAR = 20.0


def build_scenario(relations: int, providers: int):
    """A join chain over ``relations`` with a ``providers``-wide market.

    Every provider may see everything encrypted (an ``any`` grant); every
    third-ish provider additionally gets plaintext on a rotating subset
    of relations, so candidate sets, sender masks, and opportunistic
    decryption vary across the market (the diversity the decomposed DP
    must price correctly).
    """
    schema = Schema()
    policy = Policy(schema)
    provider_names = [f"P{index:02d}" for index in range(providers)]
    leaves = []
    for index in range(relations):
        relation = schema.add(Relation(
            f"R{index}", [f"a{index}", f"b{index}"], cardinality=10_000,
        ))
        policy.grant(Authorization(
            relation, relation.attribute_names, (), "U"))
        policy.grant(Authorization(
            relation, (), relation.attribute_names, ANY))
        for position, provider in enumerate(provider_names):
            if (index + position) % 3 == 0 and position % 2 == 0:
                policy.grant(Authorization(
                    relation, relation.attribute_names, (), provider))
        leaves.append(Selection(
            BaseRelationNode(relation),
            AttributeValuePredicate(f"b{index}", ComparisonOp.EQ, index),
        ))
    current = leaves[0]
    for index in range(1, relations):
        current = Join(current, leaves[index],
                       equals(f"a{index - 1}", f"a{index}"))
    current = GroupBy(current, ["a0"], Aggregate(
        AggregateFunction.SUM, f"b{relations - 1}", alias="total"))
    plan = QueryPlan(current)
    subjects = ["U"] + provider_names
    prices = PriceList.paper_defaults(
        providers=provider_names, authorities=[], user="U",
        provider_spread=0.02,
    )
    return plan, policy, subjects, prices


def timed_assign(repeat: int, **kwargs) -> tuple[float, object]:
    """Best-of-``repeat`` wall time of one ``assign`` configuration."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = assign(**kwargs)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assignment planner scalability: fast vs reference DP")
    parser.add_argument("--relations", type=int, default=16,
                        help="relations in the join chain (default 16 → "
                             "32 operations)")
    parser.add_argument("--providers", type=int, default=64,
                        help="provider subjects (default 64)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing runs per configuration, best taken")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--json", type=Path, default=None,
                        help="write measurements to this JSON file")
    args = parser.parse_args(argv)

    relations = 8 if args.quick else args.relations
    providers = 32 if args.quick else args.providers
    speedup_bar = QUICK_SPEEDUP_BAR if args.quick else SPEEDUP_BAR
    cache_bar = QUICK_CACHE_BAR if args.quick else CACHE_BAR

    plan, policy, subjects, prices = build_scenario(relations, providers)
    operations = len(plan.operations())
    print(f"assignment planner: {operations} operations × "
          f"{providers} providers")

    base = dict(plan=plan, policy=policy, subjects=subjects, prices=prices,
                user="U")
    fast_time, fast = timed_assign(args.repeat, **base)
    print(f"  fast DP (decomposed):     {fast_time * 1000:10.1f} ms")
    reference_time, reference = timed_assign(
        max(1, args.repeat - 2), search_impl="reference", **base)
    print(f"  reference DP (per-pair):  {reference_time * 1000:10.1f} ms")

    drift = abs(fast.cost.total_usd - reference.cost.total_usd) \
        / max(reference.cost.total_usd, 1e-18)
    speedup = reference_time / fast_time if fast_time > 0 else float("inf")
    print(f"  speedup:                  {speedup:10.1f}×  "
          f"(bar: ≥{speedup_bar:.0f}×)")
    print(f"  cost drift:               {drift:10.2e}  "
          f"(bar: ≤{COST_TOLERANCE:.0e})")

    cache = AssignmentCache()
    cold_time, _ = timed_assign(1, cache=cache, **base)
    hit_time, cached = timed_assign(max(3, args.repeat), cache=cache, **base)
    cache_speedup = cold_time / hit_time if hit_time > 0 else float("inf")
    print(f"  cold (cache miss):        {cold_time * 1000:10.2f} ms")
    print(f"  repeat (cache hit):       {hit_time * 1000:10.4f} ms  "
          f"{cache_speedup:.0f}× (bar: ≥{cache_bar:.0f}×)")

    failures = []
    if drift > COST_TOLERANCE:
        failures.append(
            f"fast/reference cost drift {drift:.2e} above "
            f"{COST_TOLERANCE:.0e}")
    if cached.cost.total_usd != fast.cost.total_usd:
        failures.append("cached result cost diverges from the cold run")
    if speedup < speedup_bar:
        failures.append(
            f"planner speedup {speedup:.1f}× below the {speedup_bar:.0f}× "
            f"bar")
    if cache_speedup < cache_bar:
        failures.append(
            f"cache speedup {cache_speedup:.0f}× below the "
            f"{cache_bar:.0f}× bar")

    if args.json is not None:
        args.json.write_text(json.dumps({
            "providers": providers,
            "plan_operations": operations,
            "plan_nodes": len(plan.nodes()),
            "quick": args.quick,
            "fast_ms": fast_time * 1000,
            "reference_ms": reference_time * 1000,
            "speedup_vs_reference": speedup,
            "cost_drift": drift,
            "cache_cold_ms": cold_time * 1000,
            "cache_hit_ms": hit_time * 1000,
            "cache_speedup": cache_speedup,
            "ok": not failures,
        }, indent=2) + "\n")
        print(f"  wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Deadlines, cancellation, and shedding: the ISSUE-10 acceptance bars.

Three gated phases over the paper's running example:

* **Shed before planning** — queries whose deadline lapses while they
  sit in the gateway queue are settled at dequeue, and queries the
  latency predictor expects to blow their budget are refused at
  submit.  Both are proven by counting the service's ``execute``
  calls: a shed query must never reach planning.
* **Bounded abort latency** — under an injected clock, a query whose
  deadline expires mid-execution unwinds within one simulated
  provider call of the deadline (the cooperative-checkpoint bound);
  on full runs a real-clock mid-flight ``cancel()`` must return
  within one provider latency plus scheduling slack.
* **No poisoned caches** — a query cancelled at *every* sampled
  checkpoint leaves the service's caches coherent: re-running the
  same query on the same (aborted) service is bit-identical to a
  clean run on a fresh service.

``--quick`` runs a smaller smoke configuration for CI; ``--json PATH``
emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_deadlines.py
    PYTHONPATH=src python benchmarks/bench_deadlines.py \
        --quick --json BENCH_deadlines.json

The structural invariants (shed-before-planning, fake-clock abort
bound, cache coherence) always gate the exit status.  The real-clock
cancel-to-return bar gates only the full run: under ``--quick`` it is
report-only, so contended CI runners cannot flake unrelated merges on
timing noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.budget import CancellationToken, QueryBudget
from repro.engine.table import Table
from repro.exceptions import (
    DeadlineExceededError,
    QueryCancelledError,
    SheddedError,
)
from repro.gateway import Gateway, TenantConfig
from repro.paper_example import build_running_example
from repro.service import QueryService

SQL = ("select T, avg(P) from Hosp join Ins on S=C "
       "where D='stroke' group by T having avg(P)>100")

#: A second query text so the predictive-shed probe has its own EWMA.
TEACH_SQL = SQL.replace(">100", ">150")

#: The query the dequeue-shed phase blocks behind (distinct text so the
#: execute-call counter can attribute planning per phase).
BLOCKER_SQL = SQL.replace(">100", ">200")

#: Simulated provider latency for the fake-clock abort-latency phase.
FAKE_LATENCY_SECONDS = 0.01

#: Deadline for the fake-clock abort-latency phase: dies mid-run.
FAKE_DEADLINE_SECONDS = 0.025

#: Real provider latency and mid-flight cancel point for the
#: cancel-to-return measurement.
REAL_LATENCY_SECONDS = 0.05
CANCEL_AFTER_SECONDS = 0.02

#: Cancel-to-return bound on full runs: one provider call plus
#: generous scheduling slack.
CANCEL_RETURN_BOUND_SECONDS = REAL_LATENCY_SECONDS + 0.25


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class CountingToken(CancellationToken):
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.checks = 0

    def check(self, where: str) -> None:
        self.checks += 1
        super().check(where)


class CancelAtToken(CountingToken):
    def __init__(self, cancel_at: int, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cancel_at = cancel_at

    def check(self, where: str) -> None:
        if self.checks + 1 >= self.cancel_at:
            self.cancel(f"chaos cancel at checkpoint #{self.cancel_at}")
        super().check(where)


def build_service(rows: int, **kwargs) -> QueryService:
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i % 50, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(rows)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 7.0 * (i % 30)) for i in range(rows)
    ])
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U", **kwargs,
    )


def rows_key(table: Table):
    return sorted(map(repr, table.rows))


# ----------------------------------------------------------------------
# Phase 1 — shed before planning (gateway, counted service)
# ----------------------------------------------------------------------
def run_shed_phase(rows: int, doomed_count: int,
                   failures: list[str]) -> dict:
    clock = FakeClock()
    service = build_service(rows)
    service_calls: dict[str, int] = {}
    calls_lock = threading.Lock()
    blocker_gate = threading.Event()
    original_execute = service.execute

    def counted_execute(sql, user=None, **kwargs):
        with calls_lock:
            service_calls[sql] = service_calls.get(sql, 0) + 1
        if sql == BLOCKER_SQL:
            assert blocker_gate.wait(timeout=60)
        return original_execute(sql, user=user, **kwargs)

    service.execute = counted_execute
    gateway = Gateway(service, [TenantConfig("t", user="U")],
                      max_inflight=1, clock=clock)
    try:
        # Teach the predictor what TEACH_SQL costs (real wall time).
        gateway.execute("t", TEACH_SQL)

        # Dequeue shedding: park the worker behind the blocker, queue
        # budgeted queries, lapse their deadline while they wait.
        blocker = gateway.submit("t", BLOCKER_SQL)
        doomed = [gateway.submit("t", SQL,
                                 budget=QueryBudget(deadline_seconds=5.0))
                  for _ in range(doomed_count)]
        clock.sleep(60.0)  # every queued deadline lapses
        blocker_gate.set()
        blocker.result(timeout=60)
        dequeue_shed = 0
        for future in doomed:
            try:
                future.result(timeout=60)
                failures.append("queued-but-expired query executed "
                                "instead of being shed at dequeue")
            except DeadlineExceededError as error:
                dequeue_shed += 1
                if error.where != "gateway:dequeue":
                    failures.append(
                        f"expired queue entry unwound from "
                        f"{error.where!r}, expected 'gateway:dequeue'")

        # Predictive shedding: the taught EWMA exceeds a microscopic
        # deadline, so the submit itself must refuse the query.
        predicted_shed = False
        try:
            gateway.submit("t", TEACH_SQL,
                           budget=QueryBudget(deadline_seconds=1e-7))
            failures.append("predicted-to-fail query was admitted")
        except SheddedError as error:
            predicted_shed = True
            if error.reason != "predicted_deadline":
                failures.append(
                    f"shed reason {error.reason!r}, expected "
                    f"'predicted_deadline'")
    finally:
        blocker_gate.set()
        gateway.close()

    shed_planned = service_calls.get(SQL, 0)
    if shed_planned:
        failures.append(
            f"{shed_planned} shed queries reached the service — "
            f"shedding must happen before planning")
    if dequeue_shed != doomed_count:
        failures.append(
            f"only {dequeue_shed}/{doomed_count} expired queue "
            f"entries were shed at dequeue")
    return {
        "doomed_queued": doomed_count,
        "dequeue_shed": dequeue_shed,
        "predictive_shed": predicted_shed,
        "shed_planning_calls": shed_planned,
    }


# ----------------------------------------------------------------------
# Phase 2 — bounded abort latency
# ----------------------------------------------------------------------
def run_abort_latency_phase(rows: int, quick: bool,
                            failures: list[str]) -> dict:
    # Fake clock: the deadline may overshoot by at most one simulated
    # provider call before a checkpoint notices.
    clock = FakeClock()
    service = build_service(rows, clock=clock, sleeper=clock.sleep,
                            latency_seconds=FAKE_LATENCY_SECONDS)
    overshoot = None
    try:
        service.execute(
            SQL, budget=QueryBudget(deadline_seconds=FAKE_DEADLINE_SECONDS))
        failures.append("fake-clock deadline never fired")
    except DeadlineExceededError as error:
        overshoot = error.elapsed_seconds - FAKE_DEADLINE_SECONDS
        if overshoot > FAKE_LATENCY_SECONDS + 1e-9:
            failures.append(
                f"abort latency {overshoot * 1000:.2f} ms exceeds one "
                f"provider call ({FAKE_LATENCY_SECONDS * 1000:.0f} ms)")

    # Real clock: cancel mid-flight, measure cancel-to-return.
    real = build_service(rows, latency_seconds=REAL_LATENCY_SECONDS)
    token = CancellationToken()
    returned: list[float] = []
    caught: list[BaseException] = []

    def run_query():
        try:
            real.execute(SQL, token=token)
        except QueryCancelledError as error:
            caught.append(error)
        returned.append(time.perf_counter())

    worker = threading.Thread(target=run_query)
    worker.start()
    time.sleep(CANCEL_AFTER_SECONDS)
    cancelled_at = time.perf_counter()
    token.cancel("bench cancel")
    worker.join(timeout=60)
    cancel_to_return = (returned[0] - cancelled_at) if returned else None
    if not caught:
        failures.append("real-clock cancel never raised "
                        "QueryCancelledError")
    if cancel_to_return is None:
        failures.append("cancelled query never returned")
    elif cancel_to_return > CANCEL_RETURN_BOUND_SECONDS and not quick:
        failures.append(
            f"cancel-to-return {cancel_to_return * 1000:.1f} ms exceeds "
            f"{CANCEL_RETURN_BOUND_SECONDS * 1000:.0f} ms")
    return {
        "fake_clock_overshoot_seconds": overshoot,
        "fake_clock_bound_seconds": FAKE_LATENCY_SECONDS,
        "cancel_to_return_seconds": cancel_to_return,
        "cancel_to_return_bound_seconds": CANCEL_RETURN_BOUND_SECONDS,
        "cancel_bound_gated": not quick,
    }


# ----------------------------------------------------------------------
# Phase 3 — no poisoned caches (cancel at every sampled checkpoint)
# ----------------------------------------------------------------------
def run_cache_coherence_phase(rows: int, samples: int,
                              failures: list[str]) -> dict:
    clean = rows_key(build_service(
        rows, sleeper=lambda seconds: None).execute(SQL).result)
    probe = CountingToken()
    build_service(rows, sleeper=lambda seconds: None).execute(
        SQL, token=probe)
    total = probe.checks
    if total <= samples:
        positions = list(range(1, total + 1))
    else:
        step = total / samples
        positions = sorted({max(1, round(step * i))
                            for i in range(1, samples)}) + [total]
    coherent = 0
    for position in positions:
        service = build_service(rows, sleeper=lambda seconds: None)
        try:
            service.execute(SQL, token=CancelAtToken(position))
            failures.append(
                f"cancel at checkpoint {position}/{total} did not abort")
            continue
        except QueryCancelledError:
            pass
        rerun = service.execute(SQL)
        if rows_key(rerun.result) == clean:
            coherent += 1
        else:
            failures.append(
                f"rerun after cancel at checkpoint {position}/{total} "
                f"diverged from the clean run — a cache was poisoned")
    return {
        "total_checkpoints": total,
        "positions_tested": positions,
        "coherent_reruns": coherent,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration (CI)")
    parser.add_argument("--json", type=Path, default=None,
                        help="emit measurements to this JSON file")
    arguments = parser.parse_args(argv)

    rows, doomed, samples = (24, 3, 6) if arguments.quick else (60, 8, 12)
    failures: list[str] = []
    started = time.perf_counter()

    shed = run_shed_phase(rows, doomed, failures)
    aborts = run_abort_latency_phase(rows, arguments.quick, failures)
    caches = run_cache_coherence_phase(rows, samples, failures)
    elapsed = time.perf_counter() - started

    print(f"deadlines bench: rows={rows}, {doomed} queued-expired, "
          f"{len(caches['positions_tested'])} cancel points "
          f"({elapsed:.2f}s)")
    print(f"  shed at dequeue : {shed['dequeue_shed']}/"
          f"{shed['doomed_queued']} expired entries settled, "
          f"{shed['shed_planning_calls']} reached planning; "
          f"predictive shed at submit: {shed['predictive_shed']}")
    overshoot = aborts["fake_clock_overshoot_seconds"]
    print(f"  abort latency   : fake-clock overshoot "
          f"{(overshoot or 0) * 1000:.2f} ms "
          f"(bound {FAKE_LATENCY_SECONDS * 1000:.0f} ms = one call); "
          f"cancel-to-return "
          f"{(aborts['cancel_to_return_seconds'] or 0) * 1000:.1f} ms "
          f"(bound {CANCEL_RETURN_BOUND_SECONDS * 1000:.0f} ms, "
          f"{'gated' if aborts['cancel_bound_gated'] else 'report-only'})")
    print(f"  cache coherence : {caches['coherent_reruns']}/"
          f"{len(caches['positions_tested'])} cancel points replay "
          f"bit-identical across {caches['total_checkpoints']} "
          f"checkpoints")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "rows": rows,
            "elapsed_seconds": elapsed,
            "shed": shed,
            "abort_latency": aborts,
            "cache_coherence": caches,
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    if failures:
        print("\nFAILED bars:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall deadline bars hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation — assignment-search strategies (§7's dynamic programming).

The paper's tool uses dynamic programming to pick the cheapest candidate
assignment.  This bench compares the DP portfolio against the greedy
baseline on the TPC-H workload (expected: DP never loses, often wins),
and against exhaustive search on the running example (expected: DP finds
the optimum).

A second section benchmarks the UAPmix attribute-split ablation: the
alternating split violates uniform visibility (Definition 4.1, condition
3) across join pairs and erases the provider savings.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import assign
from repro.cost.pricing import PriceList
from repro.experiments.ablation import (
    assignment_strategy_ablation,
    mix_split_ablation,
)
from repro.paper_example import build_running_example

from conftest import BENCH_SCALE

STRATEGY_QUERIES = (3, 5, 13, 18, 21)


@pytest.mark.parametrize("query_number", STRATEGY_QUERIES)
def test_dp_vs_greedy(benchmark, scenarios, query_number, capsys):
    """DP portfolio vs greedy per-node choice under UAPenc."""
    scenario_obj = scenarios["UAPenc"]
    costs = benchmark.pedantic(
        assignment_strategy_ablation,
        args=(query_number, scenario_obj),
        kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\nQ{query_number}: dp=${costs['dp']:.6f} "
              f"greedy=${costs['greedy']:.6f}")
    assert costs["dp"] <= costs["greedy"] * 1.001


def test_dp_matches_exhaustive_on_running_example(benchmark):
    """On the 4-operation running example, DP finds the optimum."""
    example = build_running_example()
    prices = PriceList.from_subjects(example.subjects)

    def run_both():
        dp = assign(example.plan, example.policy, example.subject_names,
                    prices, user="U", owners=example.owners, strategy="dp")
        exhaustive = assign(example.plan, example.policy,
                            example.subject_names, prices, user="U",
                            owners=example.owners, strategy="exhaustive")
        return dp.cost.total_usd, exhaustive.cost.total_usd

    dp_cost, exhaustive_cost = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert dp_cost <= exhaustive_cost * 1.02


def test_mix_split_ablation(benchmark, capsys):
    """Uniform visibility in action: prefix vs alternating UAPmix split."""
    totals = benchmark.pedantic(
        mix_split_ablation,
        args=((3, 5, 10, 18),),
        kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\nUAPmix split: prefix=${totals['prefix']:.6f} "
              f"alternating=${totals['alternating']:.6f}")
    # The alternating split breaks uniform visibility over join pairs and
    # must not be cheaper than the prefix split.
    assert totals["prefix"] <= totals["alternating"] * 1.001

#!/usr/bin/env python
"""Concurrent fragment scheduling and warm service sessions.

Two measurements, matching the ISSUE-3 acceptance bars:

* **fan-out** — a balanced join tree over many single-authority
  relations, with every join delegated to a rotating pool of providers
  holding encrypted-everything authorizations.  Each non-user subject
  simulates a provider round-trip (``latency_seconds``), so the
  sequential reference schedule pays one delay per fragment while the
  concurrent scheduler overlaps independent fragments; the bar is a
  ≥3× wall-clock speedup with *identical* result rows.
* **service** — a warm :class:`~repro.service.QueryService` session
  repeating the paper's running-example query: every repeat must hit the
  policy-versioned assignment cache (and reuse keys/plans/fragments),
  making warm queries measurably cheaper than the cold first run.

``--quick`` runs a smaller smoke configuration for CI; ``--json PATH``
emits the measurements for trend tracking.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_distributed_workload.py
    PYTHONPATH=src python benchmarks/bench_distributed_workload.py \
        --quick --json BENCH_workload.json

Structural invariants (identical sequential/parallel results, warm
assignment-cache hits) always gate the exit status.  Wall-clock bars
gate only the full run: under ``--quick`` they are report-only (printed
as warnings), so contended CI runners cannot flake unrelated merges on
timing noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # allow running without PYTHONPATH set
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.authorization import (
    Authorization,
    Policy,
    Subject,
    SubjectKind,
)
from repro.core.dispatch import dispatch
from repro.core.extension import minimally_extend
from repro.core.keys import establish_keys
from repro.core.operators import BaseRelationNode, Join, PlanNode
from repro.core.plan import QueryPlan
from repro.core.predicates import equals
from repro.core.schema import Relation, Schema
from repro.crypto.keymanager import DistributedKeys
from repro.distributed import build_runtime, generate_subject_keys
from repro.engine.table import Table
from repro.paper_example import build_running_example
from repro.service import QueryService

SPEEDUP_BAR = 3.0
SERVICE_BAR = 1.5

QUICK_SPEEDUP_BAR = 2.0
QUICK_SERVICE_BAR = 1.1

RUNNING_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
               "where D='stroke' group by T having avg(P)>100")


def build_fanout_workload(leaves: int, providers: int, rows: int):
    """A balanced join tree over ``leaves`` single-authority relations.

    Every relation lives at its own authority; providers hold
    encrypted-everything authorizations, and each join level rotates
    across the provider pool so sibling joins land on different subjects
    (independent fragments the scheduler can overlap).
    """
    schema = Schema()
    policy = Policy(schema)
    subjects = [Subject("U", SubjectKind.USER)]
    owners: dict[str, str] = {}
    tables: dict[str, dict[str, Table]] = {}
    provider_names = [f"P{i}" for i in range(providers)]
    level: list[tuple[PlanNode, str]] = []  # (subtree, join-key attr)
    for index in range(leaves):
        relation = schema.add(Relation(
            f"R{index}", [f"a{index}", f"v{index}"], cardinality=rows,
        ))
        authority = f"A{index}"
        subjects.append(Subject(authority, SubjectKind.AUTHORITY))
        owners[relation.name] = authority
        tables[authority] = {relation.name: Table(
            relation.name, relation.attribute_names,
            [(row, row * index) for row in range(rows)],
        )}
        policy.grant(Authorization(
            relation, relation.attribute_names, (), "U"))
        policy.grant(Authorization(
            relation, relation.attribute_names, (), authority))
        for provider in provider_names:
            policy.grant(Authorization(
                relation, (), relation.attribute_names, provider))
        level.append((BaseRelationNode(relation), f"a{index}"))
    subjects += [Subject(p, SubjectKind.PROVIDER) for p in provider_names]

    assignment: dict[PlanNode, str] = {}
    depth = 0
    while len(level) > 1:
        depth += 1
        next_level: list[tuple[PlanNode, str]] = []
        for pair_index in range(0, len(level) - 1, 2):
            (left, left_key), (right, right_key) = \
                level[pair_index], level[pair_index + 1]
            join = Join(left, right, equals(left_key, right_key))
            assignment[join] = provider_names[
                (depth + pair_index // 2) % providers]
            next_level.append((join, left_key))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    plan = QueryPlan(level[0][0])
    return plan, policy, subjects, assignment, owners, tables


def run_fanout(leaves: int, providers: int, rows: int,
               latency: float, repeat: int) -> dict:
    """Best-of-``repeat`` wall time per schedule on cold runtimes."""
    plan, policy, subjects, assignment, owners, tables = \
        build_fanout_workload(leaves, providers, rows)
    extended = minimally_extend(plan, policy, assignment, owners=owners,
                                deliver_to="U")
    keys = establish_keys(extended, policy)
    dispatch_plan = dispatch(extended, keys, owners=owners, user="U")
    distributed = DistributedKeys.from_assignment(keys)
    latencies = {s.name: (0.0 if s.name == "U" else latency)
                 for s in subjects}
    rsa_keys = generate_subject_keys(subjects)

    results = {}
    times = {}
    for schedule in ("sequential", "parallel"):
        best = float("inf")
        for _ in range(repeat):
            runtime = build_runtime(  # cold runtime per measurement
                policy, subjects, tables, user="U", schedule=schedule,
                rsa_keys=rsa_keys, latency_seconds=latencies,
            )
            start = time.perf_counter()
            table, trace = runtime.run(dispatch_plan, extended, keys,
                                       distributed)
            best = min(best, time.perf_counter() - start)
        results[schedule] = table
        times[schedule] = best

    identical = (results["parallel"].columns
                 == results["sequential"].columns
                 and results["parallel"].rows
                 == results["sequential"].rows)
    return {
        "leaves": leaves,
        "providers": providers,
        "rows": rows,
        "latency_seconds": latency,
        "fragments": len(dispatch_plan.fragments),
        "levels": len(dispatch_plan.execution_levels()),
        "sequential_seconds": times["sequential"],
        "parallel_seconds": times["parallel"],
        "speedup": times["sequential"] / times["parallel"],
        "results_identical": identical,
        "result_rows": len(results["parallel"]),
    }


def run_service(repeats: int) -> dict:
    """Cold-vs-warm timing of a persistent service session."""
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        (f"s{i}", 1950 + i, "stroke" if i % 3 else "flu",
         "tpa" if i % 2 else "surgery")
        for i in range(60)
    ])
    ins = Table("Ins", ("C", "P"), [
        (f"s{i}", 40.0 + 7.0 * (i % 30)) for i in range(60)
    ])
    service = QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U",
    )
    session = service.session()
    cold = session.run(RUNNING_SQL)
    warm_times = []
    for _ in range(repeats):
        warm_times.append(session.run(RUNNING_SQL).wall_seconds)
    warm_mean = sum(warm_times) / len(warm_times)
    return {
        "repeats": repeats,
        "cold_seconds": cold.wall_seconds,
        "warm_mean_seconds": warm_mean,
        "warm_speedup": cold.wall_seconds / warm_mean,
        "assignment_cache_hits": session.stats.assignment_cache_hits,
        "plan_cache_hits": session.stats.plan_cache_hits,
        "fragment_cache_hits": session.stats.fragment_cache_hits,
        "result_rows": len(cold.result),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller smoke configuration (CI)")
    parser.add_argument("--json", type=Path, default=None,
                        help="emit measurements to this JSON file")
    arguments = parser.parse_args(argv)

    if arguments.quick:
        fanout = run_fanout(leaves=8, providers=4, rows=20,
                            latency=0.015, repeat=2)
        service = run_service(repeats=3)
        speedup_bar, service_bar = QUICK_SPEEDUP_BAR, QUICK_SERVICE_BAR
    else:
        fanout = run_fanout(leaves=16, providers=4, rows=40,
                            latency=0.025, repeat=3)
        service = run_service(repeats=5)
        speedup_bar, service_bar = SPEEDUP_BAR, SERVICE_BAR

    print(f"fan-out workload: {fanout['leaves']} relations, "
          f"{fanout['fragments']} fragments in {fanout['levels']} levels, "
          f"{fanout['latency_seconds'] * 1000:.0f} ms simulated latency")
    print(f"  sequential: {fanout['sequential_seconds'] * 1000:8.1f} ms")
    print(f"  parallel:   {fanout['parallel_seconds'] * 1000:8.1f} ms"
          f"   ({fanout['speedup']:.2f}x, bar {speedup_bar}x)")
    print(f"  identical results: {fanout['results_identical']} "
          f"({fanout['result_rows']} rows)")
    print(f"warm service session ({service['repeats']} repeats):")
    print(f"  cold: {service['cold_seconds'] * 1000:8.1f} ms")
    print(f"  warm: {service['warm_mean_seconds'] * 1000:8.1f} ms mean "
          f"({service['warm_speedup']:.2f}x, bar {service_bar}x)")
    print(f"  assignment cache hits: {service['assignment_cache_hits']}"
          f"/{service['repeats']}, fragment hits: "
          f"{service['fragment_cache_hits']}")

    if arguments.json is not None:
        arguments.json.write_text(json.dumps({
            "quick": arguments.quick,
            "fanout": fanout,
            "service": service,
        }, indent=2, sort_keys=True))
        print(f"measurements written to {arguments.json}")

    failures = []
    if not fanout["results_identical"]:
        failures.append("parallel and sequential results differ")
    if service["assignment_cache_hits"] != service["repeats"]:
        failures.append(
            f"expected {service['repeats']} assignment cache hits, "
            f"got {service['assignment_cache_hits']}")
    timing_misses = []
    if fanout["speedup"] < speedup_bar:
        timing_misses.append(
            f"fan-out speedup {fanout['speedup']:.2f}x "
            f"< bar {speedup_bar}x")
    if service["warm_speedup"] < service_bar:
        timing_misses.append(
            f"warm service speedup {service['warm_speedup']:.2f}x "
            f"< bar {service_bar}x")
    if arguments.quick:
        # Timing is report-only in smoke mode: shared CI runners are too
        # contended to gate merges on wall-clock bars.
        for miss in timing_misses:
            print(f"WARN (report-only under --quick): {miss}",
                  file=sys.stderr)
    else:
        failures.extend(timing_misses)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

A hospital H and an insurance company I each control a relation; user U
asks for the average insurance premium per treatment of stroke patients:

    SELECT T, AVG(P) FROM Hosp JOIN Ins ON S = C
    WHERE D = 'stroke' GROUP BY T HAVING AVG(P) > 100

The script walks the full pipeline of the paper: parse SQL into a plan,
compute profiles (Fig. 3) and candidates (Fig. 6), pick the cheapest
authorized assignment, extend the plan with on-the-fly encryption
(Fig. 7), establish keys, dispatch signed sub-queries (Fig. 8), and
execute across simulated subjects with real encryption.

Run:  python examples/quickstart.py
"""

from repro import compute_candidates, establish_keys, minimally_extend
from repro.core.assignment import assign
from repro.core.dispatch import dispatch
from repro.cost.pricing import PriceList
from repro.crypto.keymanager import DistributedKeys
from repro.distributed import build_runtime
from repro.engine import Executor, Table
from repro.paper_example import build_running_example
from repro.sql import plan_query


def main() -> None:
    example = build_running_example()

    # 1. The query, straight from SQL (reproduces Figure 1(a)'s plan).
    plan = plan_query(
        "select T, avg(P) from Hosp join Ins on S=C "
        "where D='stroke' group by T having avg(P)>100",
        example.schema,
    )
    print("=== Query plan (Figure 1a) ===")
    print(plan.pretty())

    # 2. Profiles: what each intermediate relation reveals (Figure 3).
    print("\n=== Relation profiles (Figure 3) ===")
    print(plan.describe_profiles())

    # 3. Who could run each operation with encryption's help (Figure 6).
    candidates = compute_candidates(plan, example.policy,
                                    example.subject_names)
    print("\n=== Assignment candidates (Figure 6) ===")
    print(candidates.describe())

    # 4. Cheapest authorized assignment under the paper's price ratios.
    prices = PriceList.from_subjects(example.subjects)
    outcome = assign(plan, example.policy, example.subject_names, prices,
                     user="U", owners=example.owners)
    print("\n=== Cost-optimal extended plan ===")
    print(outcome.describe())

    # 5. The paper's own Figure 7(a) assignment, for comparison.
    extended = minimally_extend(
        example.plan, example.policy, example.assignment_7a(),
        owners=example.owners,
    )
    keys = establish_keys(extended, example.policy)
    print("\n=== Figure 7(a) extension ===")
    print(extended.describe())
    print("keys:", keys.describe().replace("\n", " | "))

    # 6. Dispatch: signed, encrypted sub-queries (Figure 8).
    dispatch_plan = dispatch(extended, keys, owners=example.owners,
                             user="U")
    print("\n=== Sub-query dispatch (Figure 8) ===")
    print(dispatch_plan.describe())

    # 7. Run it for real, across simulated subjects.
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        ("s1", 1980, "stroke", "tpa"),
        ("s2", 1975, "stroke", "tpa"),
        ("s3", 1990, "flu", "rest"),
        ("s4", 1960, "stroke", "surgery"),
        ("s5", 1955, "stroke", "surgery"),
    ])
    ins = Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 60.0), ("s5", 50.0),
    ])
    runtime = build_runtime(
        example.policy, list(example.subjects),
        {"H": {"Hosp": hosp}, "I": {"Ins": ins}}, user="U",
    )
    result, trace = runtime.run(
        dispatch_plan, extended, keys, DistributedKeys.from_assignment(keys)
    )
    print("\n=== Distributed result ===")
    for row in result.iter_dicts():
        print(row)
    print(f"({trace.messages} messages, {trace.envelope_bytes} envelope "
          f"bytes, fragments: {[f for f, _ in trace.fragments_run]})")

    # Sanity: identical to a plaintext single-site execution.
    plain = Executor({"Hosp": hosp, "Ins": ins}).execute(example.plan)
    assert result.same_content(plain)
    print("\nDistributed encrypted result matches plaintext execution ✔")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A tour of the encrypted-execution substrate.

Shows the four scheme families of §7 doing the work the model assigns
them — deterministic equality, OPE ranges, Paillier sums — plus the
dispatch envelopes ([[q, keys]priU]pubS) detecting tampering.

Run:  python examples/encrypted_execution_tour.py
"""

from repro.core.keys import QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyStore
from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import generate_keypair
from repro.crypto.rsa import generate_keypair as generate_rsa
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.distributed.messages import (
    SubQueryPayload,
    open_envelope,
    seal_envelope,
)
from repro.exceptions import DispatchError


def main() -> None:
    key = b"tour-key-32-bytes-padded-here!!!"

    # Deterministic: equality survives encryption (joins, group-by).
    det = DeterministicCipher(key)
    print("deterministic:",
          det.encrypt("stroke") == det.encrypt("stroke"),
          "(equal plaintexts, equal tokens)")
    print("              ",
          det.encrypt("stroke") != det.encrypt("cardiac"),
          "(different plaintexts, different tokens)")

    # Randomized: nothing survives — the safe default for transit.
    rand = RandomizedCipher(key)
    print("randomized:   ",
          rand.encrypt("stroke") != rand.encrypt("stroke"),
          "(same plaintext, unlinkable ciphertexts)")

    # OPE: order survives (range selections, min/max).
    ope = OpeCipher(key)
    premiums = [60.0, 90.0, 150.0, 200.0]
    tokens = [ope.encrypt(p) for p in premiums]
    print("ope:          ", tokens == sorted(tokens),
          "(ciphertext order = plaintext order)")
    threshold = ope.encrypt(100)
    print("              ",
          [p for p, t in zip(premiums, tokens) if t > threshold],
          "> 100, computed on ciphertexts")

    # Paillier: sums survive (sum/avg aggregates).
    public, private = generate_keypair(512)
    ciphertexts = [public.encrypt(p) for p in premiums]
    total = ciphertexts[0]
    for c in ciphertexts[1:]:
        total = total + c
    print("paillier:     ",
          private.decrypt(total) == sum(premiums),
          f"(homomorphic sum = {private.decrypt(total)})")

    # Key stores route attribute values to the right cipher.
    store = KeyStore.generate([
        QueryKey(frozenset({"S", "C"}), EncryptionScheme.DETERMINISTIC),
        QueryKey(frozenset({"P"}), EncryptionScheme.PAILLIER),
    ])
    cipher = store.cipher_for_attribute("S")
    print("keystore:     ",
          cipher.decrypt(cipher.encrypt("s42")) == "s42",
          "(kSC routes S and C to the same deterministic key)")

    # Dispatch envelopes: signed by the user, sealed to the recipient.
    user_pub, user_priv = generate_rsa(512)
    provider_pub, provider_priv = generate_rsa(512)
    payload = SubQueryPayload(
        fragment_id="reqX",
        query_text="select T, avg(P^k) as P^k from ⟦reqH⟧ join ⟦reqI⟧ "
                   "on S^k=C^k group by T",
        keystore=KeyStore(),
    )
    envelope = seal_envelope(payload, user_priv, provider_pub)
    received = open_envelope(envelope, provider_priv, user_pub)
    print("envelope:     ", received.query_text == payload.query_text,
          f"({len(envelope)} sealed bytes, signature verified)")

    tampered = envelope[:-1] + bytes([envelope[-1] ^ 0x01])
    try:
        open_envelope(tampered, provider_priv, user_pub)
        print("envelope:      TAMPERING NOT DETECTED (bug!)")
    except Exception as error:  # CryptoError or DispatchError
        print("envelope:      True (tampered envelope rejected:",
              type(error).__name__ + ")")
    _ = DispatchError


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §7 economics: TPC-H under three authorization scenarios.

Regenerates Figures 9 and 10 of the paper on the simulated substrate:
22 TPC-H queries, two data authorities, three cloud providers, and the
UA / UAPenc / UAPmix authorization scenarios.  Also demonstrates a
sensitivity analysis the paper mentions ("the saving is expected to be
high when the difference in the prices of cloud providers is
significant") by varying the provider price spread.

Run:  python examples/cloud_cost_optimization.py
"""

from repro.cost.pricing import PriceList
from repro.core.assignment import assign
from repro.experiments.economics import run_economics
from repro.tpch.queries import all_queries
from repro.tpch.scenarios import all_scenarios
from repro.tpch.schema import build_tpch_schema

SCALE = 0.1


def main() -> None:
    results = run_economics(scale=SCALE)

    print("=== Figure 9: per-query normalized cost ===")
    print(results.figure9_table())

    print("\n=== Figure 10: cumulative normalized cost ===")
    print(results.figure10_table())

    # Where do the savings come from?  Inspect one provider-friendly
    # query in detail.
    schema = build_tpch_schema(SCALE)
    scenario_obj = all_scenarios(schema)["UAPenc"]
    plan = all_queries()[4].plan(schema)  # Q5: local supplier volume
    prices = PriceList.from_subjects(scenario_obj.subjects)
    outcome = assign(plan, scenario_obj.policy, scenario_obj.subject_names,
                     prices, user=scenario_obj.user,
                     owners=scenario_obj.owners)
    print("\n=== Q5 under UAPenc: who does what ===")
    print(outcome.describe())
    print("keys:", outcome.keys.describe().replace("\n", " | ") or "-")

    # Sensitivity: provider price spread (the paper notes the saving
    # grows when provider prices differ significantly — here the spread
    # prices P2/P3 above P1, so a larger spread pushes work to P1 and
    # the relative UA cost up).
    print("\n=== Sensitivity: provider price spread (Q5, UAPenc) ===")
    for spread in (0.0, 0.25, 1.0):
        prices = PriceList.from_subjects(
            scenario_obj.subjects, provider_spread=spread
        )
        plan = all_queries()[4].plan(schema)
        enc = assign(plan, scenario_obj.policy,
                     scenario_obj.subject_names, prices,
                     user=scenario_obj.user, owners=scenario_obj.owners)
        plan = all_queries()[4].plan(schema)
        ua_scenario = all_scenarios(schema)["UA"]
        ua = assign(plan, ua_scenario.policy, ua_scenario.subject_names,
                    prices, user=ua_scenario.user,
                    owners=ua_scenario.owners)
        ratio = enc.cost.total_usd / ua.cost.total_usd
        print(f"  spread={spread:4.2f}: UAPenc/UA = {ratio:.3f}")


if __name__ == "__main__":
    main()

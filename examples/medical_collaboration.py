#!/usr/bin/env python3
"""Multi-authority medical analytics with controlled provider involvement.

The scenario §1 motivates: a hospital network and a genomics lab each
control sensitive relations and want a collaborative analysis — average
biomarker level per diagnosis for high-risk patients — without handing
plaintext to the analytics clouds.

This example shows how authorization changes reshape the candidate sets:

1. with no provider authorizations, only the user can combine the data;
2. granting *encrypted* visibility lets a cloud run the join without ever
   seeing a patient identifier or biomarker in the clear;
3. uniform visibility (Def. 4.1, condition 3) in action: a provider with
   plaintext on one join key but only encrypted on the other is *less*
   eligible than one with encrypted visibility on both.

Run:  python examples/medical_collaboration.py
"""

import random

from repro import (
    ANY,
    Aggregate,
    AggregateFunction,
    Authorization,
    BaseRelationNode,
    GroupBy,
    Join,
    Policy,
    QueryPlan,
    Relation,
    Schema,
    Selection,
    Subject,
    SubjectKind,
    compute_candidates,
    equals,
    establish_keys,
    value_equals,
)
from repro.core.assignment import assign
from repro.core.dispatch import dispatch
from repro.cost.pricing import PriceList
from repro.crypto.keymanager import DistributedKeys
from repro.distributed import build_runtime
from repro.engine import Table


def build_schema() -> Schema:
    schema = Schema()
    schema.add(Relation("Patients", [
        "patient_id", "diagnosis", "risk_class", "ward",
    ], cardinality=20_000))
    schema.add(Relation("Genomics", [
        "sample_id", "biomarker", "sequencing_batch",
    ], cardinality=18_000))
    return schema


def build_plan(schema: Schema) -> QueryPlan:
    patients = BaseRelationNode(
        schema.relation("Patients"),
        ["patient_id", "diagnosis", "risk_class"],
    )
    risky = Selection(patients, value_equals("risk_class", "high"))
    genomics = BaseRelationNode(
        schema.relation("Genomics"), ["sample_id", "biomarker"],
    )
    joined = Join(risky, genomics, equals("patient_id", "sample_id"))
    return QueryPlan(GroupBy(joined, ["diagnosis"], Aggregate(
        AggregateFunction.AVG, "biomarker", alias="avg_biomarker",
    )))


def main() -> None:
    schema = build_schema()
    plan = build_plan(schema)
    subjects = [
        Subject("analyst", SubjectKind.USER),
        Subject("hospital", SubjectKind.AUTHORITY),
        Subject("genlab", SubjectKind.AUTHORITY),
        Subject("cloudA", SubjectKind.PROVIDER),
        Subject("cloudB", SubjectKind.PROVIDER),
    ]
    names = [s.name for s in subjects]
    owners = {"Patients": "hospital", "Genomics": "genlab"}
    patients_rel = schema.relation("Patients")
    genomics_rel = schema.relation("Genomics")

    # --- Step 1: restrictive policy — nobody but the analyst combines.
    policy = Policy(schema)
    policy.grant_all([
        Authorization(patients_rel, patients_rel.attribute_names, (),
                      "hospital"),
        Authorization(genomics_rel, genomics_rel.attribute_names, (),
                      "genlab"),
        Authorization(patients_rel, patients_rel.attribute_names, (),
                      "analyst"),
        Authorization(genomics_rel, genomics_rel.attribute_names, (),
                      "analyst"),
    ])
    candidates = compute_candidates(plan, policy, names)
    print("=== Closed policy: candidates per operation ===")
    print(candidates.describe())

    # --- Step 2: encrypted visibility for the clouds widens candidates.
    policy.grant_all([
        Authorization(patients_rel, (), patients_rel.attribute_names,
                      "cloudA"),
        Authorization(genomics_rel, (), genomics_rel.attribute_names,
                      "cloudA"),
        # cloudB gets *plaintext* on the patient key but only encrypted
        # on the sample key: non-uniform visibility over the join pair.
        Authorization(patients_rel, ["patient_id"],
                      set(patients_rel.attribute_names) - {"patient_id"},
                      "cloudB"),
        Authorization(genomics_rel, (), genomics_rel.attribute_names,
                      "cloudB"),
    ])
    candidates = compute_candidates(plan, policy, names)
    print("\n=== With encrypted cloud visibility ===")
    print(candidates.describe())
    join_node = plan.operations()[1]
    assert "cloudA" in candidates[join_node]
    assert "cloudB" not in candidates[join_node], (
        "cloudB sees patient_id plaintext but sample_id only encrypted — "
        "condition 3 (uniform visibility) rules it out of the join"
    )
    print("\ncloudA can host the join on encrypted identifiers;")
    print("cloudB cannot — its visibility over the joined pair is not "
          "uniform (Definition 4.1, condition 3).")

    # --- Step 3: optimize, dispatch, and actually run it.
    prices = PriceList.from_subjects(subjects)
    outcome = assign(plan, policy, names, prices, user="analyst",
                     owners=owners)
    print("\n=== Cost-optimal extended plan ===")
    print(outcome.describe())

    rng = random.Random(11)
    diagnoses = ["stroke", "diabetes", "cardiac"]
    patients = Table("Patients",
                     ("patient_id", "diagnosis", "risk_class", "ward"), [
        (f"p{i:05d}", rng.choice(diagnoses),
         rng.choice(["high", "low", "low"]), f"w{rng.randrange(8)}")
        for i in range(400)
    ])
    genomics = Table("Genomics",
                     ("sample_id", "biomarker", "sequencing_batch"), [
        (f"p{i:05d}", round(rng.uniform(0.1, 9.9), 2),
         rng.randrange(40))
        for i in range(380)
    ])
    keys = establish_keys(outcome.extended, policy)
    dispatch_plan = dispatch(outcome.extended, keys, owners=owners,
                             user="analyst")
    print("\n=== Dispatch ===")
    print(dispatch_plan.describe())

    runtime = build_runtime(
        policy, subjects,
        {"hospital": {"Patients": patients},
         "genlab": {"Genomics": genomics}},
        user="analyst",
    )
    result, trace = runtime.run(dispatch_plan, outcome.extended, keys,
                                DistributedKeys.from_assignment(keys))
    print("\n=== Average biomarker per diagnosis (high-risk patients) ===")
    for row in sorted(result.iter_dicts(), key=lambda r: str(r["diagnosis"])):
        print(f"  {row['diagnosis']:10s} {row['avg_biomarker']:.3f}")
    print(f"({trace.messages} messages; no authorization violations: "
          f"{not trace.violations})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Workload service walkthrough: many users, repeated queries, shared caches.

The hand-wired pipeline of ``quickstart.py`` — parse, authorize, extend,
dispatch, execute — is exactly what a persistent deployment should *not*
repeat per request.  :class:`repro.service.QueryService` owns the
long-lived state once:

* per-subject RSA keypairs (generated at service construction, reused by
  every envelope);
* the plan cache (identical SQL text → the identical plan object);
* the policy-versioned assignment cache (PR 2) plus memoised dispatch
  plans and distributed key material per cached assignment;
* persistent per-subject executors with byte-bounded result caches, and
  whole-fragment result reuse inside the concurrent runtime.

This walkthrough runs a small multi-user session over the paper's
running example and prints what each layer saved.

Run:  python examples/workload_service.py
"""

from repro.engine import Table
from repro.exceptions import UnauthorizedError
from repro.paper_example import build_running_example
from repro.service import QueryService

QUERY = ("select T, avg(P) from Hosp join Ins on S=C "
         "where D='stroke' group by T having avg(P)>100")
PREMIUMS = "select C, P from Ins where P>80"


def main() -> None:
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        ("s1", 1980, "stroke", "tpa"),
        ("s2", 1975, "stroke", "tpa"),
        ("s3", 1990, "flu", "rest"),
        ("s4", 1960, "stroke", "surgery"),
        ("s5", 1955, "stroke", "surgery"),
    ])
    ins = Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 60.0), ("s5", 50.0),
    ])

    # One service holds the policy, the subjects' nodes (tables live at
    # the authorities H and I), and every cross-query cache.
    service = QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U",
    )

    print("=== User U: cold query, then warm repeats ===")
    session = service.session("U")
    cold = session.run(QUERY)
    print("cold:", cold.describe())
    for _ in range(3):
        warm = session.run(QUERY)
    print("warm:", warm.describe())
    assert warm.result.sorted_rows() == [("tpa", 120.0)]
    assert warm.plan_cached and warm.assignment_cached \
        and warm.keys_reused
    assert warm.trace.fragment_cache_hits == \
        len(warm.trace.fragments_run)
    print(session.describe())

    print("\n=== A second query through the same session ===")
    premiums = session.run(PREMIUMS)
    print("new :", premiums.describe())
    assert len(premiums.result) == 3  # s1, s2, s3 above 80

    print("\n=== User Y shares the service, X is refused ===")
    y_session = service.session("Y")
    y_outcome = y_session.run(QUERY)
    print("Y   :", y_outcome.describe())
    assert y_outcome.result.sorted_rows() == [("tpa", 120.0)]
    try:
        service.execute(QUERY, user="X")
        raise AssertionError("X must not receive the plaintext result")
    except UnauthorizedError as error:
        print("X   : DENIED —", error)

    print("\n=== Data refresh drops the stale caches ===")
    service.refresh_tables({"I": {"Ins": Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 160.0), ("s5", 150.0),
    ])}})
    refreshed = session.run(QUERY)
    print("new :", refreshed.describe())
    assert refreshed.result.sorted_rows() == [
        ("surgery", 155.0), ("tpa", 120.0),
    ]
    assert refreshed.trace.fragment_cache_hits == 0  # caches dropped

    print("\n=== Service totals ===")
    print(service.describe())
    print("\nWorkload service walkthrough passed ✔")


if __name__ == "__main__":
    main()

"""Setup shim enabling offline editable installs (no wheel/PEP 660).

The sandbox has no network and no ``wheel`` package, so modern editable
installs (which build a wheel) fail.  ``pip install -e .`` falls back to
this legacy path via ``--no-use-pep517`` or works directly with
``python setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Workload service layer: SQL in, authorized distributed results out.

:class:`QueryService` owns the state the §6 pipeline can share across
queries (parser plans, assignment cache, per-subject RSA keys and
executors, distributed key material) and drives each SQL query through
parse → authorize/assign → minimally-extend → dispatch → concurrent
runtime; :class:`WorkloadSession` scopes a stream of such queries to one
user.
"""

from repro.core.budget import CancellationToken, QueryBudget
from repro.service.workload import (
    DEFAULT_EXECUTOR_CACHE_BYTES,
    QueryOutcome,
    QueryService,
    SessionStats,
    WorkloadSession,
)

__all__ = [
    "CancellationToken", "DEFAULT_EXECUTOR_CACHE_BYTES", "QueryBudget",
    "QueryOutcome", "QueryService", "SessionStats", "WorkloadSession",
]

"""End-to-end workload execution service.

The ROADMAP's north-star workload — the same queries, from many users,
against a stable policy — pays the whole §6 pipeline per request when
every caller hand-wires parse → authorize → extend → dispatch → execute.
:class:`QueryService` owns the long-lived state the pipeline can share
across queries and drives SQL text through it end to end:

* a **plan cache** (via :func:`repro.sql.planner.plan_query`'s ``cache``)
  returning identity-stable plans for repeated SQL text;
* the delta-reconciled
  :class:`~repro.core.plancache.AssignmentCache` memoising full
  assignment results (PR 2), which identity-stable plans short-circuit
  and which policy churn maintains surgically instead of flushing;
* a cross-query :class:`~repro.core.assignment.EdgeTableCache` sharing
  decomposed DP edge tables between distinct queries, plus per-plan
  :class:`~repro.core.candidates.IncrementalCandidates` maintaining Λ
  under grant/revoke by refreshing only the touched subjects' rows;
* memoised **dispatch plans** and **distributed key material** per cached
  assignment, so repeated queries stop paying fragment rendering and
  Paillier/symmetric keygen;
* one persistent :class:`~repro.distributed.DistributedRuntime` whose
  per-subject RSA keypairs are generated once, whose per-subject
  executors keep byte-bounded result caches across queries, and whose
  fragment/executor caches reconcile against the policy's delta journal.

Each :class:`QueryOutcome` carries the reconcile activity its query
observed (entries kept/patched/evicted across all delta-aware caches),
so churn behaviour is visible per request, not just in aggregate.

:class:`WorkloadSession` is the per-user view: it fixes the querying
user, runs SQL, and accumulates the session's cache-hit statistics.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.assignment import AssignmentResult, EdgeTableCache, assign
from repro.core.authorization import Policy, Subject
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.candidates import IncrementalCandidates
from repro.core.dispatch import DispatchPlan, dispatch
from repro.core.plancache import AssignmentCache
from repro.core.schema import Schema
from repro.core.visibility import verify_assignment
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList
from repro.crypto.keymanager import DistributedKeys
from repro.distributed.faults import FaultInjector
from repro.distributed.health import HealthRegistry, RetryPolicy
from repro.distributed.runtime import (
    ExecutionTrace,
    FailoverEvent,
    build_runtime,
    generate_subject_keys,
)
from repro.engine.executor import UdfCallable
from repro.engine.table import Table
from repro.parallel.pool import ExecutionSettings
from repro.exceptions import (
    CostCeilingExceededError,
    DispatchError,
    NoCandidateError,
    ProviderUnavailableError,
    UnauthorizedError,
    UnrecoverableAssignmentError,
)
from repro.sql.planner import plan_query

#: Default byte budget for each persistent per-subject executor cache.
DEFAULT_EXECUTOR_CACHE_BYTES = 32 * 1024 * 1024

#: Entries kept in the plan/dispatch-plan/distributed-key memos.
_MEMO_LIMIT = 256

#: Most recent outcomes a :class:`WorkloadSession` retains (stats cover
#: every query regardless; full results must not pin unbounded memory).
_SESSION_OUTCOME_LIMIT = 128


class _BoundedCache(OrderedDict):
    """An insertion-bounded mapping for the service's long-lived memos.

    Evicts the oldest entry beyond ``limit`` — a service receiving many
    distinct SQL texts (inlined literal parameters, ad-hoc queries) must
    not grow without bound.
    """

    def __init__(self, limit: int = _MEMO_LIMIT) -> None:
        super().__init__()
        self._limit = limit

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        while len(self) > self._limit:
            self.popitem(last=False)


@dataclass
class QueryOutcome:
    """One executed query: its result plus the per-query trace."""

    sql: str
    user: str
    result: Table
    trace: ExecutionTrace
    wall_seconds: float
    cost_usd: float
    plan_cached: bool
    assignment_cached: bool
    keys_reused: bool
    assignment: AssignmentResult
    #: Reconcile activity this query observed across the delta-aware
    #: caches (assignment/edge/fragment/executor entries kept, patched,
    #: evicted or flushed), as counter increments.  Empty when the
    #: policy did not change between this query and the previous one.
    reconcile: dict[str, int] = field(default_factory=dict)
    #: Fragment execution attempts across every run of this query
    #: (retries and repair re-runs included).
    attempts: int = 0
    #: Transient-fault retries absorbed without failover.
    retries: int = 0
    #: Circuit-breaker trips observed (provider deaths included).
    breaker_trips: int = 0
    #: Mid-query fragment re-dispatches, each carrying the repaired
    #: assignment that :func:`verify_assignment` approved.
    failovers: tuple[FailoverEvent, ...] = ()
    #: Whether the query was re-run on a warm §6 standby plan.
    standby_used: bool = False
    #: Whether the query was re-planned from scratch over the healthy
    #: subject pool.
    replanned: bool = False
    #: Latency attributable to recovery (retries excluded): in-place
    #: failover time plus standby/re-plan repair and re-run time.
    failover_seconds: float = 0.0
    #: The budget the query ran under (None = unbudgeted).
    budget: QueryBudget | None = None
    #: Seconds left on the deadline when the result was delivered
    #: (None = no deadline).
    budget_remaining_seconds: float | None = None

    @property
    def failed_over(self) -> bool:
        """Whether any recovery path ran (takeover, standby, re-plan)."""
        return bool(self.failovers) or self.standby_used or self.replanned

    def describe(self) -> str:
        """One human-readable line per query (the workload CLI output)."""
        flags = "".join((
            "p" if self.plan_cached else "-",
            "a" if self.assignment_cached else "-",
            "k" if self.keys_reused else "-",
        ))
        churn = ""
        if self.reconcile:
            inner = ", ".join(f"{key}={value}" for key, value
                              in sorted(self.reconcile.items()))
            churn = f" reconcile[{inner}]"
        recovery = ""
        if self.failed_over:
            moves = ", ".join(
                f"{e.fragment_id}:{e.failed_subject}->{e.replacement}"
                for e in self.failovers)
            mode = ("replanned" if self.replanned
                    else "standby" if self.standby_used else "takeover")
            recovery = (f" failover[{mode}"
                        + (f" {moves}" if moves else "")
                        + f" +{self.failover_seconds * 1000:.1f}ms]")
        budget_note = ""
        if self.budget is not None \
                and self.budget.deadline_seconds is not None \
                and self.budget_remaining_seconds is not None:
            budget_note = (
                f" budget[{self.budget_remaining_seconds * 1000:.0f}ms "
                f"left of {self.budget.deadline_seconds * 1000:.0f}ms]")
        return (
            f"{self.user}: {len(self.result)} rows in "
            f"{self.wall_seconds * 1000:.1f} ms "
            f"[{self.trace.schedule}, {len(self.trace.fragments_run)} "
            f"fragments, {self.trace.fragment_cache_hits} cached, "
            f"caches={flags}, ${self.cost_usd:.6f}]"
            f"{churn}{recovery}{budget_note}"
        )


@dataclass
class SessionStats:
    """Aggregated counters for one :class:`WorkloadSession`."""

    queries: int = 0
    wall_seconds: float = 0.0
    rows_returned: int = 0
    plan_cache_hits: int = 0
    assignment_cache_hits: int = 0
    fragment_cache_hits: int = 0
    fragments_run: int = 0
    retries: int = 0
    breaker_trips: int = 0
    failovers: int = 0
    queries_failed_over: int = 0

    def observe(self, outcome: QueryOutcome) -> None:
        self.queries += 1
        self.wall_seconds += outcome.wall_seconds
        self.rows_returned += len(outcome.result)
        self.plan_cache_hits += int(outcome.plan_cached)
        self.assignment_cache_hits += int(outcome.assignment_cached)
        self.fragment_cache_hits += outcome.trace.fragment_cache_hits
        self.fragments_run += len(outcome.trace.fragments_run)
        self.retries += outcome.retries
        self.breaker_trips += outcome.breaker_trips
        self.failovers += len(outcome.failovers)
        self.queries_failed_over += int(outcome.failed_over)

    def describe(self) -> str:
        return (
            f"{self.queries} queries, {self.rows_returned} rows, "
            f"{self.wall_seconds * 1000:.1f} ms total; cache hits: "
            f"{self.plan_cache_hits} plan, "
            f"{self.assignment_cache_hits} assignment, "
            f"{self.fragment_cache_hits}/{self.fragments_run} fragments"
        )


class QueryService:
    """Long-lived front end running SQL workloads across providers.

    Parameters mirror the hand-wired pipeline: a schema, a policy, the
    participating subjects, the relation owners, and the authorities'
    stored tables.  Prices default to
    :meth:`~repro.cost.pricing.PriceList.from_subjects`.
    ``settings`` selects the multicore data plane — worker count, join
    strategy, and parallelism threshold
    (:class:`~repro.parallel.pool.ExecutionSettings`) — shared by every
    provider executor in the runtime.  See
    ``examples/workload_service.py`` for a complete walkthrough and
    ``python -m repro workload`` for a runnable multi-user demo.
    """

    def __init__(self, schema: Schema, policy: Policy,
                 subjects: tuple[Subject, ...] | list[Subject],
                 owners: Mapping[str, str],
                 authority_tables: Mapping[str, Mapping[str, Table]],
                 user: str = "U",
                 prices: PriceList | None = None,
                 topology: NetworkTopology | None = None,
                 udfs: Mapping[str, UdfCallable] | None = None,
                 rsa_bits: int = 512,
                 schedule: str = "parallel",
                 max_workers: int | None = None,
                 assignment_cache_size: int = 256,
                 executor_cache_size: int = 128,
                 executor_cache_bytes: int | None
                 = DEFAULT_EXECUTOR_CACHE_BYTES,
                 latency_seconds: float | Mapping[str, float] = 0.0,
                 clock=None, sleeper=None,
                 health: HealthRegistry | None = None,
                 fault_injector: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 failover: bool = True,
                 settings: ExecutionSettings | None = None,
                 ) -> None:
        self.schema = schema
        self.policy = policy
        self.subjects = tuple(subjects)
        self.subject_names = tuple(s.name for s in self.subjects)
        self.owners = dict(owners)
        self.user = user
        self.prices = prices or PriceList.from_subjects(self.subjects)
        # An explicit topology applies to every querying user; without
        # one, each user gets the §7 defaults *from their own seat* (the
        # slow client link must follow whoever is querying), memoized so
        # the assignment cache's identity-compared context still hits.
        self.topology = topology
        #: user → memoized topology; bounded like every other per-user
        #: memo (arbitrary user strings reach here before authorization
        #: checks run, so unbounded growth would be caller-controlled).
        #: Eviction only costs a cold user an assignment-cache miss.
        self._user_topologies: _BoundedCache = _BoundedCache()
        #: Clock used when minting a CancellationToken from a bare
        #: QueryBudget; shared with the runtime so fake-clock tests see
        #: one consistent notion of time end to end.
        self._clock_fn = clock or time.monotonic
        self.assignment_cache = AssignmentCache(
            maxsize=assignment_cache_size)
        #: Cross-query DP edge tables; receiver rows reconcile against
        #: the policy's delta journal at the start of each search.
        self.edge_cache = EdgeTableCache()
        #: id(plan) → (IncrementalCandidates, pinned plan).  Identity
        #: keys are safe because the plan cache returns identity-stable
        #: plans; pinning the plan keeps the id valid while memoised.
        self._candidates_memo: _BoundedCache = _BoundedCache()
        # Per-subject RSA keypairs are generated exactly once, here.
        self.rsa_keys = generate_subject_keys(list(self.subjects),
                                              rsa_bits=rsa_bits)
        self.runtime = build_runtime(
            policy, list(self.subjects), authority_tables, user,
            udfs=udfs, rsa_keys=self.rsa_keys, schedule=schedule,
            max_workers=max_workers, latency_seconds=latency_seconds,
            executor_cache_size=executor_cache_size,
            executor_cache_bytes=executor_cache_bytes,
            clock=clock, sleeper=sleeper, health=health,
            fault_injector=fault_injector, retry=retry,
            failover=failover, settings=settings,
        )
        #: (sql, id(schema)) → (plan, pinned schema); see plan_query.
        self._plan_cache: _BoundedCache = _BoundedCache()
        #: id(extended), user → (dispatch plan, pinned extended plan).
        self._dispatch_memo: _BoundedCache = _BoundedCache()
        #: id(keys) → (distributed material, pinned key assignment).
        self._keys_memo: _BoundedCache = _BoundedCache()
        self._lock = threading.Lock()
        self.total_stats = SessionStats()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, user: str | None = None,
                schedule: str | None = None, *,
                budget: QueryBudget | None = None,
                token: CancellationToken | None = None) -> QueryOutcome:
        """Run one SQL query end to end for ``user``.

        ``budget`` bounds the query end to end (a fresh
        :class:`~repro.core.budget.CancellationToken` is minted for it
        on the service's clock); pass ``token`` instead to share an
        existing countdown — e.g. the gateway's, whose deadline started
        at submission so queue wait already drew from it — or to allow
        client-side ``cancel()``.  The cost ceiling is enforced right
        after planning, against the assignment's exact §7 cost, before
        key generation or dispatch
        (:class:`~repro.exceptions.CostCeilingExceededError`); deadline
        expiry and cancellation unwind from the nearest cooperative
        checkpoint as
        :class:`~repro.exceptions.DeadlineExceededError` /
        :class:`~repro.exceptions.QueryCancelledError`.

        Raises :class:`~repro.exceptions.UnauthorizedError` when the
        user may not receive the result,
        :class:`~repro.exceptions.NoCandidateError` when some operation
        has no authorized assignee, and the usual SQL analysis errors.
        """
        user = user or self.user
        if token is None and budget is not None:
            token = CancellationToken(budget, clock=self._clock_fn)
        started = time.perf_counter()
        if token is not None:
            token.check("service:admitted")
        with self._lock:
            reconcile_before = self._reconcile_counters()
            plan_cached = (sql, id(self.schema)) in self._plan_cache
            plan = plan_query(sql, self.schema, cache=self._plan_cache)
            hits_before = self.assignment_cache.info()["hits"]
            outcome = assign(
                plan, self.policy, self.subject_names, self.prices,
                user=user, owners=self.owners,
                topology=self._topology_for(user),
                cache=self.assignment_cache,
                edge_cache=self.edge_cache,
                candidates=lambda: self._candidates_for(plan).current(),
            )
            assignment_cached = (
                self.assignment_cache.info()["hits"] > hits_before
            )
        if token is not None:
            token.check("service:planned")
            self._enforce_cost_ceiling(token, outcome)
        # Key generation (Paillier — the most expensive planning step)
        # and fragment rendering run outside the planning lock so cold
        # queries from different users don't serialize on them; the memo
        # helpers do their own double-checked locking.
        distributed, keys_reused = self._distributed_keys(outcome)
        dispatch_plan = self._dispatch_plan(outcome, user)
        partial_traces: list[ExecutionTrace] = []
        standby_used = replanned = False
        repair_seconds = 0.0
        try:
            result, trace = self.runtime.run(
                dispatch_plan, outcome.extended, outcome.keys, distributed,
                user=user, schedule=schedule, token=token,
            )
        except ProviderUnavailableError as failure:
            repair_started = time.perf_counter()
            outcome, result, trace, standby_used, partial_traces = \
                self._repair_and_rerun(plan, outcome, failure, user,
                                       schedule, token)
            replanned = not standby_used
            repair_seconds = time.perf_counter() - repair_started
        wall = time.perf_counter() - started
        reconcile_after = self._reconcile_counters()
        reconcile = {
            key: reconcile_after[key] - reconcile_before[key]
            for key in reconcile_after
            if reconcile_after[key] != reconcile_before[key]
        }
        traces = partial_traces + [trace]
        failovers = tuple(e for t in traces for e in t.failovers)
        executed = QueryOutcome(
            sql=sql,
            user=user,
            result=result,
            trace=trace,
            wall_seconds=wall,
            cost_usd=outcome.cost.total_usd,
            plan_cached=plan_cached,
            assignment_cached=assignment_cached,
            keys_reused=keys_reused,
            assignment=outcome,
            reconcile=reconcile,
            attempts=sum(t.attempts for t in traces),
            retries=sum(t.retries for t in traces),
            breaker_trips=sum(t.breaker_trips for t in traces),
            failovers=failovers,
            standby_used=standby_used,
            replanned=replanned,
            failover_seconds=(repair_seconds
                              + sum(e.seconds for e in failovers)),
            budget=token.budget if token is not None else None,
            budget_remaining_seconds=(token.remaining_seconds()
                                      if token is not None else None),
        )
        with self._lock:
            self.total_stats.observe(executed)
        return executed

    def session(self, user: str | None = None) -> "WorkloadSession":
        """A per-user session over this service's shared caches."""
        return WorkloadSession(self, user or self.user)

    # ------------------------------------------------------------------
    # Failover repair
    # ------------------------------------------------------------------
    def _repair_and_rerun(
        self, plan, primary: AssignmentResult,
        failure: ProviderUnavailableError, user: str,
        schedule: str | None,
        token: CancellationToken | None = None,
    ) -> tuple[AssignmentResult, Table, ExecutionTrace, bool,
               list[ExecutionTrace]]:
        """Recover a query whose fragment lost every in-place candidate.

        Two escalation tiers beyond the runtime's fragment takeover:
        first the warm §6 standby plans kept on the primary assignment
        (``portfolio``) — a standby that avoids every unavailable
        subject and still passes :func:`verify_assignment` under the
        *current* policy is dispatched as-is; otherwise a full re-plan
        over the remaining healthy subjects.  Each re-run that loses yet
        another provider widens the unavailable set and tries again, so
        :class:`UnrecoverableAssignmentError` is raised only when no
        authorized candidate remains (or the lost subject is a data
        authority, whose stored relations cannot move).

        Recovery draws from the same query budget as the primary run:
        each tier starts with a checkpoint (an expired query is not
        worth re-planning) and a repaired assignment is re-gated against
        the cost ceiling before dispatch — failover may not buy a result
        the budget already refused.
        """
        unavailable = set(failure.excluded)
        partial_traces: list[ExecutionTrace] = []
        if failure.trace is not None:
            partial_traces.append(failure.trace)
        while True:
            if token is not None:
                token.check("service:failover")
            unavailable |= self.runtime.health.unavailable_subjects()
            if failure.subject in set(self.owners.values()) \
                    or failure.subject.startswith("authority:"):
                raise UnrecoverableAssignmentError(
                    f"data authority {failure.subject!r} is unavailable "
                    "and its stored relations cannot be reassigned"
                ) from failure
            repaired, standby_used = self._standby_for(primary,
                                                       unavailable)
            if repaired is None:
                available = [name for name in self.subject_names
                             if name not in unavailable]
                try:
                    with self._lock:
                        repaired = assign(
                            plan, self.policy, available, self.prices,
                            user=user, owners=self.owners,
                            topology=self._topology_for(user),
                            cache=self.assignment_cache,
                            edge_cache=self.edge_cache,
                        )
                except (NoCandidateError, UnauthorizedError) as exc:
                    raise UnrecoverableAssignmentError(
                        "no authorized candidate remains for the query "
                        f"after losing {sorted(unavailable)}"
                    ) from exc
                # Defense in depth: the repaired plan must re-verify as
                # an authorized assignment before anything is dispatched.
                verify_assignment(repaired.extended.plan, self.policy,
                                  repaired.extended.assignment)
            if token is not None:
                self._enforce_cost_ceiling(token, repaired,
                                           where="failover")
            distributed, _ = self._distributed_keys(repaired)
            dispatch_plan = self._dispatch_plan(repaired, user)
            try:
                result, trace = self.runtime.run(
                    dispatch_plan, repaired.extended, repaired.keys,
                    distributed, user=user, schedule=schedule, token=token,
                )
            except ProviderUnavailableError as again:
                # Another provider died during the re-run: widen the
                # exclusion set and escalate once more.  The subject
                # pool strictly shrinks, so this terminates.
                unavailable |= set(again.excluded)
                if again.trace is not None:
                    partial_traces.append(again.trace)
                failure = again
                continue
            return repaired, result, trace, standby_used, partial_traces

    @staticmethod
    def _enforce_cost_ceiling(token: CancellationToken,
                              outcome: AssignmentResult,
                              where: str = "planning") -> None:
        """Refuse an assignment whose exact §7 cost exceeds the ceiling.

        Runs right after planning — the cheapest point with an exact
        cost in hand, before key generation or any dispatch.
        """
        ceiling = token.budget.cost_ceiling_usd
        if ceiling is None:
            return
        cost = outcome.cost.total_usd
        if cost > ceiling:
            raise CostCeilingExceededError(
                f"planned query costs ${cost:.6f}, over the "
                f"${ceiling:.6f} ceiling", where=where,
                cost_usd=cost, ceiling_usd=ceiling)

    def _standby_for(self, primary: AssignmentResult,
                     unavailable: set[str],
                     ) -> tuple[AssignmentResult | None, bool]:
        """The cheapest warm standby avoiding ``unavailable``, if any.

        Standbys were verified when planned; the policy may have changed
        since, so each is re-gated with :func:`verify_assignment` before
        use — a stale standby is skipped, never dispatched.
        """
        for standby in primary.portfolio:
            used = set(standby.extended.assignment.values())
            if used & unavailable:
                continue
            try:
                verify_assignment(standby.extended.plan, self.policy,
                                  standby.extended.assignment)
            except UnauthorizedError:
                continue
            return standby, True
        return None, False

    # ------------------------------------------------------------------
    # Shared-state management
    # ------------------------------------------------------------------
    def refresh_tables(
        self, authority_tables: Mapping[str, Mapping[str, Table]],
    ) -> None:
        """Replace some authorities' stored tables and drop stale caches.

        Executors snapshot the catalog they were built over and fragment
        results memoise their outputs, so data changes must go through
        here (or call ``runtime.invalidate_caches()`` after mutating a
        node's ``tables`` directly).
        """
        # Validate every name before mutating anything: a partial update
        # that bails mid-way would leave refreshed tables served from
        # stale caches.
        for subject in authority_tables:
            if subject not in self.runtime.nodes:
                raise DispatchError(
                    f"no runtime node for subject {subject!r}")
        try:
            for subject, tables in authority_tables.items():
                self.runtime.nodes[subject].tables = dict(tables)
        finally:
            self.runtime.invalidate_caches()

    def cache_info(self) -> dict[str, object]:
        """All cache counters: plans, assignments, executors, fragments."""
        info: dict[str, object] = {
            "plans": len(self._plan_cache),
            "assignment": self.assignment_cache.info(),
            "edge_tables": self.edge_cache.info(),
        }
        info.update(self.runtime.cache_info())
        return info

    def health_info(self) -> dict[str, dict[str, object]]:
        """Per-subject health snapshot (breaker state, EWMA, counters)."""
        return self.runtime.health_info()

    def attach_metrics(self, sink) -> None:
        """Attach a runtime observability sink (see
        :meth:`~repro.distributed.runtime.DistributedRuntime.attach_metrics`);
        the gateway (:mod:`repro.gateway`) uses this to fill its
        fragment-latency histograms."""
        self.runtime.attach_metrics(sink)

    def describe(self) -> str:
        """Service-level summary across every query it has run."""
        info = self.cache_info()
        assignment = info["assignment"]
        return (
            f"service totals: {self.total_stats.describe()}\n"
            f"caches: {info['plans']} plans; assignment "
            f"{assignment['hits']}h/{assignment['misses']}m; "
            f"{info['executors']} executors "
            f"({info['executor_hits']}h/{info['executor_misses']}m); "
            f"{info['fragment_entries']} fragment results"
        )

    # ------------------------------------------------------------------
    # Memoised per-assignment artifacts
    # ------------------------------------------------------------------
    def _reconcile_counters(self) -> dict[str, int]:
        """Snapshot of every delta-reconcile counter, flat-keyed.

        ``execute`` diffs two snapshots to attribute reconcile activity
        to one query.  Under concurrent queries increments may land in a
        neighbour's window — the counters are monotone, so totals stay
        exact even when per-query attribution is approximate.
        """
        counters: dict[str, int] = {}
        for prefix, info in (("assignment", self.assignment_cache.info()),
                             ("edge", self.edge_cache.info())):
            for key, value in info.items():
                if key.startswith("reconcile_"):
                    counters[f"{prefix}_{key[len('reconcile_'):]}"] = value
        runtime = self.runtime.cache_info()
        for key in ("fragment_kept", "fragment_evicted", "fragment_flushed",
                    "executor_kept", "executor_evicted", "executor_flushed"):
            counters[key] = runtime[key]
        return counters

    def _candidates_for(self, plan) -> IncrementalCandidates:
        """The incremental Λ maintainer for ``plan`` (caller holds lock).

        Built on the first cache-missing query over a plan; thereafter
        each policy change refreshes only the touched subjects' rows
        instead of re-deriving every subject × operation authorization.
        """
        entry = self._candidates_memo.get(id(plan))
        if entry is None:
            entry = (IncrementalCandidates(plan, self.policy,
                                           self.subject_names), plan)
            self._candidates_memo[id(plan)] = entry
        else:
            self._candidates_memo.move_to_end(id(plan))
        return entry[0]

    def _topology_for(self, user: str) -> NetworkTopology:
        """The network topology pricing ``user``'s queries (memoized)."""
        if self.topology is not None:
            return self.topology
        topology = self._user_topologies.get(user)
        if topology is None:
            topology = NetworkTopology.paper_defaults(user)
            self._user_topologies[user] = topology
        return topology

    def _memo_get_or_create(self, memo: _BoundedCache, key,
                            factory) -> tuple[object, bool]:
        """Double-checked get-or-insert; ``factory`` runs outside the lock.

        Returns ``(entry, was_cached)``.  ``was_cached`` is True only
        when the first check hit: a caller that loses the insert race
        gets the winner's entry back but still paid the factory cost,
        so it must not report a cache hit.
        """
        with self._lock:
            entry = memo.get(key)
            if entry is not None:
                memo.move_to_end(key)
                return entry, True
        created = factory()
        with self._lock:
            entry = memo.get(key)
            if entry is not None:
                memo.move_to_end(key)
                return entry, False
            memo[key] = created
        return created, False

    def _distributed_keys(
        self, outcome: AssignmentResult,
    ) -> tuple[DistributedKeys, bool]:
        """Key material per assignment, generated once and redistributed.

        Keyed by the :class:`~repro.core.keys.KeyAssignment`'s identity —
        cache-served assignments share it, so repeated queries reuse the
        same Paillier/symmetric material instead of regenerating it (the
        entry pins the assignment so the id stays valid).
        """
        entry, cached = self._memo_get_or_create(
            self._keys_memo, id(outcome.keys),
            lambda: (DistributedKeys.from_assignment(outcome.keys),
                     outcome.keys),
        )
        return entry[0], cached

    def _dispatch_plan(self, outcome: AssignmentResult,
                       user: str) -> DispatchPlan:
        """Fragment partitioning per (assignment, user), memoised."""
        entry, _ = self._memo_get_or_create(
            self._dispatch_memo, (id(outcome.extended), user),
            lambda: (dispatch(outcome.extended, outcome.keys,
                              owners=self.owners, user=user),
                     outcome.extended),
        )
        return entry[0]


@dataclass
class WorkloadSession:
    """One user's stream of queries over a shared :class:`QueryService`.

    ``outcomes`` keeps only the most recent
    :data:`_SESSION_OUTCOME_LIMIT` queries — each outcome pins its full
    result table and assignment, which must not grow without bound over
    a long-lived session; ``stats`` aggregates every query ever run.
    """

    service: QueryService
    user: str
    outcomes: list[QueryOutcome] = field(default_factory=list)
    stats: SessionStats = field(default_factory=SessionStats)

    def run(self, sql: str, schedule: str | None = None, *,
            budget: QueryBudget | None = None,
            token: CancellationToken | None = None) -> QueryOutcome:
        """Execute ``sql`` as this session's user and record the stats."""
        outcome = self.service.execute(sql, user=self.user,
                                       schedule=schedule,
                                       budget=budget, token=token)
        self.outcomes.append(outcome)
        del self.outcomes[:-_SESSION_OUTCOME_LIMIT]
        self.stats.observe(outcome)
        return outcome

    def describe(self) -> str:
        return f"session {self.user}: {self.stats.describe()}"

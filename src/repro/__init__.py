"""repro — a reproduction of *An Authorization Model for Multi-Provider
Queries* (De Capitani di Vimercati et al., VLDB).

The library implements the paper's authorization model end to end:
per-relation ``[P, E] → S`` authorizations with three visibility levels,
relation profiles tracking implicit information flow and attribute
equivalences, candidate computation for delegating query operations to
partially trusted cloud providers, minimal on-the-fly insertion of
encryption/decryption, key establishment, cost-based assignment, and
signed/encrypted sub-query dispatch — plus the substrates needed to run
it: a SQL front end, an in-memory relational engine with encrypted
execution, an encryption toolkit, a cloud cost model, a distributed
execution simulator, and a TPC-H workload generator.

Quickstart
----------
>>> from repro.paper_example import build_running_example
>>> from repro import compute_candidates
>>> example = build_running_example()
>>> lam = compute_candidates(example.plan, example.policy,
...                          example.subject_names)
>>> sorted(lam[example.having])
['U', 'Y']
"""

from repro.core import (
    ANY,
    Aggregate,
    AggregateFunction,
    Authorization,
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    BaseRelationNode,
    CandidateAssignment,
    CartesianProduct,
    ComparisonOp,
    Conjunction,
    Decrypt,
    Encrypt,
    EncryptionScheme,
    EquivalenceClasses,
    ExtendedPlan,
    GroupBy,
    Join,
    KeyAssignment,
    PlanNode,
    Policy,
    Projection,
    QueryKey,
    QueryPlan,
    Relation,
    RelationProfile,
    Schema,
    SchemeCapabilities,
    Selection,
    Subject,
    SubjectKind,
    SubjectView,
    Udf,
    authorized_assignees,
    check_relation,
    compute_candidates,
    equals,
    establish_keys,
    infer_plaintext_requirements,
    is_authorized_for_relation,
    minimally_extend,
    minimum_view_profiles,
    user_can_receive_result,
    value_equals,
    verify_assignment,
)

__version__ = "1.0.0"

__all__ = [
    "ANY", "Aggregate", "AggregateFunction", "Authorization",
    "AttributeComparisonPredicate", "AttributeValuePredicate",
    "BaseRelationNode", "CandidateAssignment", "CartesianProduct",
    "ComparisonOp", "Conjunction", "Decrypt", "Encrypt",
    "EncryptionScheme", "EquivalenceClasses", "ExtendedPlan", "GroupBy",
    "Join", "KeyAssignment", "PlanNode", "Policy", "Projection",
    "QueryKey", "QueryPlan", "Relation", "RelationProfile", "Schema",
    "SchemeCapabilities", "Selection", "Subject", "SubjectKind",
    "SubjectView", "Udf", "authorized_assignees", "check_relation",
    "compute_candidates", "equals", "establish_keys",
    "infer_plaintext_requirements", "is_authorized_for_relation",
    "minimally_extend", "minimum_view_profiles", "user_can_receive_result",
    "value_equals", "verify_assignment", "__version__",
]

"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro example              # Figures 3–8 (running example)
    python -m repro fig9 [--scale 0.1]   # per-query economics
    python -m repro fig10 [--scale 0.1]  # cumulative economics + savings
    python -m repro dispatch             # the Figure 8 dispatch table
    python -m repro ablate-mix           # uniform-visibility ablation
    python -m repro workload [--repeat 3] [--schedule parallel]
                    [--workers 4] [--join-strategy parallel-hash]
                                         # multi-user service session demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.ablation import mix_split_ablation
from repro.experiments.economics import run_economics
from repro.experiments.running_example import run_running_example


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Authorization Model for "
                    "Multi-Provider Queries' (VLDB).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "example", help="regenerate Figures 3-8 (the running example)")

    fig9 = commands.add_parser(
        "fig9", help="per-query TPC-H economics (Figure 9)")
    fig9.add_argument("--scale", type=float, default=0.1,
                      help="TPC-H scale factor for the estimates")
    fig9.add_argument("--queries", type=str, default="",
                      help="comma-separated query numbers (default: all)")

    fig10 = commands.add_parser(
        "fig10", help="cumulative TPC-H economics (Figure 10)")
    fig10.add_argument("--scale", type=float, default=0.1)

    commands.add_parser(
        "dispatch", help="print the Figure 8 dispatch table")

    ablate = commands.add_parser(
        "ablate-mix",
        help="UAPmix attribute-split ablation (uniform visibility)")
    ablate.add_argument("--scale", type=float, default=0.1)
    ablate.add_argument("--queries", type=str, default="3,5,10,18")

    workload = commands.add_parser(
        "workload",
        help="run a multi-user SQL workload through the service layer")
    workload.add_argument("--repeat", type=int, default=3,
                          help="times each user repeats each query")
    workload.add_argument("--schedule", type=str, default="parallel",
                          choices=("parallel", "sequential"),
                          help="fragment schedule for the runtime")
    workload.add_argument("--workers", type=int, default=0,
                          help="data-plane worker processes "
                               "(0 = inline single-core execution)")
    workload.add_argument("--join-strategy", type=str, default="hash",
                          help="join strategy: hash, parallel-hash, "
                               "or nested-loop")

    return parser


def run_workload(repeat: int, schedule: str, workers: int = 0,
                 join_strategy: str = "hash") -> str:
    """A small multi-user workload over the running example's service.

    Users U and Y repeat the paper's query (Y is entitled to the
    plaintext result: its view covers T and P); X is refused — the
    assignment pipeline blocks users the policy does not authorize for
    the result, before anything executes.  ``workers``/``join_strategy``
    select the data plane; invalid values exit with a clear message
    before the service is built.
    """
    from repro.engine.table import Table
    from repro.exceptions import UnauthorizedError
    from repro.paper_example import build_running_example
    from repro.parallel import ExecutionSettings
    from repro.service import QueryService

    try:
        settings = ExecutionSettings(workers=workers,
                                     join_strategy=join_strategy)
    except ValueError as error:
        raise SystemExit(f"workload: {error}") from None
    repeat = max(1, repeat)
    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        ("s1", 1980, "stroke", "tpa"),
        ("s2", 1975, "stroke", "tpa"),
        ("s3", 1990, "flu", "rest"),
        ("s4", 1960, "stroke", "surgery"),
        ("s5", 1955, "stroke", "surgery"),
    ])
    ins = Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 60.0), ("s5", 50.0),
    ])
    service = QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U", schedule=schedule, settings=settings,
    )
    sql = ("select T, avg(P) from Hosp join Ins on S=C "
           "where D='stroke' group by T having avg(P)>100")
    lines = [f"query: {sql}", ""]
    for user in ("U", "Y", "X"):
        session = service.session(user)
        try:
            for _ in range(repeat):
                outcome = session.run(sql)
            lines.append(f"  {outcome.describe()}")
            lines.append(f"  {session.describe()}")
        except UnauthorizedError as error:
            lines.append(f"  {user}: DENIED — {error}")
        lines.append("")
    lines.append(service.describe())
    return "\n".join(lines)


def _parse_queries(text: str) -> tuple[int, ...] | None:
    if not text:
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)

    if arguments.command == "example":
        print(run_running_example().describe())
    elif arguments.command == "fig9":
        results = run_economics(
            scale=arguments.scale,
            queries=_parse_queries(arguments.queries),
        )
        print(results.figure9_table())
    elif arguments.command == "fig10":
        results = run_economics(scale=arguments.scale)
        print(results.figure10_table())
    elif arguments.command == "dispatch":
        print(run_running_example().figure8.describe())
    elif arguments.command == "ablate-mix":
        queries = _parse_queries(arguments.queries) or (3, 5, 10, 18)
        totals = mix_split_ablation(queries, scale=arguments.scale)
        print(f"prefix split:      ${totals['prefix']:.6f}")
        print(f"alternating split: ${totals['alternating']:.6f}")
        penalty = totals["alternating"] / totals["prefix"]
        print(f"uniform-visibility penalty: {penalty:.2f}x")
    elif arguments.command == "workload":
        print(run_workload(arguments.repeat, arguments.schedule,
                           arguments.workers, arguments.join_strategy))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

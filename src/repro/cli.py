"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro example              # Figures 3–8 (running example)
    python -m repro fig9 [--scale 0.1]   # per-query economics
    python -m repro fig10 [--scale 0.1]  # cumulative economics + savings
    python -m repro dispatch             # the Figure 8 dispatch table
    python -m repro ablate-mix           # uniform-visibility ablation
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.ablation import mix_split_ablation
from repro.experiments.economics import run_economics
from repro.experiments.running_example import run_running_example


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Authorization Model for "
                    "Multi-Provider Queries' (VLDB).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "example", help="regenerate Figures 3-8 (the running example)")

    fig9 = commands.add_parser(
        "fig9", help="per-query TPC-H economics (Figure 9)")
    fig9.add_argument("--scale", type=float, default=0.1,
                      help="TPC-H scale factor for the estimates")
    fig9.add_argument("--queries", type=str, default="",
                      help="comma-separated query numbers (default: all)")

    fig10 = commands.add_parser(
        "fig10", help="cumulative TPC-H economics (Figure 10)")
    fig10.add_argument("--scale", type=float, default=0.1)

    commands.add_parser(
        "dispatch", help="print the Figure 8 dispatch table")

    ablate = commands.add_parser(
        "ablate-mix",
        help="UAPmix attribute-split ablation (uniform visibility)")
    ablate.add_argument("--scale", type=float, default=0.1)
    ablate.add_argument("--queries", type=str, default="3,5,10,18")

    return parser


def _parse_queries(text: str) -> tuple[int, ...] | None:
    if not text:
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)

    if arguments.command == "example":
        print(run_running_example().describe())
    elif arguments.command == "fig9":
        results = run_economics(
            scale=arguments.scale,
            queries=_parse_queries(arguments.queries),
        )
        print(results.figure9_table())
    elif arguments.command == "fig10":
        results = run_economics(scale=arguments.scale)
        print(results.figure10_table())
    elif arguments.command == "dispatch":
        print(run_running_example().figure8.describe())
    elif arguments.command == "ablate-mix":
        queries = _parse_queries(arguments.queries) or (3, 5, 10, 18)
        totals = mix_split_ablation(queries, scale=arguments.scale)
        print(f"prefix split:      ${totals['prefix']:.6f}")
        print(f"alternating split: ${totals['alternating']:.6f}")
        penalty = totals["alternating"] / totals["prefix"]
        print(f"uniform-visibility penalty: {penalty:.2f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

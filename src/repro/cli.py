"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro example              # Figures 3–8 (running example)
    python -m repro fig9 [--scale 0.1]   # per-query economics
    python -m repro fig10 [--scale 0.1]  # cumulative economics + savings
    python -m repro dispatch             # the Figure 8 dispatch table
    python -m repro ablate-mix           # uniform-visibility ablation
    python -m repro workload [--repeat 3] [--schedule parallel]
                    [--workers 4] [--join-strategy parallel-hash]
                    [--deadline-ms 500] [--cost-ceiling 0.01]
                                         # multi-user service session demo
    python -m repro metrics [--tenants 3] [--repeat 2]
                    [--deadline-ms 500] [--cost-ceiling 0.01]
                                         # gateway demo + Prometheus scrape

Every knob is validated at parse time: a bad value exits with status 2
and a one-line message naming the valid range, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.ablation import mix_split_ablation
from repro.experiments.economics import run_economics
from repro.experiments.running_example import run_running_example
from repro.parallel import JOIN_STRATEGIES

#: Upper bound for ``metrics --tenants``: the demo gateway is a smoke
#: scrape, not a load test.
MAX_TENANTS = 64


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        value = -1
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 0 (0 = inline execution), "
            f"got {text!r}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        value = 0.0
    if not value > 0.0:
        raise argparse.ArgumentTypeError(
            f"expected a number > 0, got {text!r}")
    return value


def _tenant_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        value = 0
    if not 1 <= value <= MAX_TENANTS:
        raise argparse.ArgumentTypeError(
            f"expected an integer in 1..{MAX_TENANTS}, got {text!r}")
    return value


def _deadline_ms(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        value = 0.0
    if not value > 0.0:
        raise argparse.ArgumentTypeError(
            f"expected a deadline in milliseconds > 0, got {text!r}")
    return value


def _cost_ceiling(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        value = 0.0
    if not value > 0.0:
        raise argparse.ArgumentTypeError(
            f"expected a cost ceiling in USD > 0, got {text!r}")
    return value


def _query_list(text: str) -> tuple[int, ...] | None:
    if not text.strip():
        return None
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated query numbers (e.g. 3,5,10), "
            f"got {text!r}") from None


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Authorization Model for "
                    "Multi-Provider Queries' (VLDB).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "example", help="regenerate Figures 3-8 (the running example)")

    fig9 = commands.add_parser(
        "fig9", help="per-query TPC-H economics (Figure 9)")
    fig9.add_argument("--scale", type=_positive_float, default=0.1,
                      help="TPC-H scale factor for the estimates (> 0)")
    fig9.add_argument("--queries", type=_query_list, default=None,
                      help="comma-separated query numbers (default: all)")

    fig10 = commands.add_parser(
        "fig10", help="cumulative TPC-H economics (Figure 10)")
    fig10.add_argument("--scale", type=_positive_float, default=0.1)

    commands.add_parser(
        "dispatch", help="print the Figure 8 dispatch table")

    ablate = commands.add_parser(
        "ablate-mix",
        help="UAPmix attribute-split ablation (uniform visibility)")
    ablate.add_argument("--scale", type=_positive_float, default=0.1)
    ablate.add_argument("--queries", type=_query_list,
                        default=(3, 5, 10, 18))

    workload = commands.add_parser(
        "workload",
        help="run a multi-user SQL workload through the service layer")
    workload.add_argument("--repeat", type=_positive_int, default=3,
                          help="times each user repeats each query (>= 1)")
    workload.add_argument("--schedule", type=str, default="parallel",
                          choices=("parallel", "sequential"),
                          help="fragment schedule for the runtime")
    workload.add_argument("--workers", type=_nonnegative_int, default=0,
                          help="data-plane worker processes "
                               "(0 = inline single-core execution)")
    workload.add_argument("--join-strategy", type=str, default="hash",
                          choices=JOIN_STRATEGIES,
                          help="join strategy for the data plane")
    workload.add_argument("--deadline-ms", type=_deadline_ms,
                          default=None,
                          help="per-query wall-clock deadline in "
                               "milliseconds (> 0; default: none)")
    workload.add_argument("--cost-ceiling", type=_cost_ceiling,
                          default=None,
                          help="per-query §7 cost ceiling in USD "
                               "(> 0; default: none)")

    metrics = commands.add_parser(
        "metrics",
        help="run a short gateway workload and dump a Prometheus scrape")
    metrics.add_argument("--tenants", type=_tenant_count, default=3,
                         help=f"tenants sharing the gateway "
                              f"(1..{MAX_TENANTS})")
    metrics.add_argument("--repeat", type=_positive_int, default=2,
                         help="queries per tenant (>= 1)")
    metrics.add_argument("--deadline-ms", type=_deadline_ms,
                         default=None,
                         help="per-query wall-clock deadline in "
                              "milliseconds (> 0; default: none)")
    metrics.add_argument("--cost-ceiling", type=_cost_ceiling,
                         default=None,
                         help="per-query §7 cost ceiling in USD "
                              "(> 0; default: none)")

    return parser


#: The paper's running-example query, shared by the demo commands.
DEMO_SQL = ("select T, avg(P) from Hosp join Ins on S=C "
            "where D='stroke' group by T having avg(P)>100")


def _demo_service(schedule: str = "parallel", settings=None):
    """The running example's service over a small concrete dataset."""
    from repro.engine.table import Table
    from repro.paper_example import build_running_example
    from repro.service import QueryService

    example = build_running_example()
    hosp = Table("Hosp", ("S", "B", "D", "T"), [
        ("s1", 1980, "stroke", "tpa"),
        ("s2", 1975, "stroke", "tpa"),
        ("s3", 1990, "flu", "rest"),
        ("s4", 1960, "stroke", "surgery"),
        ("s5", 1955, "stroke", "surgery"),
    ])
    ins = Table("Ins", ("C", "P"), [
        ("s1", 150.0), ("s2", 90.0), ("s3", 200.0),
        ("s4", 60.0), ("s5", 50.0),
    ])
    return QueryService(
        example.schema, example.policy, example.subjects,
        example.owners, {"H": {"Hosp": hosp}, "I": {"Ins": ins}},
        user="U", schedule=schedule, settings=settings,
    )


def _budget_from_flags(deadline_ms: float | None,
                       cost_ceiling: float | None):
    """The ``QueryBudget`` the CLI flags describe, or ``None``."""
    from repro.core.budget import QueryBudget

    if deadline_ms is None and cost_ceiling is None:
        return None
    return QueryBudget(
        deadline_seconds=None if deadline_ms is None
        else deadline_ms / 1000.0,
        cost_ceiling_usd=cost_ceiling)


def run_workload(repeat: int, schedule: str, workers: int = 0,
                 join_strategy: str = "hash",
                 deadline_ms: float | None = None,
                 cost_ceiling: float | None = None) -> str:
    """A small multi-user workload over the running example's service.

    Users U and Y repeat the paper's query (Y is entitled to the
    plaintext result: its view covers T and P); X is refused — the
    assignment pipeline blocks users the policy does not authorize for
    the result, before anything executes.  ``workers``/``join_strategy``
    select the data plane; ``deadline_ms``/``cost_ceiling`` bound each
    query with a :class:`~repro.core.budget.QueryBudget`.  Invalid
    values exit with a clear message before the service is built.
    """
    from repro.exceptions import QueryAbortedError, UnauthorizedError
    from repro.parallel import ExecutionSettings

    try:
        settings = ExecutionSettings(workers=workers,
                                     join_strategy=join_strategy)
    except ValueError as error:
        print(f"workload: {error}", file=sys.stderr)
        raise SystemExit(2) from None
    budget = _budget_from_flags(deadline_ms, cost_ceiling)
    repeat = max(1, repeat)
    service = _demo_service(schedule=schedule, settings=settings)
    sql = DEMO_SQL
    lines = [f"query: {sql}", ""]
    for user in ("U", "Y", "X"):
        session = service.session(user)
        try:
            for _ in range(repeat):
                outcome = session.run(sql, budget=budget)
            lines.append(f"  {outcome.describe()}")
            lines.append(f"  {session.describe()}")
        except UnauthorizedError as error:
            lines.append(f"  {user}: DENIED — {error}")
        except QueryAbortedError as error:
            lines.append(f"  {user}: ABORTED — {error}")
        lines.append("")
    lines.append(service.describe())
    return "\n".join(lines)


def run_metrics(tenants: int = 3, repeat: int = 2,
                deadline_ms: float | None = None,
                cost_ceiling: float | None = None) -> str:
    """Drive a demo gateway and return the Prometheus scrape.

    ``tenants`` weighted tenants (weights cycling 1..3, users
    alternating U and Y) each run the paper's query ``repeat`` times
    through a shared :class:`~repro.gateway.Gateway`; the return value
    is the registry's text exposition — admission counters, queue
    depths, fragment latencies, breaker states, cache hit rates, and
    (when ``deadline_ms``/``cost_ceiling`` budget the queries) the
    deadline/shed counters and budget-remaining histogram.  Queries the
    budget aborts or the predictor sheds are reported in the scrape,
    not raised.
    """
    from repro.exceptions import QueryAbortedError, SheddedError
    from repro.gateway import Gateway, TenantConfig

    budget = _budget_from_flags(deadline_ms, cost_ceiling)
    service = _demo_service()
    configs = [
        TenantConfig(f"tenant-{index}", weight=(index % 3) + 1,
                     user="U" if index % 2 == 0 else "Y")
        for index in range(tenants)
    ]
    gateway = Gateway(service, configs, max_inflight=2)
    try:
        for _ in range(max(1, repeat)):
            for config in configs:
                try:
                    gateway.execute(config.name, DEMO_SQL,
                                    budget=budget)
                except (QueryAbortedError, SheddedError):
                    continue  # counted in the scrape below
        return gateway.metrics_text()
    finally:
        gateway.close()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)

    if arguments.command == "example":
        print(run_running_example().describe())
    elif arguments.command == "fig9":
        results = run_economics(
            scale=arguments.scale,
            queries=arguments.queries,
        )
        print(results.figure9_table())
    elif arguments.command == "fig10":
        results = run_economics(scale=arguments.scale)
        print(results.figure10_table())
    elif arguments.command == "dispatch":
        print(run_running_example().figure8.describe())
    elif arguments.command == "ablate-mix":
        queries = arguments.queries or (3, 5, 10, 18)
        totals = mix_split_ablation(queries, scale=arguments.scale)
        print(f"prefix split:      ${totals['prefix']:.6f}")
        print(f"alternating split: ${totals['alternating']:.6f}")
        penalty = totals["alternating"] / totals["prefix"]
        print(f"uniform-visibility penalty: {penalty:.2f}x")
    elif arguments.command == "workload":
        print(run_workload(arguments.repeat, arguments.schedule,
                           arguments.workers, arguments.join_strategy,
                           arguments.deadline_ms, arguments.cost_ceiling))
    elif arguments.command == "metrics":
        print(run_metrics(arguments.tenants, arguments.repeat,
                          arguments.deadline_ms, arguments.cost_ceiling))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

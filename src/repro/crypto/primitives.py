"""Low-level cryptographic building blocks.

The sandbox offers no AES implementation, so the symmetric ciphers are
built from HMAC-SHA256 as a PRF: an HMAC-derived keystream XORed over the
plaintext, plus an HMAC tag for integrity.  This preserves the functional
contract the paper relies on (key-dependent, invertible, deterministic or
randomized per mode) and gives the cost model a measurable cost per byte.

The PRF is the innermost loop of every symmetric/OPE operation, so it is
built for batch throughput: HMAC key schedules are derived once per key
and reused via ``HMAC.copy()`` (the two key-pad compressions are paid
once, not per call), the keystream assembles whole 32-byte blocks in a
single ``join`` instead of growing a ``bytearray``, and ``xor_bytes``
XORs arbitrary-length strings as two big integers.  All outputs are
bit-identical to the straightforward per-call/per-byte formulations —
the property tests in ``tests/crypto`` hold the fast kernels to that.

Also provides canonical value encodings (values of any supported type to
bytes and back), random key material, and Miller-Rabin prime generation
for the Paillier and RSA modules.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from datetime import date

from repro.exceptions import CryptoError

_BLOCK = 32  # SHA-256 output size

#: Derive-once HMAC key schedules, keyed by the raw key bytes.  An
#: ``hmac.new`` call hashes both key pads before any data arrives;
#: caching the keyed state and ``copy()``-ing it per message halves the
#: compression count for short inputs.  Bounded: a full cache is simply
#: dropped (key counts are small and stable in practice).
_HMAC_CACHE_MAX = 512
_hmac_cache: dict[bytes, "hmac.HMAC"] = {}

#: Type tags for the canonical value encoding.
_TAG_NONE = b"N"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_DATE = b"D"
_TAG_BYTES = b"B"


def random_bytes(length: int) -> bytes:
    """Cryptographically secure random bytes."""
    return os.urandom(length)


def generate_key(length: int = 32) -> bytes:
    """A fresh symmetric key."""
    return random_bytes(length)


def keyed_hmac(key: bytes) -> "hmac.HMAC":
    """The cached keyed HMAC schedule for ``key``.

    Callers ``copy()`` the returned object per message; batch kernels
    fetch it once per column instead of paying the cache lookup per
    value.
    """
    keyed = _hmac_cache.get(key)
    if keyed is None:
        if len(_hmac_cache) >= _HMAC_CACHE_MAX:
            _hmac_cache.clear()
        keyed = hmac.new(key, digestmod=hashlib.sha256)
        _hmac_cache[key] = keyed
    return keyed


def prf(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 pseudo-random function (cached key schedule)."""
    mac = keyed_hmac(key).copy()
    mac.update(data)
    return mac.digest()


def keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """A deterministic keystream of ``length`` bytes from (key, iv).

    Block ``i`` is ``PRF(key, iv ‖ i)``; blocks are assembled in one
    ``join`` (no incremental ``bytearray`` growth) and the common
    one-block case returns a single truncated PRF call.
    """
    if length <= _BLOCK:
        return prf(key, iv + _ZERO_COUNTER)[:length]
    blocks = (length + _BLOCK - 1) // _BLOCK
    pack = struct.Struct(">Q").pack
    return b"".join(
        prf(key, iv + pack(counter)) for counter in range(blocks)
    )[:length]


_ZERO_COUNTER = struct.pack(">Q", 0)


def keystream_many(key: bytes, ivs: "list[bytes]",
                   lengths: "list[int]") -> list[bytes]:
    """Bulk :func:`keystream`: one keyed-HMAC sweep for a whole column.

    The key schedule is fetched once and ``copy()``-ed per block, so a
    column of short values pays one cache lookup total instead of one
    per value.  Outputs are bit-identical to per-value
    :func:`keystream` calls.
    """
    keyed = keyed_hmac(key)
    pack = struct.Struct(">Q").pack
    out: list[bytes] = []
    append = out.append
    for iv, length in zip(ivs, lengths):
        if length <= _BLOCK:
            mac = keyed.copy()
            mac.update(iv + _ZERO_COUNTER)
            append(mac.digest()[:length])
            continue
        blocks = (length + _BLOCK - 1) // _BLOCK
        parts = []
        for counter in range(blocks):
            mac = keyed.copy()
            mac.update(iv + pack(counter))
            parts.append(mac.digest())
        append(b"".join(parts)[:length])
    return out


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """Bytewise XOR of two equal-length strings (big-integer kernel)."""
    size = len(left)
    if size != len(right):
        raise CryptoError("xor operands must have equal length")
    return (
        int.from_bytes(left, "big") ^ int.from_bytes(right, "big")
    ).to_bytes(size, "big")


def encode_value(value: object) -> bytes:
    """Canonical, type-tagged byte encoding of a supported value.

    Supports ``None``, ``int``, ``float``, ``str``, ``bytes``, and
    :class:`datetime.date`.  The encoding is injective per type, so
    deterministic encryption preserves equality semantics exactly.
    """
    if value is None:
        return _TAG_NONE
    if isinstance(value, bool):
        return _TAG_INT + struct.pack(">q", int(value))
    if isinstance(value, int):
        if -(2 ** 63) <= value < 2 ** 63:
            return _TAG_INT + struct.pack(">q", value)
        raise CryptoError(f"integer out of encodable range: {value}")
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        return _TAG_STR + value.encode("utf-8")
    if isinstance(value, date):
        return _TAG_DATE + struct.pack(">q", value.toordinal())
    if isinstance(value, bytes):
        return _TAG_BYTES + value
    raise CryptoError(f"unsupported value type: {type(value).__name__}")


def decode_value(data: bytes) -> object:
    """Inverse of :func:`encode_value`."""
    if not data:
        raise CryptoError("empty encoded value")
    tag, body = data[:1], data[1:]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_INT:
        return struct.unpack(">q", body)[0]
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", body)[0]
    if tag == _TAG_STR:
        return body.decode("utf-8")
    if tag == _TAG_DATE:
        return date.fromordinal(struct.unpack(">q", body)[0])
    if tag == _TAG_BYTES:
        return body
    raise CryptoError(f"unknown type tag {tag!r}")


def _is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if candidate % p == 0:
            return candidate == p
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = int.from_bytes(random_bytes(16), "big") % (candidate - 3) + 2
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """A random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError("prime size too small")
    while True:
        candidate = int.from_bytes(random_bytes((bits + 7) // 8), "big")
        candidate |= (1 << (bits - 1)) | 1  # force exact bit length, odd
        candidate &= (1 << bits) - 1
        if _is_probable_prime(candidate):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse via the extended Euclid algorithm."""
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Timing-safe byte-string comparison."""
    return hmac.compare_digest(left, right)

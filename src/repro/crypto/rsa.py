"""RSA signatures and hybrid encryption for sub-query dispatch (§6).

The paper dispatches each sub-query as ``[[q, keys] priU ] pubS``: signed
with the user's private key (authenticity/integrity) and encrypted with
the recipient's public key (confidentiality).  This module provides the
matching primitives:

* :func:`generate_keypair` — textbook RSA with Miller-Rabin primes;
* :meth:`RsaPrivateKey.sign` / :meth:`RsaPublicKey.verify` — full-domain
  hash signatures over SHA-256;
* :meth:`RsaPublicKey.encrypt` / :meth:`RsaPrivateKey.decrypt` — hybrid
  encryption (RSA-wrapped fresh symmetric key + randomized stream body),
  so payloads of any size are supported.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.crypto import primitives
from repro.crypto.symmetric import RandomizedCipher
from repro.exceptions import CryptoError

#: Standard public exponent.
PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half of an RSA keypair."""

    n: int
    e: int = PUBLIC_EXPONENT

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Whether ``signature`` is valid for ``message``."""
        try:
            sig_int = int.from_bytes(signature, "big")
        except (TypeError, ValueError):
            return False
        if not 0 < sig_int < self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        return recovered == _digest_int(message, self.n)

    def encrypt(self, payload: bytes) -> bytes:
        """Hybrid-encrypt ``payload`` for the key's owner."""
        session_key = primitives.generate_key(32)
        wrapped = pow(int.from_bytes(session_key, "big"), self.e, self.n)
        wrapped_bytes = wrapped.to_bytes(_modulus_bytes(self.n), "big")
        body = RandomizedCipher(session_key).encrypt(payload)
        return struct.pack(">I", len(wrapped_bytes)) + wrapped_bytes + body


@dataclass(frozen=True)
class RsaPrivateKey:
    """Private half of an RSA keypair."""

    public: RsaPublicKey
    d: int

    def sign(self, message: bytes) -> bytes:
        """Full-domain-hash signature over SHA-256."""
        digest = _digest_int(message, self.public.n)
        signature = pow(digest, self.d, self.public.n)
        return signature.to_bytes(_modulus_bytes(self.public.n), "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`."""
        if len(ciphertext) < 4:
            raise CryptoError("truncated hybrid ciphertext")
        (wrapped_len,) = struct.unpack(">I", ciphertext[:4])
        if len(ciphertext) < 4 + wrapped_len:
            raise CryptoError("truncated hybrid ciphertext")
        wrapped = int.from_bytes(ciphertext[4:4 + wrapped_len], "big")
        session_int = pow(wrapped, self.d, self.public.n)
        session_key = session_int.to_bytes(32, "big")
        body = ciphertext[4 + wrapped_len:]
        plaintext = RandomizedCipher(session_key).decrypt(body)
        if not isinstance(plaintext, bytes):
            raise CryptoError("hybrid payload must decode to bytes")
        return plaintext


def generate_keypair(bits: int = 1024) -> tuple[RsaPublicKey, RsaPrivateKey]:
    """Generate an RSA keypair (1024 bits keeps the simulator snappy)."""
    while True:
        p = primitives.generate_prime(bits // 2)
        q = primitives.generate_prime(bits // 2)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = primitives.modinv(PUBLIC_EXPONENT, phi)
        except CryptoError:
            continue
        public = RsaPublicKey(n=n)
        return public, RsaPrivateKey(public=public, d=d)


def _digest_int(message: bytes, modulus: int) -> int:
    """SHA-256 digest expanded to the modulus size (full-domain hash)."""
    width = _modulus_bytes(modulus)
    out = bytearray()
    counter = 0
    while len(out) < width:
        out += hashlib.sha256(
            message + struct.pack(">I", counter)
        ).digest()
        counter += 1
    return int.from_bytes(bytes(out[:width]), "big") % modulus


def _modulus_bytes(modulus: int) -> int:
    return (modulus.bit_length() + 7) // 8

"""The Paillier additively homomorphic cryptosystem.

Used by the paper's tool to evaluate ``sum``/``avg`` aggregates over
encrypted values (§7).  This is a complete textbook implementation with
the usual ``g = n + 1`` simplification:

* ``Enc(m) = (n+1)^m · r^n  mod n²``
* ``Enc(a) · Enc(b) = Enc(a + b)`` — homomorphic addition
* ``Enc(a)^k = Enc(a · k)`` — plaintext multiplication

Fixed-point scaling supports decimal values (TPC-H prices), and negative
numbers are represented in the upper half of the plaintext space.

The hot path is built for batch encryption/decryption of whole columns:

* **binomial encrypt** — with ``g = n + 1``, ``(n+1)^m ≡ 1 + n·m
  (mod n²)``, so the message part is one multiply instead of a modular
  exponentiation (:meth:`PaillierPublicKey.encrypt`;
  :meth:`~PaillierPublicKey.encrypt_reference` keeps the double-``pow``
  textbook formula as the bit-identical reference);
* **obfuscator pool** — the random ``r^n mod n²`` factors are
  precomputed in batches off the per-value path: each refill draws a few
  fresh units, raises them to ``n`` once, and expands them into many
  obfuscators by modular products (a product of ``r_i^n`` is
  ``(∏ r_i)^n``, still a valid obfuscator; adequate randomness for this
  simulator, not a hardened RNG — real deployments precompute true
  ``r^n`` offline, which is exactly the cost model's assumption).
  Each key guards its pool with its own lock, and draining past the
  low-water mark kicks off a *background* daemon refill — the expensive
  exponentiations run off every encrypting thread's critical path;
* **CRT decrypt** — :func:`generate_keypair` retains ``p``/``q``, so
  decryption works mod ``p²`` and ``q²`` and recombines, roughly 3–4×
  cheaper than the ``λ/µ`` formula, which survives bit-identical as
  :meth:`PaillierPrivateKey.decrypt_reference`;
* ``encrypt_many``/``decrypt_many`` bulk APIs and identity-aware
  ``__radd__`` so ``sum(ciphertexts)`` folds homomorphically.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto import primitives
from repro.exceptions import CryptoError

#: Fixed-point scale for fractional plaintexts (six decimal digits).
FIXED_POINT_SCALE = 10 ** 6

#: Obfuscator pool shape: each refill computes ``_POOL_SEEDS`` true
#: ``r^n`` exponentiations and stretches them into ``_POOL_TARGET``
#: obfuscators by modular products, so the amortized per-encryption cost
#: is ``_POOL_SEEDS/_POOL_TARGET`` exponentiations plus ~two multiplies.
_POOL_SEEDS = 4
_POOL_TARGET = 128

#: Popping the pool below this many entries starts a background daemon
#: refill, so sibling-fragment encrypts keep draining a warm pool
#: instead of stalling on a synchronous refill at empty.
_POOL_LOW_WATER = 32

#: Guards only the *lazy creation* of each key's pool lock.  The pool
#: itself is protected by the per-key lock (public-key objects are
#: shared across per-subject keystores and the runtime encrypts sibling
#: fragments concurrently — check-then-pop must be atomic), so two keys
#: never serialize on each other's refills.  Locks live in the instance
#: ``__dict__`` and are excluded from pickling/copying by
#: ``__getstate__``.
_LOCKS_GUARD = threading.Lock()


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, n²)`` plus the precomputed obfuscator pool."""

    n: int

    @property
    def n_squared(self) -> int:
        n2 = self.__dict__.get("_n2")
        if n2 is None:
            n2 = self.n * self.n
            object.__setattr__(self, "_n2", n2)
        return n2

    def encrypt(self, value: int | float,
                obfuscator: int | None = None) -> "PaillierCiphertext":
        """Encrypt a number (floats are fixed-point scaled).

        Uses the binomial shortcut ``Enc(m) = (1 + n·m) · r^n mod n²``;
        ``obfuscator`` (an ``r^n mod n²`` value) may be supplied
        explicitly — the property tests use that to pin fast and
        reference paths to the same randomness.
        """
        message = _encode(value, self.n)
        n2 = self.n_squared
        if obfuscator is None:
            obfuscator = self._next_obfuscator()
        return PaillierCiphertext(
            self, ((1 + self.n * message) * obfuscator) % n2
        )

    def encrypt_reference(self, value: int | float,
                          obfuscator: int | None = None,
                          ) -> "PaillierCiphertext":
        """The seed's double-``pow`` encryption (bit-identical reference).

        Given the same ``obfuscator``, :meth:`encrypt` and this method
        produce the same ciphertext; this one pays a full modular
        exponentiation for the message part.
        """
        message = _encode(value, self.n)
        n2 = self.n_squared
        if obfuscator is None:
            r = self._random_unit()
            obfuscator = pow(r, self.n, n2)
        cipher = (pow(self.n + 1, message, n2) * obfuscator) % n2
        return PaillierCiphertext(self, cipher)

    def encrypt_many(self, values: Sequence[int | float],
                     ) -> list["PaillierCiphertext"]:
        """Bulk :meth:`encrypt`: one dispatch per column."""
        return [
            PaillierCiphertext(self, v) for v in self.encrypt_values(values)
        ]

    def encrypt_values(self, values: Sequence[int | float]) -> list[int]:
        """Bulk encrypt to *raw* ciphertext integers.

        The worker-transport form: parallel chunks ship plain ints and
        the caller rebuilds :class:`PaillierCiphertext` wrappers, so
        nothing but the numbers crosses the process boundary.
        """
        n, n2 = self.n, self.n_squared
        encode, draw = _encode, self._next_obfuscator
        return [((1 + n * encode(v, n)) * draw()) % n2 for v in values]

    # -- obfuscator pool ------------------------------------------------
    def precompute_obfuscators(self, count: int = _POOL_TARGET) -> None:
        """Refill the ``r^n`` pool eagerly (off the encryption hot path)."""
        target = max(count, _POOL_TARGET)
        seeds = self._pool_seeds()
        with self._pool_lock:
            self._extend_pool(seeds, target)

    def _next_obfuscator(self) -> int:
        lock = self._pool_lock
        start_refill = False
        with lock:
            pool = self._pool
            if not pool:
                # Empty pool: refill synchronously — callers need a
                # value now, whatever a background refill is up to.
                self._extend_pool(self._pool_seeds(), _POOL_TARGET)
            value = pool.pop()
            if (len(pool) < _POOL_LOW_WATER
                    and not self.__dict__.get("_refilling")):
                object.__setattr__(self, "_refilling", True)
                start_refill = True
        if start_refill:
            threading.Thread(
                target=self._background_refill, daemon=True).start()
        return value

    def _background_refill(self) -> None:
        """Daemon-thread refill: the pows run outside the pool lock."""
        try:
            seeds = self._pool_seeds()
            with self._pool_lock:
                self._extend_pool(seeds, _POOL_TARGET)
        finally:
            object.__setattr__(self, "_refilling", False)

    @property
    def _pool_lock(self) -> threading.Lock:
        lock = self.__dict__.get("_lock")
        if lock is None:
            with _LOCKS_GUARD:
                lock = self.__dict__.get("_lock")
                if lock is None:
                    lock = threading.Lock()
                    object.__setattr__(self, "_lock", lock)
        return lock

    @property
    def _pool(self) -> list[int]:
        # Callers hold _pool_lock (lazy init is a check-then-set too).
        pool = self.__dict__.get("_obfuscators")
        if pool is None:
            pool = []
            object.__setattr__(self, "_obfuscators", pool)
        return pool

    def _pool_seeds(self) -> list[int]:
        """The ``_POOL_SEEDS`` true ``r^n`` exponentiations of a refill.

        Lock-free: only :func:`os.urandom` and arithmetic on the frozen
        modulus, so refilling threads pay the expensive pows without
        blocking concurrent encrypts.
        """
        n, n2 = self.n, self.n_squared
        return [pow(self._random_unit(), n, n2) for _ in range(_POOL_SEEDS)]

    def _extend_pool(self, seeds: list[int], target: int) -> None:
        # Caller holds _pool_lock.
        n2 = self.n_squared
        pool = self._pool
        if len(pool) >= target:
            return
        mix = seeds[-1]
        while len(pool) < target:
            for seed in seeds:
                mix = (mix * seed) % n2
                pool.append(mix)

    # -- worker transport ----------------------------------------------
    def __getstate__(self) -> dict[str, int]:
        # Only the modulus travels: the obfuscator pool, its lock, and
        # the memoized n² are per-process state, rebuilt lazily on the
        # receiving side.  (Also what keeps deepcopy lock-free.)
        return {"n": self.n}

    def __setstate__(self, state: dict[str, int]) -> None:
        object.__setattr__(self, "n", state["n"])

    def _random_unit(self) -> int:
        """A uniform unit of Z*_n (``gcd(r, n) = 1``, so ``r^n`` is a
        unit mod n² and every ciphertext stays decryptable)."""
        size = (self.n.bit_length() + 7) // 8
        while True:
            r = int.from_bytes(primitives.random_bytes(size), "big") % self.n
            if r > 1 and math.gcd(r, self.n) == 1:
                return r


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private parameters (``λ = lcm(p-1, q-1)``, ``µ = λ⁻¹ mod n``).

    When the prime factors ``p``/``q`` are retained (the default from
    :func:`generate_keypair`), decryption runs via the Chinese Remainder
    Theorem over the half-size moduli; without them it falls back to the
    ``λ/µ`` formula, which also survives as
    :meth:`decrypt_reference` — the two are bit-identical.
    """

    public: PaillierPublicKey
    lam: int
    mu: int
    p: int | None = None
    q: int | None = None

    def decrypt(self, ciphertext: "PaillierCiphertext") -> float | int:
        """Recover the (possibly fractional, possibly negative) plaintext."""
        return _decode(self._decrypt_message(ciphertext), self.public.n)

    def decrypt_reference(self,
                          ciphertext: "PaillierCiphertext") -> float | int:
        """Reference ``λ/µ`` decryption (ignores the CRT shortcut)."""
        return _decode(self._decrypt_message_reference(ciphertext),
                       self.public.n)

    def decrypt_raw(self, ciphertext: "PaillierCiphertext") -> int:
        """Recover the raw fixed-point integer (no descaling)."""
        n = self.public.n
        message = self._decrypt_message(ciphertext)
        if message > n // 2:
            message -= n
        return message

    def decrypt_many(self, ciphertexts: Iterable["PaillierCiphertext"],
                     pool=None) -> list[float | int]:
        """Bulk :meth:`decrypt`: one dispatch per column.

        With a :class:`~repro.parallel.WorkerPool` the column partitions
        into per-worker chunks of raw ciphertext integers — CRT decrypt
        dominates the cost, so throughput scales near-linearly with
        workers — reassembled in order, bit-identical to the inline
        loop.  Key-membership checks stay parent-side.
        """
        cts = list(ciphertexts)
        if pool is not None and pool.should_parallelize(len(cts)):
            n = self.public.n
            for ciphertext in cts:
                if ciphertext.public.n != n:
                    raise CryptoError(
                        "ciphertext under a different Paillier key")
            from repro.parallel import kernels

            return pool.map_chunks(
                kernels.paillier_decrypt_chunk, kernels.dumps(self),
                [ciphertext.value for ciphertext in cts])
        decode, n = _decode, self.public.n
        decrypt = self._decrypt_message
        return [decode(decrypt(c), n) for c in cts]

    def decrypt_values(self, values: Sequence[int]) -> list[float | int]:
        """Bulk decrypt *raw* ciphertext integers (worker-transport form).

        Raw ints carry no public key to check against — key membership
        is the caller's job before stripping the wrappers.
        """
        decode, n = _decode, self.public.n
        message = self._message_from_int
        return [decode(message(v), n) for v in values]

    # -- internals ------------------------------------------------------
    def _decrypt_message(self, ciphertext: "PaillierCiphertext") -> int:
        """The plaintext residue in ``[0, n)`` (CRT when p/q are held)."""
        if ciphertext.public.n != self.public.n:
            raise CryptoError("ciphertext under a different Paillier key")
        return self._message_from_int(ciphertext.value)

    def _message_from_int(self, cipher: int) -> int:
        if self.p is None or self.q is None:
            return self._reference_message(cipher)
        p, q, n = self.p, self.q, self.public.n
        p2, q2, hp, hq, q_inv = self._crt_parts()
        mp = ((pow(cipher % p2, p - 1, p2) - 1) // p) * hp % p
        mq = ((pow(cipher % q2, q - 1, q2) - 1) // q) * hq % q
        return (mq + q * ((mp - mq) * q_inv % p)) % n

    def _decrypt_message_reference(self,
                                   ciphertext: "PaillierCiphertext") -> int:
        if ciphertext.public.n != self.public.n:
            raise CryptoError("ciphertext under a different Paillier key")
        return self._reference_message(ciphertext.value)

    def _reference_message(self, cipher: int) -> int:
        n = self.public.n
        n2 = self.public.n_squared
        u = pow(cipher, self.lam, n2)
        return ((u - 1) // n * self.mu) % n

    def _crt_parts(self) -> tuple[int, int, int, int, int]:
        """Memoized ``(p², q², hp, hq, q⁻¹ mod p)``.

        ``hp = L_p((n+1)^(p-1) mod p²)⁻¹ mod p`` with ``L_p(x) =
        (x-1)/p`` (and symmetrically for ``q``) — the per-prime analogue
        of ``µ``.
        """
        parts = self.__dict__.get("_crt")
        if parts is None:
            p, q, n = self.p, self.q, self.public.n
            assert p is not None and q is not None
            p2, q2 = p * p, q * q
            hp = primitives.modinv(
                (pow(n + 1, p - 1, p2) - 1) // p, p)
            hq = primitives.modinv(
                (pow(n + 1, q - 1, q2) - 1) // q, q)
            q_inv = primitives.modinv(q, p)
            parts = (p2, q2, hp, hq, q_inv)
            object.__setattr__(self, "_crt", parts)
        return parts


@dataclass(frozen=True)
class PaillierCiphertext:
    """A ciphertext with its public key, supporting ``+``, ``sum()``, ``*``."""

    public: PaillierPublicKey
    value: int

    def __add__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        if not isinstance(other, PaillierCiphertext):
            return NotImplemented
        if other.public.n != self.public.n:
            raise CryptoError("cannot add ciphertexts under different keys")
        return PaillierCiphertext(
            self.public, (self.value * other.value) % self.public.n_squared
        )

    def __radd__(self, other: object) -> "PaillierCiphertext":
        """Identity-aware right addition so ``sum(ciphertexts)`` works:
        the implicit integer ``0`` start value folds to identity."""
        if isinstance(other, int) and other == 0:
            return self
        if isinstance(other, PaillierCiphertext):
            return other.__add__(self)
        return NotImplemented

    def add_plain(self, value: int | float) -> "PaillierCiphertext":
        """Homomorphically add a plaintext constant (binomial form)."""
        message = _encode(value, self.public.n)
        n2 = self.public.n_squared
        return PaillierCiphertext(
            self.public,
            (self.value * (1 + self.public.n * message)) % n2,
        )

    def multiply_plain(self, factor: int) -> "PaillierCiphertext":
        """Homomorphically multiply by a plaintext integer."""
        if not isinstance(factor, int):
            raise CryptoError("plaintext factors must be integers")
        exponent = factor % self.public.n
        return PaillierCiphertext(
            self.public, pow(self.value, exponent, self.public.n_squared)
        )


def generate_keypair(bits: int = 512) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``bits``-bit modulus.

    512 bits keeps tests fast; real deployments use 2048+.  The private
    key retains ``p``/``q`` so decryption takes the CRT fast path.
    """
    half = bits // 2
    while True:
        p = primitives.generate_prime(half)
        q = primitives.generate_prime(half)
        if p != q:
            break
    n = p * q
    lam = _lcm(p - 1, q - 1)
    mu = primitives.modinv(lam, n)
    public = PaillierPublicKey(n)
    return public, PaillierPrivateKey(public, lam, mu, p=p, q=q)


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)


def _encode(value: int | float, n: int) -> int:
    """Fixed-point encode; negatives go to the upper half of Z_n."""
    scaled = round(value * FIXED_POINT_SCALE)
    if abs(scaled) > n // 4:
        raise CryptoError(f"plaintext {value} out of range for modulus")
    return scaled % n


def _decode(message: int, n: int) -> float | int:
    if message > n // 2:
        message -= n
    if message % FIXED_POINT_SCALE == 0:
        return message // FIXED_POINT_SCALE
    return message / FIXED_POINT_SCALE

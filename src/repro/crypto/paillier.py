"""The Paillier additively homomorphic cryptosystem.

Used by the paper's tool to evaluate ``sum``/``avg`` aggregates over
encrypted values (§7).  This is a complete textbook implementation with
the usual ``g = n + 1`` simplification:

* ``Enc(m) = (n+1)^m · r^n  mod n²``
* ``Enc(a) · Enc(b) = Enc(a + b)`` — homomorphic addition
* ``Enc(a)^k = Enc(a · k)`` — plaintext multiplication

Fixed-point scaling supports decimal values (TPC-H prices), and negative
numbers are represented in the upper half of the plaintext space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import primitives
from repro.exceptions import CryptoError

#: Fixed-point scale for fractional plaintexts (six decimal digits).
FIXED_POINT_SCALE = 10 ** 6


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public parameters ``(n, n²)``."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    def encrypt(self, value: int | float) -> "PaillierCiphertext":
        """Encrypt a number (floats are fixed-point scaled)."""
        message = _encode(value, self.n)
        r = self._random_unit()
        n2 = self.n_squared
        cipher = (pow(self.n + 1, message, n2) * pow(r, self.n, n2)) % n2
        return PaillierCiphertext(self, cipher)

    def _random_unit(self) -> int:
        while True:
            r = int.from_bytes(
                primitives.random_bytes((self.n.bit_length() + 7) // 8), "big"
            ) % self.n
            if r > 1:
                return r


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private parameters (``λ = lcm(p-1, q-1)``, ``µ = λ⁻¹ mod n``)."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, ciphertext: "PaillierCiphertext") -> float | int:
        """Recover the (possibly fractional, possibly negative) plaintext."""
        if ciphertext.public.n != self.public.n:
            raise CryptoError("ciphertext under a different Paillier key")
        n = self.public.n
        n2 = self.public.n_squared
        u = pow(ciphertext.value, self.lam, n2)
        message = ((u - 1) // n * self.mu) % n
        return _decode(message, n)

    def decrypt_raw(self, ciphertext: "PaillierCiphertext") -> int:
        """Recover the raw fixed-point integer (no descaling)."""
        if ciphertext.public.n != self.public.n:
            raise CryptoError("ciphertext under a different Paillier key")
        n = self.public.n
        n2 = self.public.n_squared
        u = pow(ciphertext.value, self.lam, n2)
        message = ((u - 1) // n * self.mu) % n
        if message > n // 2:
            message -= n
        return message


@dataclass(frozen=True)
class PaillierCiphertext:
    """A ciphertext with its public key, supporting ``+`` and ``*``."""

    public: PaillierPublicKey
    value: int

    def __add__(self, other: "PaillierCiphertext") -> "PaillierCiphertext":
        if not isinstance(other, PaillierCiphertext):
            return NotImplemented
        if other.public.n != self.public.n:
            raise CryptoError("cannot add ciphertexts under different keys")
        return PaillierCiphertext(
            self.public, (self.value * other.value) % self.public.n_squared
        )

    def add_plain(self, value: int | float) -> "PaillierCiphertext":
        """Homomorphically add a plaintext constant."""
        message = _encode(value, self.public.n)
        n2 = self.public.n_squared
        return PaillierCiphertext(
            self.public,
            (self.value * pow(self.public.n + 1, message, n2)) % n2,
        )

    def multiply_plain(self, factor: int) -> "PaillierCiphertext":
        """Homomorphically multiply by a plaintext integer."""
        if not isinstance(factor, int):
            raise CryptoError("plaintext factors must be integers")
        exponent = factor % self.public.n
        return PaillierCiphertext(
            self.public, pow(self.value, exponent, self.public.n_squared)
        )


def generate_keypair(bits: int = 512) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``bits``-bit modulus.

    512 bits keeps tests fast; real deployments use 2048+.
    """
    half = bits // 2
    while True:
        p = primitives.generate_prime(half)
        q = primitives.generate_prime(half)
        if p != q:
            break
    n = p * q
    lam = _lcm(p - 1, q - 1)
    mu = primitives.modinv(lam, n)
    public = PaillierPublicKey(n)
    return public, PaillierPrivateKey(public, lam, mu)


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)


def _encode(value: int | float, n: int) -> int:
    """Fixed-point encode; negatives go to the upper half of Z_n."""
    scaled = round(value * FIXED_POINT_SCALE)
    if abs(scaled) > n // 4:
        raise CryptoError(f"plaintext {value} out of range for modulus")
    return scaled % n


def _decode(message: int, n: int) -> float | int:
    if message > n // 2:
        message -= n
    if message % FIXED_POINT_SCALE == 0:
        return message // FIXED_POINT_SCALE
    return message / FIXED_POINT_SCALE

"""Encryption toolkit: the schemes the paper's tool relies on (§7).

* randomized + deterministic symmetric encryption (HMAC-PRF stream
  cipher standing in for AES — see DESIGN.md substitutions);
* the Paillier additively homomorphic cryptosystem (``sum``/``avg``);
* order-preserving encryption (range conditions);
* RSA signatures and hybrid encryption for sub-query dispatch;
* key management bridging model-level query keys to cipher material.

Everything on the encrypted-execution hot path is built as columnar
batch kernels: ciphers derive their subkeys once and expose
``encrypt_many``/``decrypt_many``, deterministic/OPE encryption is
equality-aware memoized, and Paillier uses the binomial ``g = n + 1``
shortcut, a precomputed ``r^n`` obfuscator pool, and CRT decryption
(with bit-identical ``*_reference`` paths kept alongside).  See
``benchmarks/bench_crypto.py`` for the measured fast-vs-seed ratios
that calibrate ``repro.cost.factors``.
"""

from repro.crypto.keymanager import DistributedKeys, KeyMaterial, KeyStore
from repro.crypto.ope import OpeCipher, decode_numeric, encode_orderable
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.crypto.paillier import generate_keypair as generate_paillier_keypair
from repro.crypto.primitives import (
    decode_value,
    encode_value,
    generate_key,
    generate_prime,
    prf,
)
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.rsa import generate_keypair as generate_rsa_keypair
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher

__all__ = [
    "DeterministicCipher", "DistributedKeys", "KeyMaterial", "KeyStore",
    "OpeCipher", "PaillierCiphertext", "PaillierPrivateKey",
    "PaillierPublicKey", "RandomizedCipher", "RsaPrivateKey",
    "RsaPublicKey", "decode_numeric", "decode_value", "encode_orderable",
    "encode_value", "generate_key", "generate_paillier_keypair",
    "generate_prime", "generate_rsa_keypair", "prf",
]

"""Key material management for query execution.

Bridges the model layer (:class:`repro.core.keys.QueryKey` — *which*
attributes share a key and under *which* scheme) and the executable
ciphers of this package.  A :class:`KeyStore` generates and holds the
actual key material for each query key; per-subject stores hold only the
keys distributed to that subject (§6), so the runtime reproduces the
paper's key-distribution discipline faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.keys import KeyAssignment, QueryKey
from repro.core.requirements import EncryptionScheme
from repro.crypto import primitives
from repro.crypto.ope import OpeCipher
from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.exceptions import KeyManagementError


@dataclass
class KeyMaterial:
    """Concrete key material for one :class:`QueryKey`.

    Cipher instances are memoized per material (``*_cipher`` accessors):
    constructing a cipher derives its HMAC subkeys, so the engine's
    bulk column transforms reuse one instance per key instead of paying
    the derivation per cell — and the deterministic/OPE memos accumulate
    across calls, which is where the equality-aware speedups live.
    """

    query_key: QueryKey
    symmetric: bytes | None = None
    paillier_public: PaillierPublicKey | None = None
    paillier_private: PaillierPrivateKey | None = None

    @property
    def name(self) -> str:
        """The query key's name (``kSC``, ``kP``, ...)."""
        return self.query_key.name

    @property
    def scheme(self) -> EncryptionScheme:
        """The encryption scheme attached to the key."""
        return self.query_key.scheme

    def deterministic_cipher(self) -> DeterministicCipher:
        """The memoized :class:`DeterministicCipher` for this key."""
        return self._cached_cipher("det", DeterministicCipher)

    def randomized_cipher(self) -> RandomizedCipher:
        """The memoized :class:`RandomizedCipher` for this key."""
        return self._cached_cipher("rand", RandomizedCipher)

    def ope_cipher(self) -> OpeCipher:
        """The memoized :class:`OpeCipher` for this key."""
        return self._cached_cipher("ope", OpeCipher)

    def recovery_cipher(self) -> RandomizedCipher:
        """The randomized cipher carried alongside OPE tokens.

        OPE tokens only compare; the recoverable plaintext travels in a
        randomized ciphertext under this derived subkey.
        """
        cache = self._cipher_cache()
        cipher = cache.get("recovery")
        if cipher is None:
            cipher = RandomizedCipher(
                primitives.prf(_require_symmetric(self), b"recovery")
            )
            cache["recovery"] = cipher
        return cipher

    def _cached_cipher(self, slot: str, factory):
        cache = self._cipher_cache()
        cipher = cache.get(slot)
        if cipher is None:
            cipher = factory(_require_symmetric(self))
            cache[slot] = cipher
        return cipher

    def _cipher_cache(self) -> dict[str, object]:
        cache = self.__dict__.get("_ciphers")
        if cache is None:
            cache = {}
            self.__dict__["_ciphers"] = cache
        return cache

    def __getstate__(self) -> dict[str, object]:
        # Memoized cipher instances stay home on worker transport: the
        # receiving process rebuilds them lazily from the key bytes (and
        # accumulates its own deterministic/OPE memos across chunks).
        return {
            key: value for key, value in self.__dict__.items()
            if key != "_ciphers"
        }

    def public_part(self) -> "KeyMaterial":
        """Key material stripped to what encryption-only holders need.

        For Paillier, encryption needs only the public key; symmetric and
        OPE schemes need the full key either way.
        """
        return KeyMaterial(
            query_key=self.query_key,
            symmetric=self.symmetric,
            paillier_public=self.paillier_public,
            paillier_private=self.paillier_private,
        )


class KeyStore:
    """Holds key material for a set of query keys.

    Examples
    --------
    >>> from repro.core.keys import QueryKey
    >>> from repro.core.requirements import EncryptionScheme
    >>> store = KeyStore.generate([QueryKey(frozenset({"P"}),
    ...                                     EncryptionScheme.DETERMINISTIC)])
    >>> cipher = store.cipher_for_attribute("P")
    >>> cipher.decrypt(cipher.encrypt(42))
    42
    """

    def __init__(self, materials: Iterable[KeyMaterial] = ()) -> None:
        self._materials: dict[str, KeyMaterial] = {}
        for material in materials:
            self.add(material)

    @classmethod
    def generate(cls, keys: Iterable[QueryKey],
                 paillier_bits: int = 512) -> "KeyStore":
        """Generate fresh material for every query key."""
        store = cls()
        for key in keys:
            if key.scheme is EncryptionScheme.PAILLIER:
                public, private = generate_keypair(paillier_bits)
                store.add(KeyMaterial(
                    query_key=key,
                    paillier_public=public,
                    paillier_private=private,
                ))
            else:
                store.add(KeyMaterial(
                    query_key=key, symmetric=primitives.generate_key(32)
                ))
        return store

    def add(self, material: KeyMaterial) -> None:
        """Register key material (rejects duplicates)."""
        if material.name in self._materials:
            raise KeyManagementError(f"duplicate key {material.name}")
        self._materials[material.name] = material

    def material(self, name: str) -> KeyMaterial:
        """Key material by query-key name."""
        try:
            return self._materials[name]
        except KeyError:
            raise KeyManagementError(f"no key material for {name!r}") from None

    def material_for_attribute(self, attribute: str) -> KeyMaterial:
        """Key material of the key covering ``attribute``."""
        for material in self._materials.values():
            if material.query_key.covers(attribute):
                return material
        raise KeyManagementError(f"no key covers attribute {attribute!r}")

    def has_attribute(self, attribute: str) -> bool:
        """Whether some held key covers ``attribute``."""
        return any(
            m.query_key.covers(attribute) for m in self._materials.values()
        )

    def cipher_for_attribute(self, attribute: str):
        """An encrypt/decrypt-capable cipher for ``attribute``.

        Returns a :class:`DeterministicCipher`, :class:`RandomizedCipher`,
        or :class:`OpeCipher`; Paillier is handled through
        :meth:`material_for_attribute` because encryption and decryption
        use different halves of the keypair.
        """
        material = self.material_for_attribute(attribute)
        scheme = material.scheme
        if scheme is EncryptionScheme.DETERMINISTIC:
            return material.deterministic_cipher()
        if scheme is EncryptionScheme.RANDOMIZED:
            return material.randomized_cipher()
        if scheme is EncryptionScheme.OPE:
            return material.ope_cipher()
        raise KeyManagementError(
            f"attribute {attribute!r} uses Paillier; use material_for_attribute"
        )

    def subset(self, key_names: Iterable[str]) -> "KeyStore":
        """A store holding only the named keys (per-subject distribution)."""
        return KeyStore(
            self._materials[name].public_part()
            for name in key_names if name in self._materials
        )

    def names(self) -> frozenset[str]:
        """Names of all held keys."""
        return frozenset(self._materials)

    def __len__(self) -> int:
        return len(self._materials)


@dataclass
class DistributedKeys:
    """Per-subject key stores implementing the §6 distribution."""

    master: KeyStore
    per_subject: dict[str, KeyStore] = field(default_factory=dict)

    @classmethod
    def from_assignment(cls, assignment: KeyAssignment,
                        paillier_bits: int = 512) -> "DistributedKeys":
        """Generate material and split it according to ``assignment``."""
        master = KeyStore.generate(assignment.keys, paillier_bits)
        per_subject = {
            subject: master.subset(k.name for k in keys)
            for subject, keys in assignment.distribution.items()
        }
        return cls(master=master, per_subject=per_subject)

    def store_for(self, subject: str) -> KeyStore:
        """The keys ``subject`` received (empty store if none)."""
        return self.per_subject.get(subject, KeyStore())


def _require_symmetric(material: KeyMaterial) -> bytes:
    if material.symmetric is None:
        raise KeyManagementError(
            f"key {material.name} has no symmetric material"
        )
    return material.symmetric

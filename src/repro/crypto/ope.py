"""Order-preserving encryption (OPE).

The paper's tool uses "an OPE scheme" to evaluate range conditions on
encrypted values (§7).  This module implements a deterministic,
Boldyreva-style recursive binary construction: the ciphertext of a value
is found by walking a PRF-derived balanced partition of the (domain,
range) rectangle, so that ``x < y  ⇒  Enc(x) < Enc(y)`` while individual
mappings remain key-dependent.

The scheme works on signed 48-bit integers; fractional values are
fixed-point scaled, dates map to their ordinal, and strings map through a
big-endian 6-byte prefix (an order-preserving approximation adequate for
the simulator — documented in DESIGN.md).

The PRF walk is ~48 levels deep, so a cipher instance keeps two bounded
memos: a *pivot* memo (rectangle → PRF pivot — every value shares the
top of the partition tree, so even all-distinct columns reuse most
levels) and a *value* memo (plaintext ↔ ciphertext — equal plaintexts,
ubiquitous in range and join columns, pay one walk total).  Both are
transparent: ciphertexts are bit-identical to the memo-free walk.
"""

from __future__ import annotations

import struct
from datetime import date
from typing import Iterable, Sequence

from repro.crypto import primitives
from repro.exceptions import CryptoError

#: Bounds on the per-cipher memos; a full memo is dropped wholesale.
_PIVOT_MEMO_MAX = 1 << 16
_VALUE_MEMO_MAX = 8192

#: Domain: signed 48-bit integers.
DOMAIN_BITS = 48
DOMAIN_MIN = -(2 ** (DOMAIN_BITS - 1))
DOMAIN_MAX = 2 ** (DOMAIN_BITS - 1) - 1

#: Range expansion factor (range is domain × 2^16).
RANGE_BITS = DOMAIN_BITS + 16

#: Fixed-point scale for fractional plaintexts (two decimal digits keeps
#: TPC-H prices inside the domain).
FIXED_POINT_SCALE = 100


class OpeCipher:
    """Deterministic order-preserving encryption.

    Examples
    --------
    >>> cipher = OpeCipher(b"k" * 32)
    >>> cipher.encrypt(10) < cipher.encrypt(10.5) < cipher.encrypt(999)
    True
    >>> cipher.decrypt_numeric(cipher.encrypt(-42))
    -42
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("OPE keys must be at least 16 bytes")
        self._key = primitives.prf(key, b"ope")
        self._pivot_memo: dict[tuple[int, int, int, int],
                               tuple[int, int]] = {}
        self._encrypt_memo: dict[int, int] = {}
        self._decrypt_memo: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encrypt(self, value: object) -> int:
        """Map ``value`` to its order-preserving ciphertext."""
        return self._encrypt_int(encode_orderable(value))

    def encrypt_many(self, values: Sequence[object]) -> list[int]:
        """Bulk :meth:`encrypt`: one dispatch per column, shared memos."""
        encrypt_int = self._encrypt_int
        return [encrypt_int(encode_orderable(v)) for v in values]

    def decrypt_many(self, ciphertexts: Iterable[int]) -> list[int]:
        """Bulk :meth:`decrypt` (encoded integers come back)."""
        decrypt_int = self._decrypt_int
        return [decrypt_int(c) for c in ciphertexts]

    def decrypt(self, ciphertext: int) -> int:
        """Recover the *encoded integer* plaintext.

        Note that only the encoded integer comes back: callers that
        encrypted floats/dates must invert the encoding themselves (see
        :func:`decode_numeric`; the engine keeps a recoverable ciphertext
        alongside — OPE exists to compare, not to store).
        """
        return self._decrypt_int(ciphertext)

    def decrypt_numeric(self, ciphertext: int) -> int | float:
        """Recover a numeric plaintext, descaling the fixed point.

        Examples
        --------
        >>> cipher = OpeCipher(b"k" * 32)
        >>> cipher.decrypt_numeric(cipher.encrypt(-42))
        -42
        """
        return decode_numeric(self._decrypt_int(ciphertext))

    # ------------------------------------------------------------------
    # Recursive binary construction
    # ------------------------------------------------------------------
    def _pivot(self, dlo: int, dhi: int, rlo: int, rhi: int) -> tuple[int, int]:
        """PRF-derived pivot pair for the current rectangle.

        The domain pivot is the midpoint; the range pivot is drawn
        pseudorandomly from the middle half of the range, keeping the
        recursion balanced while making the mapping key-dependent.
        """
        memo = self._pivot_memo
        rectangle = (dlo, dhi, rlo, rhi)
        cached = memo.get(rectangle)
        if cached is not None:
            return cached
        dmid = (dlo + dhi) // 2
        span = rhi - rlo
        quarter = span // 4
        seed = primitives.prf(
            self._key, struct.pack(">qqQQ", dlo, dhi, rlo, rhi)
        )
        offset = int.from_bytes(seed[:8], "big") % max(quarter * 2, 1)
        rmid = rlo + quarter + offset
        # The range pivot must leave enough room on both sides for the
        # remaining domain values (injectivity).
        left_need = dmid - dlo + 1
        right_need = dhi - dmid
        rmid = max(rlo + left_need - 1, min(rmid, rhi - right_need))
        if len(memo) >= _PIVOT_MEMO_MAX:
            memo.clear()
        memo[rectangle] = (dmid, rmid)
        return dmid, rmid

    def _encrypt_int(self, value: int) -> int:
        memo = self._encrypt_memo
        cached = memo.get(value)
        if cached is not None:
            return cached
        if not DOMAIN_MIN <= value <= DOMAIN_MAX:
            raise CryptoError(f"value {value} outside the OPE domain")
        dlo, dhi = DOMAIN_MIN, DOMAIN_MAX
        rlo, rhi = 0, 2 ** RANGE_BITS - 1
        pivot = self._pivot
        while dlo < dhi:
            dmid, rmid = pivot(dlo, dhi, rlo, rhi)
            if value <= dmid:
                dhi, rhi = dmid, rmid
            else:
                dlo, rlo = dmid + 1, rmid + 1
        if len(memo) >= _VALUE_MEMO_MAX:
            memo.clear()
        memo[value] = rlo
        return rlo

    def _decrypt_int(self, ciphertext: int) -> int:
        memo = self._decrypt_memo
        cached = memo.get(ciphertext)
        if cached is not None:
            return cached
        dlo, dhi = DOMAIN_MIN, DOMAIN_MAX
        rlo, rhi = 0, 2 ** RANGE_BITS - 1
        if not rlo <= ciphertext <= rhi:
            raise CryptoError("ciphertext outside the OPE range")
        pivot = self._pivot
        while dlo < dhi:
            dmid, rmid = pivot(dlo, dhi, rlo, rhi)
            if ciphertext <= rmid:
                dhi, rhi = dmid, rmid
            else:
                dlo, rlo = dmid + 1, rmid + 1
        # The ciphertext must be the canonical image of the plaintext;
        # anything else was never produced by this key.  Only canonical
        # images enter the memo, so forged tokens always re-walk and
        # raise here.
        if self._encrypt_int(dlo) != ciphertext:
            raise CryptoError("ciphertext not produced under this OPE key")
        if len(memo) >= _VALUE_MEMO_MAX:
            memo.clear()
        memo[ciphertext] = dlo
        return dlo


def encode_orderable(value: object) -> int:
    """Map a supported value to the signed integer OPE domain.

    The mapping is strictly monotone and *uniform across numeric types*
    (both ints and floats are fixed-point scaled, so ``100`` and ``100.0``
    map to the same point and mixed comparisons stay correct).  Dates map
    to scaled ordinals; strings map through their 5-byte big-endian prefix
    (ties between strings sharing a 5-byte prefix collapse — adequate for
    range predicates over the synthetic workloads).
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        scaled = value * FIXED_POINT_SCALE
    elif isinstance(value, float):
        scaled = round(value * FIXED_POINT_SCALE)
    elif isinstance(value, date):
        scaled = value.toordinal() * FIXED_POINT_SCALE
    elif isinstance(value, str):
        prefix = value.encode("utf-8")[:5].ljust(5, b"\x00")
        scaled = int.from_bytes(prefix, "big")
    else:
        raise CryptoError(f"type {type(value).__name__} is not orderable")
    if not DOMAIN_MIN <= scaled <= DOMAIN_MAX:
        raise CryptoError(f"value {value!r} outside the OPE domain")
    return scaled


def decode_numeric(encoded: int) -> int | float:
    """Invert the numeric fixed-point encoding of :func:`encode_orderable`."""
    if encoded % FIXED_POINT_SCALE == 0:
        return encoded // FIXED_POINT_SCALE
    return encoded / FIXED_POINT_SCALE

"""Randomized and deterministic symmetric encryption.

Two modes over the HMAC-PRF stream cipher of
:mod:`repro.crypto.primitives`:

* :class:`RandomizedCipher` — a fresh random IV per encryption; two
  encryptions of the same value are unlinkable (the paper's "randomized
  symmetric encryption", used when no computation over ciphertexts is
  needed);
* :class:`DeterministicCipher` — a synthetic IV derived from the
  plaintext (SIV construction); equal plaintexts yield equal ciphertexts,
  supporting equality conditions and equi-joins on encrypted values (the
  paper's "deterministic symmetric encryption").

Both modes append a truncated HMAC tag, so decryption with a wrong key or
a tampered ciphertext fails loudly instead of returning garbage.

Built for columnar batch work: the enc/mac (and SIV) subkeys are derived
once at construction, ``encrypt_many``/``decrypt_many`` process whole
columns with one Python-level dispatch and derive the column's
keystreams and tags in a single HMAC sweep per chunk
(``_seal_many``/``_open_many``) instead of per-value ``prf`` calls,
randomized IVs for a batch come
from a single ``os.urandom`` draw, and :class:`DeterministicCipher`
keeps a bounded equality-aware memo — equal plaintexts (exactly what
equi-join and grouping columns repeat thousands of times) pay the PRF
walk once.  Ciphertexts are bit-identical to the per-call construction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto import primitives
from repro.exceptions import CryptoError

_IV_LEN = 16
_TAG_LEN = 12
_ENC_DOMAIN = b"enc"
_MAC_DOMAIN = b"mac"
_SIV_DOMAIN = b"siv"

#: Bound on the deterministic encrypt/decrypt memos (entries, per
#: cipher).  A full memo is dropped wholesale — column value sets are
#: small relative to this in every workload we run.
_MEMO_MAX = 8192


class _StreamCipher:
    """Shared IV + keystream + tag machinery for both modes.

    The per-domain subkeys are derived once here; the seed derived them
    inside every ``_seal``/``_open`` call.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("symmetric keys must be at least 16 bytes")
        self._key = key
        self._enc_key = primitives.prf(key, _ENC_DOMAIN)
        self._mac_key = primitives.prf(key, _MAC_DOMAIN)

    @property
    def key(self) -> bytes:
        """The raw key material."""
        return self._key

    def _seal(self, iv: bytes, encoded: bytes) -> bytes:
        body = primitives.xor_bytes(
            encoded,
            primitives.keystream(self._enc_key, iv, len(encoded)),
        )
        tag = primitives.prf(self._mac_key, iv + body)[:_TAG_LEN]
        return iv + body + tag

    def _seal_many(self, ivs: Sequence[bytes],
                   encodeds: Sequence[bytes]) -> list[bytes]:
        """Bulk :meth:`_seal`: one HMAC sweep per column.

        The enc and mac key schedules are fetched once; the column's
        keystreams derive in a single sweep
        (:func:`~repro.crypto.primitives.keystream_many`) instead of a
        per-value ``prf`` call.  Ciphertexts are bit-identical to the
        per-value path.
        """
        streams = primitives.keystream_many(
            self._enc_key, list(ivs), [len(e) for e in encodeds])
        mac_keyed = primitives.keyed_hmac(self._mac_key)
        xor = primitives.xor_bytes
        out: list[bytes] = []
        for iv, encoded, stream in zip(ivs, encodeds, streams):
            body = xor(encoded, stream)
            mac = mac_keyed.copy()
            mac.update(iv + body)
            out.append(iv + body + mac.digest()[:_TAG_LEN])
        return out

    def _open_many(self, ciphertexts: Sequence[bytes]) -> list[bytes]:
        """Bulk :meth:`_open`: tags verify in input order (raising on
        the first bad one, like the per-value loop), then the keystreams
        for the survivors derive in one sweep."""
        mac_keyed = primitives.keyed_hmac(self._mac_key)
        equal = primitives.constant_time_equal
        ivs: list[bytes] = []
        bodies: list[bytes] = []
        for ciphertext in ciphertexts:
            if len(ciphertext) < _IV_LEN + _TAG_LEN:
                raise CryptoError("ciphertext too short")
            iv = ciphertext[:_IV_LEN]
            body = ciphertext[_IV_LEN:-_TAG_LEN]
            mac = mac_keyed.copy()
            mac.update(iv + body)
            if not equal(ciphertext[-_TAG_LEN:], mac.digest()[:_TAG_LEN]):
                raise CryptoError(
                    "ciphertext authentication failed (wrong key?)")
            ivs.append(iv)
            bodies.append(body)
        streams = primitives.keystream_many(
            self._enc_key, ivs, [len(b) for b in bodies])
        xor = primitives.xor_bytes
        return [xor(body, stream) for body, stream in zip(bodies, streams)]

    def _open(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _IV_LEN + _TAG_LEN:
            raise CryptoError("ciphertext too short")
        iv = ciphertext[:_IV_LEN]
        body = ciphertext[_IV_LEN:-_TAG_LEN]
        tag = ciphertext[-_TAG_LEN:]
        expected = primitives.prf(self._mac_key, iv + body)[:_TAG_LEN]
        if not primitives.constant_time_equal(tag, expected):
            raise CryptoError("ciphertext authentication failed (wrong key?)")
        return primitives.xor_bytes(
            body,
            primitives.keystream(self._enc_key, iv, len(body)),
        )

    def decrypt(self, ciphertext: bytes) -> object:
        """Recover the plaintext value."""
        return primitives.decode_value(self._open(ciphertext))

    def decrypt_many(self, ciphertexts: Iterable[bytes]) -> list[object]:
        """Bulk :meth:`decrypt`: one dispatch for a whole column.

        Equivalent to ``[self.decrypt(c) for c in ciphertexts]`` —
        including the :class:`~repro.exceptions.CryptoError` raised on
        the first tampered or wrong-key ciphertext — but runs the
        column's tag checks and keystreams as one HMAC sweep.
        """
        decode = primitives.decode_value
        return [decode(e) for e in self._open_many(list(ciphertexts))]


class RandomizedCipher(_StreamCipher):
    """IND-CPA-style randomized encryption (fresh IV per call).

    Examples
    --------
    >>> cipher = RandomizedCipher(b"k" * 32)
    >>> cipher.decrypt(cipher.encrypt("stroke"))
    'stroke'
    >>> cipher.encrypt(1) != cipher.encrypt(1)
    True
    """

    def encrypt(self, value: object) -> bytes:
        """Encrypt ``value`` under a fresh random IV."""
        return self._seal(
            primitives.random_bytes(_IV_LEN), primitives.encode_value(value)
        )

    def encrypt_many(self, values: Sequence[object]) -> list[bytes]:
        """Bulk :meth:`encrypt`: one urandom draw for the batch IVs, one
        HMAC sweep for the column's keystreams and tags."""
        count = len(values)
        if not count:
            return []
        ivs = primitives.random_bytes(_IV_LEN * count)
        encode = primitives.encode_value
        return self._seal_many(
            [ivs[i * _IV_LEN:(i + 1) * _IV_LEN] for i in range(count)],
            [encode(v) for v in values],
        )


class DeterministicCipher(_StreamCipher):
    """Equality-preserving deterministic encryption (SIV mode).

    Equal plaintexts produce equal ciphertexts, so both directions are
    memoized (bounded): a repeated value costs a dict hit instead of a
    PRF walk.  The decrypt memo only ever holds ciphertexts this cipher
    itself produced or fully authenticated, so tampered inputs always
    reach the tag check and raise.

    Examples
    --------
    >>> cipher = DeterministicCipher(b"k" * 32)
    >>> cipher.encrypt("stroke") == cipher.encrypt("stroke")
    True
    >>> cipher.encrypt("stroke") == cipher.encrypt("cardiac")
    False
    """

    def __init__(self, key: bytes) -> None:
        super().__init__(key)
        self._siv_key = primitives.prf(key, _SIV_DOMAIN)
        self._encrypt_memo: dict[bytes, bytes] = {}
        self._decrypt_memo: dict[bytes, object] = {}

    def encrypt(self, value: object) -> bytes:
        """Encrypt ``value`` under a plaintext-derived synthetic IV."""
        encoded = primitives.encode_value(value)
        memo = self._encrypt_memo
        token = memo.get(encoded)
        if token is None:
            iv = primitives.prf(self._siv_key, encoded)[:_IV_LEN]
            token = self._seal(iv, encoded)
            if len(memo) >= _MEMO_MAX:
                memo.clear()
            memo[encoded] = token
        return token

    def encrypt_many(self, values: Sequence[object]) -> list[bytes]:
        """Bulk :meth:`encrypt`; each distinct plaintext is sealed once."""
        return [self.encrypt(v) for v in values]

    def decrypt(self, ciphertext: bytes) -> object:
        """Recover the plaintext value (memoized per ciphertext)."""
        memo = self._decrypt_memo
        if ciphertext in memo:
            return memo[ciphertext]
        value = primitives.decode_value(self._open(ciphertext))
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[ciphertext] = value
        return value

    def decrypt_many(self, ciphertexts: Iterable[bytes]) -> list[object]:
        """Bulk :meth:`decrypt`: repeated tokens decode once."""
        return [self.decrypt(c) for c in ciphertexts]

"""Randomized and deterministic symmetric encryption.

Two modes over the HMAC-PRF stream cipher of
:mod:`repro.crypto.primitives`:

* :class:`RandomizedCipher` — a fresh random IV per encryption; two
  encryptions of the same value are unlinkable (the paper's "randomized
  symmetric encryption", used when no computation over ciphertexts is
  needed);
* :class:`DeterministicCipher` — a synthetic IV derived from the
  plaintext (SIV construction); equal plaintexts yield equal ciphertexts,
  supporting equality conditions and equi-joins on encrypted values (the
  paper's "deterministic symmetric encryption").

Both modes append a truncated HMAC tag, so decryption with a wrong key or
a tampered ciphertext fails loudly instead of returning garbage.
"""

from __future__ import annotations

from repro.crypto import primitives
from repro.exceptions import CryptoError

_IV_LEN = 16
_TAG_LEN = 12
_ENC_DOMAIN = b"enc"
_MAC_DOMAIN = b"mac"
_SIV_DOMAIN = b"siv"


class _StreamCipher:
    """Shared IV + keystream + tag machinery for both modes."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("symmetric keys must be at least 16 bytes")
        self._key = key

    @property
    def key(self) -> bytes:
        """The raw key material."""
        return self._key

    def _seal(self, iv: bytes, encoded: bytes) -> bytes:
        body = primitives.xor_bytes(
            encoded,
            primitives.keystream(
                primitives.prf(self._key, _ENC_DOMAIN), iv, len(encoded)
            ),
        )
        tag = primitives.prf(
            primitives.prf(self._key, _MAC_DOMAIN), iv + body
        )[:_TAG_LEN]
        return iv + body + tag

    def _open(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _IV_LEN + _TAG_LEN:
            raise CryptoError("ciphertext too short")
        iv = ciphertext[:_IV_LEN]
        body = ciphertext[_IV_LEN:-_TAG_LEN]
        tag = ciphertext[-_TAG_LEN:]
        expected = primitives.prf(
            primitives.prf(self._key, _MAC_DOMAIN), iv + body
        )[:_TAG_LEN]
        if not primitives.constant_time_equal(tag, expected):
            raise CryptoError("ciphertext authentication failed (wrong key?)")
        return primitives.xor_bytes(
            body,
            primitives.keystream(
                primitives.prf(self._key, _ENC_DOMAIN), iv, len(body)
            ),
        )

    def decrypt(self, ciphertext: bytes) -> object:
        """Recover the plaintext value."""
        return primitives.decode_value(self._open(ciphertext))


class RandomizedCipher(_StreamCipher):
    """IND-CPA-style randomized encryption (fresh IV per call).

    Examples
    --------
    >>> cipher = RandomizedCipher(b"k" * 32)
    >>> cipher.decrypt(cipher.encrypt("stroke"))
    'stroke'
    >>> cipher.encrypt(1) != cipher.encrypt(1)
    True
    """

    def encrypt(self, value: object) -> bytes:
        """Encrypt ``value`` under a fresh random IV."""
        return self._seal(
            primitives.random_bytes(_IV_LEN), primitives.encode_value(value)
        )


class DeterministicCipher(_StreamCipher):
    """Equality-preserving deterministic encryption (SIV mode).

    Examples
    --------
    >>> cipher = DeterministicCipher(b"k" * 32)
    >>> cipher.encrypt("stroke") == cipher.encrypt("stroke")
    True
    >>> cipher.encrypt("stroke") == cipher.encrypt("cardiac")
    False
    """

    def encrypt(self, value: object) -> bytes:
        """Encrypt ``value`` under a plaintext-derived synthetic IV."""
        encoded = primitives.encode_value(value)
        iv = primitives.prf(
            primitives.prf(self._key, _SIV_DOMAIN), encoded
        )[:_IV_LEN]
        return self._seal(iv, encoded)

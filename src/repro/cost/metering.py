"""Per-tenant metering: credit accounts and the spend ledger.

The §7 cost model already prices every executed query — each
:class:`~repro.service.QueryOutcome` carries the exact dollar cost of
its costed trace, derived from the subject :class:`~repro.cost.pricing.PriceList`.
Metering is therefore a wiring problem: the gateway debits each
outcome's ``cost_usd`` from the querying tenant's
:class:`CreditAccount` and appends a :class:`LedgerEntry` to the shared
:class:`Ledger`, giving operators a per-tenant spend history and the
quota layer a balance to gate admission on.

Billing is **postpaid**: admission checks that the balance is positive,
the debit happens after execution with the query's *actual* cost, so a
tenant's final query may overdraw by at most one query's cost (the
balance then goes negative and every further query is rejected before
any planning work is spent).

Examples
--------
>>> account = CreditAccount("gold", credits_usd=0.5)
>>> account.admissible
True
>>> account.debit(0.25)
0.25
>>> account.debit(0.5)          # postpaid: the last query may overdraw
-0.25
>>> account.admissible
False
>>> ledger = Ledger()
>>> entry = ledger.record("gold", user="U", sql="select 1",
...                       cost_usd=0.25, wall_seconds=0.01)
>>> entry.sequence
1
>>> ledger.spend_usd("gold")
0.25
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Mapping

#: Completed/failed entries retained per tenant (totals cover every
#: query regardless; history must not pin unbounded memory).
DEFAULT_HISTORY_LIMIT = 256


class CreditAccount:
    """A tenant's prepaid credit balance, debited per executed query.

    ``credits_usd=None`` means unmetered (the account is always
    admissible and debits only accumulate ``spent_usd``).  Thread-safe:
    gateway workers debit concurrently with admission-time balance
    checks.
    """

    def __init__(self, tenant: str,
                 credits_usd: float | None = None) -> None:
        if credits_usd is not None and credits_usd < 0:
            raise ValueError(
                f"credits_usd must be non-negative, got {credits_usd!r}")
        self.tenant = tenant
        self._unmetered = credits_usd is None
        self._balance = 0.0 if credits_usd is None else float(credits_usd)
        self._spent = 0.0
        self._lock = threading.Lock()

    @property
    def unmetered(self) -> bool:
        return self._unmetered

    @property
    def balance_usd(self) -> float:
        """Remaining credit (negative after a postpaid overdraw)."""
        with self._lock:
            return self._balance

    @property
    def spent_usd(self) -> float:
        """Total debited over the account's lifetime."""
        with self._lock:
            return self._spent

    @property
    def admissible(self) -> bool:
        """Whether a new query may be admitted against this account."""
        with self._lock:
            return self._unmetered or self._balance > 0.0

    def debit(self, amount_usd: float) -> float:
        """Charge ``amount_usd``; returns the new balance."""
        if amount_usd < 0:
            raise ValueError(f"cannot debit {amount_usd!r}")
        with self._lock:
            self._spent += amount_usd
            if not self._unmetered:
                self._balance -= amount_usd
            return self._balance

    def deposit(self, amount_usd: float) -> float:
        """Top the account up; returns the new balance.

        Depositing into an unmetered account converts it to a metered
        one (the only way a previously unlimited tenant acquires a
        budget).
        """
        if amount_usd < 0:
            raise ValueError(f"cannot deposit {amount_usd!r}")
        with self._lock:
            self._unmetered = False
            self._balance += amount_usd
            return self._balance


@dataclass(frozen=True)
class LedgerEntry:
    """One metered query in completion order."""

    sequence: int
    tenant: str
    user: str
    sql: str
    status: str
    cost_usd: float
    wall_seconds: float
    #: Position in the gateway's dispatch order (``None`` when the
    #: recording layer does not schedule, e.g. direct service calls).
    dispatch_sequence: int | None = None


class Ledger:
    """Thread-safe per-tenant spend history with bounded retention.

    Entries get a global monotone ``sequence`` in recording (completion)
    order; per-tenant totals cover every query ever recorded while only
    the last ``history_limit`` entries per tenant are retained.
    """

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self._history_limit = history_limit
        self._entries: dict[str, Deque[LedgerEntry]] = {}
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._sequence = 0
        self._lock = threading.Lock()

    def record(self, tenant: str, *, user: str, sql: str,
               cost_usd: float, wall_seconds: float,
               status: str = "completed",
               dispatch_sequence: int | None = None) -> LedgerEntry:
        """Append one entry; returns it with its sequence assigned."""
        with self._lock:
            self._sequence += 1
            entry = LedgerEntry(
                sequence=self._sequence, tenant=tenant, user=user,
                sql=sql, status=status, cost_usd=cost_usd,
                wall_seconds=wall_seconds,
                dispatch_sequence=dispatch_sequence,
            )
            history = self._entries.get(tenant)
            if history is None:
                history = deque(maxlen=self._history_limit)
                self._entries[tenant] = history
            history.append(entry)
            self._totals[tenant] = self._totals.get(tenant, 0.0) + cost_usd
            self._counts[tenant] = self._counts.get(tenant, 0) + 1
            return entry

    def entries(self, tenant: str) -> tuple[LedgerEntry, ...]:
        """The retained history for ``tenant`` (oldest first)."""
        with self._lock:
            return tuple(self._entries.get(tenant, ()))

    def all_entries(self) -> tuple[LedgerEntry, ...]:
        """Every retained entry across tenants, in sequence order."""
        with self._lock:
            merged = [entry for history in self._entries.values()
                      for entry in history]
        return tuple(sorted(merged, key=lambda entry: entry.sequence))

    def spend_usd(self, tenant: str) -> float:
        """Lifetime metered spend of ``tenant`` (not just retained)."""
        with self._lock:
            return self._totals.get(tenant, 0.0)

    def query_count(self, tenant: str) -> int:
        """Lifetime recorded query count of ``tenant``."""
        with self._lock:
            return self._counts.get(tenant, 0)

    def totals(self) -> Mapping[str, float]:
        """Lifetime spend per tenant."""
        with self._lock:
            return dict(self._totals)

"""Calibration constants for the cost estimator.

Per-tuple CPU costs follow the usual textbook operator model (hash-based
join and aggregation, streaming selection/projection); per-value
encryption costs follow the "common benchmarks" the paper cites for its
four schemes: symmetric encryption is effectively free, OPE costs two
orders of magnitude more, Paillier another two (asymmetric modular
exponentiation).  Ciphertext expansions mirror the actual sizes produced
by :mod:`repro.crypto` ("our implementation also considered the increase
in size that may derive from the application of encryption").
"""

from __future__ import annotations

from repro.core.requirements import EncryptionScheme

# ---------------------------------------------------------------------------
# Per-tuple operator costs, in CPU seconds, calibrated against PostgreSQL
# on a 1 GB TPC-H database (the paper's estimates came from the
# PostgreSQL optimizer): a full scan of lineitem takes tens of seconds,
# i.e. a few microseconds per tuple per operator.
# ---------------------------------------------------------------------------
SCAN_SECONDS_PER_ROW = 2.5e-6
PREDICATE_SECONDS_PER_ROW = 3.0e-6
PROJECT_SECONDS_PER_ROW = 1.0e-6
HASH_SECONDS_PER_ROW = 8.0e-6
OUTPUT_SECONDS_PER_ROW = 2.5e-6
AGGREGATE_SECONDS_PER_ROW = 4.0e-6
#: The paper singles out udfs as "typically computationally-intensive".
UDF_SECONDS_PER_ROW = 2.0e-4

#: Cap on nested-loop (non-equi) join work, in row-pairs.
NESTED_LOOP_PAIR_SECONDS = 1.0e-7

# ---------------------------------------------------------------------------
# Per-value encryption/decryption costs, in CPU seconds, following the
# "common benchmarks" of §7: AES-class symmetric encryption is almost
# free (AES-NI: GB/s), OPE costs two to three orders of magnitude more,
# and Paillier encryption assumes precomputed randomness (r^n computed
# offline leaves ~two modular multiplications per value); Paillier
# decryption has no such shortcut.
# ---------------------------------------------------------------------------
ENCRYPT_SECONDS_PER_VALUE = {
    EncryptionScheme.RANDOMIZED: 2.0e-8,
    EncryptionScheme.DETERMINISTIC: 2.0e-8,
    EncryptionScheme.OPE: 1.0e-5,
    EncryptionScheme.PAILLIER: 5.0e-5,
}
DECRYPT_SECONDS_PER_VALUE = {
    EncryptionScheme.RANDOMIZED: 2.0e-8,
    EncryptionScheme.DETERMINISTIC: 2.0e-8,
    EncryptionScheme.OPE: 2.0e-5,
    EncryptionScheme.PAILLIER: 1.0e-3,
}
#: Homomorphic addition of two Paillier ciphertexts (one modular multiply).
PAILLIER_ADD_SECONDS = 1.0e-5

# ---------------------------------------------------------------------------
# Ciphertext sizes, in bytes ("our implementation also considered the
# increase in size that may derive from the application of encryption").
# AES-class ciphers emit whole 16-byte blocks; randomized modes add an IV.
# ---------------------------------------------------------------------------
CIPHER_BLOCK_BYTES = 16
RANDOMIZED_IV_BYTES = 12
#: OPE tokens are 64-bit range points.
OPE_TOKEN_BYTES = 8
#: Paillier ciphertexts live mod n² (512-bit n in the simulator).
PAILLIER_CIPHERTEXT_BYTES = 128


def _blocks(plain_width: int) -> int:
    return CIPHER_BLOCK_BYTES * max(1, -(-plain_width // CIPHER_BLOCK_BYTES))


def encrypted_width(scheme: EncryptionScheme, plain_width: int) -> int:
    """Stored width of one value encrypted under ``scheme``."""
    if scheme is EncryptionScheme.DETERMINISTIC:
        return _blocks(plain_width)
    if scheme is EncryptionScheme.RANDOMIZED:
        return RANDOMIZED_IV_BYTES + _blocks(plain_width)
    if scheme is EncryptionScheme.OPE:
        return OPE_TOKEN_BYTES
    return PAILLIER_CIPHERTEXT_BYTES

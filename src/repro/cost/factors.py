"""Calibration constants for the cost estimator.

Per-tuple CPU costs follow the usual textbook operator model (hash-based
join and aggregation, streaming selection/projection); per-value
encryption costs are calibrated against the *measured* batch-crypto
kernels of :mod:`repro.crypto` (see ``benchmarks/bench_crypto.py``,
which emits the measurements as ``BENCH_crypto.json``), in the spirit of
the "common benchmarks" the paper cites for its four schemes:
deterministic symmetric encryption is effectively free, randomized and
pooled Paillier encryption cost single-digit microseconds, OPE somewhat
more, and Paillier *decryption* dominates everything by two orders of
magnitude.  Ciphertext expansions mirror the actual sizes produced by
:mod:`repro.crypto` ("our implementation also considered the increase
in size that may derive from the application of encryption").
"""

from __future__ import annotations

from repro.core.requirements import EncryptionScheme

# ---------------------------------------------------------------------------
# Per-tuple operator costs, in CPU seconds, calibrated against PostgreSQL
# on a 1 GB TPC-H database (the paper's estimates came from the
# PostgreSQL optimizer): a full scan of lineitem takes tens of seconds,
# i.e. a few microseconds per tuple per operator.
# ---------------------------------------------------------------------------
SCAN_SECONDS_PER_ROW = 2.5e-6
PREDICATE_SECONDS_PER_ROW = 3.0e-6
PROJECT_SECONDS_PER_ROW = 1.0e-6
HASH_SECONDS_PER_ROW = 8.0e-6
OUTPUT_SECONDS_PER_ROW = 2.5e-6
AGGREGATE_SECONDS_PER_ROW = 4.0e-6
#: The paper singles out udfs as "typically computationally-intensive".
UDF_SECONDS_PER_ROW = 2.0e-4

#: Cap on nested-loop (non-equi) join work, in row-pairs.
NESTED_LOOP_PAIR_SECONDS = 1.0e-7

# ---------------------------------------------------------------------------
# Per-value encryption/decryption costs, in CPU seconds, recalibrated
# against the measured batch-crypto kernels (``benchmarks/bench_crypto.py``
# emits the numbers as BENCH_crypto.json; the *ratios* between schemes
# are what drives the assignment search):
#
# * deterministic is near-free — derive-once subkeys plus the
#   equality-aware memo amortize the PRF walk over repeated column
#   values (~0.6 µs encrypt / ~0.3 µs decrypt measured);
# * randomized pays a fresh IV and keystream per value (~4 µs);
# * OPE walks the ~48-level partition tree with pivot/value memos
#   (~10 µs encrypt); the engine decrypts OPE attributes through the
#   randomized *recovery* ciphertext, so OPE decryption prices like
#   randomized decryption;
# * Paillier encryption uses the g = n+1 binomial shortcut with a
#   precomputed r^n obfuscator pool (~4 µs measured — matching §7's
#   "precomputed randomness" assumption); CRT decryption remains the
#   dominant cost by two orders of magnitude (~650 µs at 512-bit n).
# ---------------------------------------------------------------------------
ENCRYPT_SECONDS_PER_VALUE = {
    EncryptionScheme.RANDOMIZED: 4.0e-6,
    EncryptionScheme.DETERMINISTIC: 6.0e-7,
    EncryptionScheme.OPE: 1.0e-5,
    EncryptionScheme.PAILLIER: 4.0e-6,
}
DECRYPT_SECONDS_PER_VALUE = {
    EncryptionScheme.RANDOMIZED: 4.0e-6,
    EncryptionScheme.DETERMINISTIC: 3.0e-7,
    EncryptionScheme.OPE: 4.0e-6,
    EncryptionScheme.PAILLIER: 6.5e-4,
}
#: Homomorphic addition of two Paillier ciphertexts (one modular multiply
#: mod n² plus the wrapper, measured via ``sum(ciphertexts)``).
PAILLIER_ADD_SECONDS = 4.5e-6

# ---------------------------------------------------------------------------
# Ciphertext sizes, in bytes ("our implementation also considered the
# increase in size that may derive from the application of encryption").
# AES-class ciphers emit whole 16-byte blocks; randomized modes add an IV.
# ---------------------------------------------------------------------------
CIPHER_BLOCK_BYTES = 16
RANDOMIZED_IV_BYTES = 12
#: OPE tokens are 64-bit range points.
OPE_TOKEN_BYTES = 8
#: Paillier ciphertexts live mod n² (512-bit n in the simulator).
PAILLIER_CIPHERTEXT_BYTES = 128


def _blocks(plain_width: int) -> int:
    return CIPHER_BLOCK_BYTES * max(1, -(-plain_width // CIPHER_BLOCK_BYTES))


def encrypted_width(scheme: EncryptionScheme, plain_width: int) -> int:
    """Stored width of one value encrypted under ``scheme``."""
    if scheme is EncryptionScheme.DETERMINISTIC:
        return _blocks(plain_width)
    if scheme is EncryptionScheme.RANDOMIZED:
        return RANDOMIZED_IV_BYTES + _blocks(plain_width)
    if scheme is EncryptionScheme.OPE:
        return OPE_TOKEN_BYTES
    return PAILLIER_CIPHERTEXT_BYTES

"""Network topology of the §7 experiments.

"The network configuration assumed the authorities controlling the data
and the cloud providers to be connected by high-bandwidth (10 Gbps)
connections; the client was assumed to be connected to both with a
lower-bandwidth (100 Mbps) connection."  The topology affects elapsed
time (used for the performance-threshold variant of the optimizer); the
monetary cost of a transfer is volume × the sender's egress price and is
computed by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import EstimationError

#: Default link speeds, in bits per second.
BACKBONE_BPS = 10_000_000_000  # 10 Gbps between providers/authorities
CLIENT_BPS = 100_000_000       # 100 Mbps to/from the user


@dataclass
class NetworkTopology:
    """Pairwise bandwidth between subjects.

    ``client_subjects`` are reachable only through the slow client link
    (the querying user); every other pair uses the backbone.  Explicit
    per-pair overrides are possible for what-if experiments.
    """

    client_subjects: frozenset[str] = frozenset()
    backbone_bps: float = BACKBONE_BPS
    client_bps: float = CLIENT_BPS
    overrides: dict[tuple[str, str], float] = field(default_factory=dict)

    @classmethod
    def paper_defaults(cls, user: str) -> "NetworkTopology":
        """10 Gbps backbone, 100 Mbps user link (§7)."""
        return cls(client_subjects=frozenset({user}))

    def bandwidth_bps(self, sender: str, receiver: str) -> float:
        """Link bandwidth between two subjects, in bits per second."""
        if sender == receiver:
            return float("inf")
        for pair in ((sender, receiver), (receiver, sender)):
            if pair in self.overrides:
                return self.overrides[pair]
        if sender in self.client_subjects or receiver in self.client_subjects:
            return self.client_bps
        return self.backbone_bps

    def transfer_seconds(self, volume_bytes: float, sender: str,
                         receiver: str) -> float:
        """Time to move ``volume_bytes`` from ``sender`` to ``receiver``."""
        if volume_bytes < 0:
            raise EstimationError("negative transfer volume")
        if sender == receiver:
            return 0.0
        bandwidth = self.bandwidth_bps(sender, receiver)
        return volume_bytes * 8.0 / bandwidth

    def with_override(self, sender: str, receiver: str,
                      bandwidth_bps: float) -> "NetworkTopology":
        """A copy with one link's bandwidth replaced."""
        overrides = dict(self.overrides)
        overrides[(sender, receiver)] = bandwidth_bps
        return NetworkTopology(
            client_subjects=self.client_subjects,
            backbone_bps=self.backbone_bps,
            client_bps=self.client_bps,
            overrides=overrides,
        )

"""Cardinality, size, and CPU-time estimation for query plans.

Stands in for the PostgreSQL optimizer estimates the paper's tool consumed
("the estimates of the size of the processed data and the processing time
for the relational operators were those returned by the PostgreSQL
optimizer").  The estimator walks a (possibly extended) plan bottom-up
and produces a :class:`NodeEstimate` per node: output rows, per-attribute
widths and distinct counts, the encryption state of every visible
attribute, and the CPU seconds the operation takes — including
encryption, decryption, and homomorphic-aggregation work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.operators import (
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Predicate,
)
from repro.core.requirements import EncryptionScheme
from repro.cost import factors
from repro.exceptions import EstimationError

#: Default selectivities per comparison operator (textbook values).
_SELECTIVITY = {
    ComparisonOp.EQ: None,  # 1 / NDV, computed per attribute
    ComparisonOp.NEQ: 0.9,
    ComparisonOp.LT: 1.0 / 3.0,
    ComparisonOp.LE: 1.0 / 3.0,
    ComparisonOp.GT: 1.0 / 3.0,
    ComparisonOp.GE: 1.0 / 3.0,
    ComparisonOp.LIKE: 0.1,
    ComparisonOp.IN: None,  # len(values) / NDV
}


@dataclass
class NodeEstimate:
    """Estimated properties of the relation produced by one plan node."""

    rows: float
    plain_width: dict[str, int] = field(default_factory=dict)
    ndv: dict[str, float] = field(default_factory=dict)
    scheme: dict[str, EncryptionScheme | None] = field(default_factory=dict)
    cpu_seconds: float = 0.0
    io_bytes: float = 0.0

    def width_of(self, attribute: str) -> int:
        """Stored width of ``attribute``, honouring its encryption state."""
        plain = self.plain_width[attribute]
        current = self.scheme.get(attribute)
        if current is None:
            return plain
        return factors.encrypted_width(current, plain)

    @property
    def row_bytes(self) -> float:
        """Width of one output tuple."""
        return float(sum(self.width_of(a) for a in self.plain_width))

    @property
    def output_bytes(self) -> float:
        """Total size of the produced relation."""
        return self.rows * self.row_bytes

    def bytes_if_encrypted(self, attributes: frozenset[str],
                           schemes: Mapping[str, EncryptionScheme]) -> float:
        """Output size if ``attributes`` were additionally encrypted.

        Used by the assignment search to price candidate-dependent
        encryption without materialising extended plans.
        """
        total = 0.0
        for attribute in self.plain_width:
            if self.scheme.get(attribute) is None and attribute in attributes:
                scheme = schemes.get(attribute,
                                     EncryptionScheme.DETERMINISTIC)
                total += factors.encrypted_width(
                    scheme, self.plain_width[attribute]
                )
            else:
                total += self.width_of(attribute)
        return self.rows * total


class PlanEstimator:
    """Bottom-up estimator for (extended) query plans.

    Parameters
    ----------
    schemes:
        Attribute → encryption scheme used when an Encrypt node touches
        the attribute (defaults to deterministic).  Produced by
        :func:`repro.core.requirements.chosen_schemes`.
    """

    def __init__(self, schemes: Mapping[str, EncryptionScheme] | None = None,
                 ) -> None:
        self._schemes = dict(schemes or {})

    def scheme_for(self, attribute: str) -> EncryptionScheme:
        """Scheme used when encrypting ``attribute``."""
        return self._schemes.get(attribute, EncryptionScheme.DETERMINISTIC)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def estimate(self, plan: QueryPlan) -> dict[int, NodeEstimate]:
        """Estimate every node; the result maps ``id(node)`` → estimate."""
        estimates: dict[int, NodeEstimate] = {}
        for node in plan.postorder():
            children = [estimates[id(c)] for c in node.children]
            estimates[id(node)] = self._estimate_node(node, children)
        return estimates

    def estimate_node(self, node: PlanNode,
                      children: list[NodeEstimate]) -> NodeEstimate:
        """Estimate a single node from its children's estimates."""
        return self._estimate_node(node, children)

    # ------------------------------------------------------------------
    # Per-operator rules
    # ------------------------------------------------------------------
    def _estimate_node(self, node: PlanNode,
                       children: list[NodeEstimate]) -> NodeEstimate:
        if isinstance(node, BaseRelationNode):
            return self._estimate_leaf(node)
        if isinstance(node, Projection):
            return self._estimate_projection(node, children[0])
        if isinstance(node, Selection):
            return self._estimate_selection(node, children[0])
        if isinstance(node, (Join, CartesianProduct)):
            return self._estimate_join(node, children[0], children[1])
        if isinstance(node, GroupBy):
            return self._estimate_group_by(node, children[0])
        if isinstance(node, Udf):
            return self._estimate_udf(node, children[0])
        if isinstance(node, Encrypt):
            return self._estimate_crypto(node, children[0], encrypting=True)
        if isinstance(node, Decrypt):
            return self._estimate_crypto(node, children[0], encrypting=False)
        raise EstimationError(f"no estimation rule for {type(node).__name__}")

    def _estimate_leaf(self, node: BaseRelationNode) -> NodeEstimate:
        relation = node.relation
        rows = float(relation.cardinality)
        widths: dict[str, int] = {}
        ndv: dict[str, float] = {}
        for name in node.projection:
            spec = relation.spec(name)
            widths[name] = spec.width
            ndv[name] = max(1.0, spec.distinct_fraction * rows)
        estimate = NodeEstimate(
            rows=rows,
            plain_width=widths,
            ndv=ndv,
            scheme={name: None for name in widths},
            cpu_seconds=rows * factors.SCAN_SECONDS_PER_ROW,
        )
        estimate.io_bytes = estimate.output_bytes
        return estimate

    def _estimate_projection(self, node: Projection,
                             child: NodeEstimate) -> NodeEstimate:
        kept = node.attributes
        estimate = NodeEstimate(
            rows=child.rows,
            plain_width={a: w for a, w in child.plain_width.items()
                         if a in kept},
            ndv={a: n for a, n in child.ndv.items() if a in kept},
            scheme={a: s for a, s in child.scheme.items() if a in kept},
            cpu_seconds=child.rows * factors.PROJECT_SECONDS_PER_ROW,
        )
        estimate.io_bytes = estimate.output_bytes
        return estimate

    def _predicate_selectivity(self, predicate: Predicate,
                               child: NodeEstimate) -> float:
        selectivity = 1.0
        for basic in predicate.basic_conditions():
            if isinstance(basic, AttributeValuePredicate):
                base = _SELECTIVITY[basic.op]
                if base is None:
                    ndv = max(1.0, child.ndv.get(basic.attribute, 10.0))
                    count = (len(basic.value)
                             if basic.op is ComparisonOp.IN
                             and isinstance(basic.value,
                                            (tuple, list, set, frozenset))
                             else 1)
                    selectivity *= min(1.0, count / ndv)
                else:
                    selectivity *= base
            elif isinstance(basic, AttributeComparisonPredicate):
                if basic.op is ComparisonOp.EQ:
                    left_ndv = max(1.0, child.ndv.get(basic.left, 10.0))
                    right_ndv = max(1.0, child.ndv.get(basic.right, 10.0))
                    selectivity *= 1.0 / max(left_ndv, right_ndv)
                else:
                    selectivity *= 1.0 / 3.0
        return max(selectivity, 1e-9)

    def _estimate_selection(self, node: Selection,
                            child: NodeEstimate) -> NodeEstimate:
        selectivity = self._predicate_selectivity(node.predicate, child)
        rows = max(1.0, child.rows * selectivity)
        shrink = rows / max(child.rows, 1.0)
        estimate = NodeEstimate(
            rows=rows,
            plain_width=dict(child.plain_width),
            ndv={a: max(1.0, min(n, n * shrink + 1))
                 for a, n in child.ndv.items()},
            scheme=dict(child.scheme),
            cpu_seconds=child.rows * factors.PREDICATE_SECONDS_PER_ROW,
        )
        estimate.io_bytes = child.output_bytes + estimate.output_bytes
        return estimate

    def _estimate_join(self, node: Join | CartesianProduct,
                       left: NodeEstimate,
                       right: NodeEstimate) -> NodeEstimate:
        if isinstance(node, Join):
            rows = left.rows * right.rows
            equi = False
            for basic in node.condition.basic_conditions():
                assert isinstance(basic, AttributeComparisonPredicate)
                if basic.op is ComparisonOp.EQ:
                    equi = True
                    left_ndv = max(1.0, left.ndv.get(
                        basic.left, right.ndv.get(basic.left, 10.0)))
                    right_ndv = max(1.0, right.ndv.get(
                        basic.right, left.ndv.get(basic.right, 10.0)))
                    rows /= max(left_ndv, right_ndv)
                else:
                    rows /= 3.0
            rows = max(1.0, rows)
            if equi:
                cpu = ((left.rows + right.rows) * factors.HASH_SECONDS_PER_ROW
                       + rows * factors.OUTPUT_SECONDS_PER_ROW)
            else:
                cpu = (left.rows * right.rows
                       * factors.NESTED_LOOP_PAIR_SECONDS
                       + rows * factors.OUTPUT_SECONDS_PER_ROW)
        else:
            rows = max(1.0, left.rows * right.rows)
            cpu = rows * factors.OUTPUT_SECONDS_PER_ROW
        estimate = NodeEstimate(
            rows=rows,
            plain_width={**left.plain_width, **right.plain_width},
            ndv={a: min(n, rows) for a, n in {**left.ndv,
                                              **right.ndv}.items()},
            scheme={**left.scheme, **right.scheme},
            cpu_seconds=cpu,
        )
        estimate.io_bytes = (left.output_bytes + right.output_bytes
                             + estimate.output_bytes)
        return estimate

    def _estimate_group_by(self, node: GroupBy,
                           child: NodeEstimate) -> NodeEstimate:
        groups = 1.0
        for attribute in node.group_attributes:
            groups *= max(1.0, child.ndv.get(attribute, 10.0))
        groups = max(1.0, min(groups, child.rows))
        widths: dict[str, int] = {}
        ndv: dict[str, float] = {}
        scheme: dict[str, EncryptionScheme | None] = {}
        for attribute in node.group_attributes:
            widths[attribute] = child.plain_width[attribute]
            ndv[attribute] = min(child.ndv.get(attribute, groups), groups)
            scheme[attribute] = child.scheme.get(attribute)
        cpu = child.rows * factors.HASH_SECONDS_PER_ROW \
            + groups * factors.AGGREGATE_SECONDS_PER_ROW
        for aggregate in node.aggregates:
            name = aggregate.output_name
            widths[name] = 8
            ndv[name] = groups
            if aggregate.attribute is None:
                scheme[name] = None  # count(*) is born plaintext
                continue
            agg_scheme = child.scheme.get(aggregate.attribute)
            scheme[name] = agg_scheme
            if agg_scheme is EncryptionScheme.PAILLIER and \
                    aggregate.function in (AggregateFunction.SUM,
                                           AggregateFunction.AVG):
                cpu += child.rows * factors.PAILLIER_ADD_SECONDS
        estimate = NodeEstimate(
            rows=groups,
            plain_width=widths,
            ndv=ndv,
            scheme=scheme,
            cpu_seconds=cpu,
        )
        estimate.io_bytes = child.output_bytes + estimate.output_bytes
        return estimate

    def _estimate_udf(self, node: Udf, child: NodeEstimate) -> NodeEstimate:
        widths = {a: w for a, w in child.plain_width.items()
                  if a not in node.inputs or a == node.output}
        widths[node.output] = 8
        ndv = {a: n for a, n in child.ndv.items() if a in widths}
        ndv[node.output] = child.rows
        scheme = {a: s for a, s in child.scheme.items() if a in widths}
        estimate = NodeEstimate(
            rows=child.rows,
            plain_width=widths,
            ndv=ndv,
            scheme=scheme,
            cpu_seconds=child.rows * factors.UDF_SECONDS_PER_ROW,
        )
        estimate.io_bytes = child.output_bytes + estimate.output_bytes
        return estimate

    def _estimate_crypto(self, node: Encrypt | Decrypt, child: NodeEstimate,
                         encrypting: bool) -> NodeEstimate:
        scheme_map = dict(child.scheme)
        cpu = 0.0
        for attribute in node.attributes:
            if encrypting:
                scheme = self.scheme_for(attribute)
                scheme_map[attribute] = scheme
                cpu += child.rows * factors.ENCRYPT_SECONDS_PER_VALUE[scheme]
            else:
                scheme = scheme_map.get(attribute) \
                    or self.scheme_for(attribute)
                scheme_map[attribute] = None
                cpu += child.rows * factors.DECRYPT_SECONDS_PER_VALUE[scheme]
        estimate = NodeEstimate(
            rows=child.rows,
            plain_width=dict(child.plain_width),
            ndv=dict(child.ndv),
            scheme=scheme_map,
            cpu_seconds=cpu,
        )
        estimate.io_bytes = child.output_bytes + estimate.output_bytes
        return estimate

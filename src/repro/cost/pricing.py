"""Provider price lists (§7).

The paper charges a query as ``Cq = Σ Ccpu + Cio + Cnet_io`` — CPU time ×
price per unit time, local I/O volume × price per volume, and transferred
volume × network price — "in line with the price lists of cloud
providers".  The experiments assume the user costs **10×** and the data
authorities **3×** the CPU price of cloud providers (estimates based on
government-backed price lists), with provider prices set from the public
2017-era listings of Amazon S3 / Google Compute Engine.

Absolute magnitudes only scale the results; the figures of the paper are
normalized, so the *ratios* are what matters (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.core.authorization import Subject, SubjectKind
from repro.exceptions import EstimationError

#: Baseline provider rates (2017-era public cloud list prices).  The
#: network price models the paper's dedicated 10 Gbps links between
#: authorities and providers — same-region/peered interconnect rates,
#: not internet egress.
PROVIDER_CPU_USD_PER_HOUR = 0.050
PROVIDER_IO_USD_PER_GB = 0.0004
PROVIDER_NET_USD_PER_GB = 0.001

#: Paper ratios for non-provider subjects.
AUTHORITY_CPU_MULTIPLIER = 3.0
USER_CPU_MULTIPLIER = 10.0


@dataclass(frozen=True)
class ResourceRates:
    """Unit prices of one subject's resources.

    Attributes
    ----------
    cpu_usd_per_second:
        Price of one second of CPU time.
    io_usd_per_gb:
        Price of one gigabyte of local I/O.
    net_usd_per_gb:
        Price of one gigabyte of outbound network transfer.
    """

    cpu_usd_per_second: float
    io_usd_per_gb: float = PROVIDER_IO_USD_PER_GB
    net_usd_per_gb: float = PROVIDER_NET_USD_PER_GB

    def __post_init__(self) -> None:
        if min(self.cpu_usd_per_second, self.io_usd_per_gb,
               self.net_usd_per_gb) < 0:
            raise EstimationError("rates must be non-negative")

    def scaled(self, cpu_factor: float) -> "ResourceRates":
        """Rates with the CPU price multiplied by ``cpu_factor``."""
        return replace(
            self, cpu_usd_per_second=self.cpu_usd_per_second * cpu_factor
        )


def provider_rates(cpu_usd_per_hour: float = PROVIDER_CPU_USD_PER_HOUR,
                   ) -> ResourceRates:
    """Baseline rates of an open-market cloud provider."""
    return ResourceRates(cpu_usd_per_second=cpu_usd_per_hour / 3600.0)


class PriceList:
    """Per-subject resource prices with paper-ratio defaults.

    Examples
    --------
    >>> prices = PriceList.paper_defaults(
    ...     providers=["X", "Y", "Z"], authorities=["H", "I"], user="U")
    >>> ratio = (prices.rates("U").cpu_usd_per_second
    ...          / prices.rates("X").cpu_usd_per_second)
    >>> round(ratio, 1)
    10.0
    """

    def __init__(self, rates: Mapping[str, ResourceRates],
                 default: ResourceRates | None = None) -> None:
        self._rates = dict(rates)
        self._default = default

    @classmethod
    def paper_defaults(
        cls,
        providers: Iterable[str],
        authorities: Iterable[str],
        user: str,
        provider_cpu_usd_per_hour: float = PROVIDER_CPU_USD_PER_HOUR,
        provider_spread: float = 0.25,
    ) -> "PriceList":
        """The §7 configuration.

        Providers get the baseline CPU price staggered by
        ``provider_spread`` (the paper notes savings grow with the spread
        of provider prices: the cheapest provider is the baseline, each
        further provider costs ``1 + k·spread`` times more).  Authorities
        cost 3× and the user 10× the baseline.
        """
        base = provider_rates(provider_cpu_usd_per_hour)
        rates: dict[str, ResourceRates] = {}
        for index, name in enumerate(sorted(providers)):
            rates[name] = base.scaled(1.0 + provider_spread * index)
        for name in authorities:
            rates[name] = base.scaled(AUTHORITY_CPU_MULTIPLIER)
        rates[user] = base.scaled(USER_CPU_MULTIPLIER)
        return cls(rates, default=base)

    @classmethod
    def from_subjects(cls, subjects: Iterable[Subject],
                      provider_cpu_usd_per_hour: float =
                      PROVIDER_CPU_USD_PER_HOUR,
                      provider_spread: float = 0.25) -> "PriceList":
        """Paper defaults derived from typed :class:`Subject` objects."""
        subjects = list(subjects)
        providers = [s.name for s in subjects
                     if s.kind is SubjectKind.PROVIDER]
        authorities = [s.name for s in subjects
                       if s.kind is SubjectKind.AUTHORITY]
        users = [s.name for s in subjects if s.kind is SubjectKind.USER]
        if len(users) != 1:
            raise EstimationError(
                f"expected exactly one user subject, got {users}"
            )
        return cls.paper_defaults(
            providers, authorities, users[0],
            provider_cpu_usd_per_hour=provider_cpu_usd_per_hour,
            provider_spread=provider_spread,
        )

    def rates(self, subject: str) -> ResourceRates:
        """Rates of ``subject`` (authorities fall back to the default)."""
        if subject in self._rates:
            return self._rates[subject]
        if subject.startswith("authority:") and self._default is not None:
            return self._default.scaled(AUTHORITY_CPU_MULTIPLIER)
        if self._default is not None:
            return self._default
        raise EstimationError(f"no rates for subject {subject!r}")

    def with_rates(self, subject: str, rates: ResourceRates) -> "PriceList":
        """A copy with ``subject``'s rates replaced."""
        updated = dict(self._rates)
        updated[subject] = rates
        return PriceList(updated, default=self._default)

    def subjects(self) -> frozenset[str]:
        """Subjects with explicit rates."""
        return frozenset(self._rates)

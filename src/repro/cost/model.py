"""The economic cost model of §7.

``Cq = Σ_n C_cpu(n) + C_io(n) + C_net_io(n)`` — for every node of the
(extended) plan, the CPU time of the operation priced at its assignee's
rate, the local I/O volume priced at the assignee's rate, and the network
transfer of intermediate results priced at the sender's egress rate.

Leaf scans happen at the data authority owning the relation; the final
result is shipped to the querying user.  The model also estimates elapsed
time (CPU + transfer over the §7 topology), supporting the paper's
"maximum performance overhead" threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.extension import ExtendedPlan
from repro.core.operators import BaseRelationNode, PlanNode
from repro.cost.estimator import NodeEstimate, PlanEstimator
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList
from repro.exceptions import EstimationError

_GB = 1e9


@dataclass
class CostBreakdown:
    """Total and per-component cost of one plan execution, in USD."""

    cpu_usd: float = 0.0
    io_usd: float = 0.0
    net_usd: float = 0.0
    elapsed_seconds: float = 0.0
    per_subject_usd: dict[str, float] = field(default_factory=dict)
    per_node: list[tuple[str, str, float]] = field(default_factory=list)

    @property
    def total_usd(self) -> float:
        """``Cq`` of §7."""
        return self.cpu_usd + self.io_usd + self.net_usd

    def charge(self, subject: str, label: str, cpu: float = 0.0,
               io: float = 0.0, net: float = 0.0,
               seconds: float = 0.0) -> None:
        """Accumulate one node's (or transfer's) contribution."""
        self.cpu_usd += cpu
        self.io_usd += io
        self.net_usd += net
        self.elapsed_seconds += seconds
        amount = cpu + io + net
        self.per_subject_usd[subject] = (
            self.per_subject_usd.get(subject, 0.0) + amount
        )
        self.per_node.append((label, subject, amount))

    def describe(self) -> str:
        """One-line summary."""
        return (f"total=${self.total_usd:.6f} "
                f"(cpu=${self.cpu_usd:.6f}, io=${self.io_usd:.6f}, "
                f"net=${self.net_usd:.6f}, "
                f"elapsed={self.elapsed_seconds:.3f}s)")


class CostModel:
    """Prices an extended plan under a price list and network topology."""

    def __init__(self, prices: PriceList,
                 topology: NetworkTopology,
                 estimator: PlanEstimator | None = None) -> None:
        self.prices = prices
        self.topology = topology
        self.estimator = estimator or PlanEstimator()

    # ------------------------------------------------------------------
    # Elementary charges
    # ------------------------------------------------------------------
    def operation_cost_usd(self, estimate: NodeEstimate,
                           subject: str) -> tuple[float, float]:
        """(cpu_usd, io_usd) of running one estimated operation."""
        rates = self.prices.rates(subject)
        cpu = estimate.cpu_seconds * rates.cpu_usd_per_second
        io = estimate.io_bytes / _GB * rates.io_usd_per_gb
        return cpu, io

    def transfer_cost_usd(self, volume_bytes: float, sender: str) -> float:
        """Network cost of shipping ``volume_bytes`` from ``sender``."""
        return volume_bytes / _GB * self.prices.rates(sender).net_usd_per_gb

    # ------------------------------------------------------------------
    # Whole-plan costing
    # ------------------------------------------------------------------
    def extended_plan_cost(self, extended: ExtendedPlan, user: str,
                           owners: Mapping[str, str] | None = None,
                           ) -> CostBreakdown:
        """Exact ``Cq`` of an extended plan with its assignment.

        Every node is charged to its assignee (leaves to the owning
        authority); every parent/child assignee change is charged as a
        network transfer of the child's output; the root result is
        shipped to ``user``.
        """
        owners = owners or {}
        plan = extended.plan
        estimates = self.estimator.estimate(plan)
        breakdown = CostBreakdown()

        def location_of(node: PlanNode) -> str:
            if isinstance(node, BaseRelationNode):
                name = node.relation.name
                return owners.get(name, f"authority:{name}")
            return extended.assignee(node)

        for node in plan.postorder():
            subject = location_of(node)
            estimate = estimates[id(node)]
            cpu, io = self.operation_cost_usd(estimate, subject)
            breakdown.charge(subject, node.label(), cpu=cpu, io=io,
                             seconds=estimate.cpu_seconds)
            parent = plan.parent(node)
            receiver = location_of(parent) if parent is not None else user
            if receiver != subject:
                volume = estimate.output_bytes
                breakdown.charge(
                    subject,
                    f"{node.label()} → {receiver}",
                    net=self.transfer_cost_usd(volume, subject),
                    seconds=self.topology.transfer_seconds(
                        volume, subject, receiver
                    ),
                )
        return breakdown

    def estimate_map(self, extended: ExtendedPlan) -> dict[int, NodeEstimate]:
        """Node-id → estimate for an extended plan (convenience)."""
        return self.estimator.estimate(extended.plan)


def normalized_costs(costs: Mapping[str, CostBreakdown],
                     baseline: str) -> dict[str, float]:
    """Costs normalized to a baseline scenario (Figures 9–10)."""
    if baseline not in costs:
        raise EstimationError(f"baseline scenario {baseline!r} missing")
    base = costs[baseline].total_usd
    if base <= 0:
        raise EstimationError("baseline cost must be positive")
    return {name: c.total_usd / base for name, c in costs.items()}

"""Economic cost substrate for the §7 experiments.

Cardinality/size/CPU estimation (standing in for the PostgreSQL
optimizer), provider price lists with the paper's 10×/3× user/authority
ratios, the 10 Gbps / 100 Mbps network topology, and the
``Cq = Σ Ccpu + Cio + Cnet_io`` cost model.
"""

from repro.cost.estimator import NodeEstimate, PlanEstimator
from repro.cost.model import CostBreakdown, CostModel, normalized_costs
from repro.cost.network import NetworkTopology
from repro.cost.pricing import PriceList, ResourceRates, provider_rates

__all__ = [
    "CostBreakdown", "CostModel", "NetworkTopology", "NodeEstimate",
    "PlanEstimator", "PriceList", "ResourceRates", "normalized_costs",
    "provider_rates",
]

"""The TPC-H schema (8 relations) with estimator statistics.

Column names carry their standard TPC-H prefixes (``l_``, ``o_``, ...),
which makes them globally unique — exactly the convention the paper's
attribute-level model needs.  Cardinalities follow the TPC-H scaling
rules; ``distinct_fraction`` values approximate the spec's value domains
so the cardinality estimator produces sensible join/group sizes.
"""

from __future__ import annotations

from repro.core.schema import (
    AttributeSpec,
    DATE,
    DECIMAL,
    INTEGER,
    Relation,
    Schema,
    VARCHAR,
)

#: Base-table rows at scale factor 1.0 (TPC-H specification).
ROWS_AT_SF1 = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Fixed-size tables that do not scale.
UNSCALED = frozenset({"region", "nation"})


def table_rows(name: str, scale: float) -> int:
    """Row count of ``name`` at scale factor ``scale``."""
    base = ROWS_AT_SF1[name]
    if name in UNSCALED:
        return base
    return max(1, int(base * scale))


def _distinct(count: float, rows: int) -> float:
    """Distinct fraction for an absolute distinct-value count."""
    return max(1e-9, min(1.0, count / max(rows, 1)))


def build_tpch_schema(scale: float = 0.01) -> Schema:
    """The eight TPC-H relations at scale factor ``scale``."""
    schema = Schema()

    region_rows = table_rows("region", scale)
    schema.add(Relation("region", [
        AttributeSpec("r_regionkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("r_name", VARCHAR, width=12,
                      distinct_fraction=1.0),
        AttributeSpec("r_comment", VARCHAR, width=64,
                      distinct_fraction=1.0),
    ], cardinality=region_rows))

    nation_rows = table_rows("nation", scale)
    schema.add(Relation("nation", [
        AttributeSpec("n_nationkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("n_name", VARCHAR, width=16, distinct_fraction=1.0),
        AttributeSpec("n_regionkey", INTEGER,
                      distinct_fraction=_distinct(5, nation_rows)),
        AttributeSpec("n_comment", VARCHAR, width=64,
                      distinct_fraction=1.0),
    ], cardinality=nation_rows))

    supplier_rows = table_rows("supplier", scale)
    schema.add(Relation("supplier", [
        AttributeSpec("s_suppkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("s_name", VARCHAR, width=18, distinct_fraction=1.0),
        AttributeSpec("s_address", VARCHAR, width=24,
                      distinct_fraction=1.0),
        AttributeSpec("s_nationkey", INTEGER,
                      distinct_fraction=_distinct(25, supplier_rows)),
        AttributeSpec("s_phone", VARCHAR, width=15, distinct_fraction=1.0),
        AttributeSpec("s_acctbal", DECIMAL, distinct_fraction=0.9),
        AttributeSpec("s_comment", VARCHAR, width=64,
                      distinct_fraction=1.0),
    ], cardinality=supplier_rows))

    customer_rows = table_rows("customer", scale)
    schema.add(Relation("customer", [
        AttributeSpec("c_custkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("c_name", VARCHAR, width=18, distinct_fraction=1.0),
        AttributeSpec("c_address", VARCHAR, width=24,
                      distinct_fraction=1.0),
        AttributeSpec("c_nationkey", INTEGER,
                      distinct_fraction=_distinct(25, customer_rows)),
        AttributeSpec("c_phone", VARCHAR, width=15, distinct_fraction=1.0),
        AttributeSpec("c_acctbal", DECIMAL, distinct_fraction=0.9),
        AttributeSpec("c_mktsegment", VARCHAR, width=10,
                      distinct_fraction=_distinct(5, customer_rows)),
        AttributeSpec("c_comment", VARCHAR, width=72,
                      distinct_fraction=1.0),
    ], cardinality=customer_rows))

    part_rows = table_rows("part", scale)
    schema.add(Relation("part", [
        AttributeSpec("p_partkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("p_name", VARCHAR, width=34, distinct_fraction=1.0),
        AttributeSpec("p_mfgr", VARCHAR, width=14,
                      distinct_fraction=_distinct(5, part_rows)),
        AttributeSpec("p_brand", VARCHAR, width=10,
                      distinct_fraction=_distinct(25, part_rows)),
        AttributeSpec("p_type", VARCHAR, width=20,
                      distinct_fraction=_distinct(150, part_rows)),
        AttributeSpec("p_size", INTEGER,
                      distinct_fraction=_distinct(50, part_rows)),
        AttributeSpec("p_container", VARCHAR, width=10,
                      distinct_fraction=_distinct(40, part_rows)),
        AttributeSpec("p_retailprice", DECIMAL, distinct_fraction=0.5),
        AttributeSpec("p_comment", VARCHAR, width=22,
                      distinct_fraction=1.0),
    ], cardinality=part_rows))

    partsupp_rows = table_rows("partsupp", scale)
    schema.add(Relation("partsupp", [
        AttributeSpec("ps_partkey", INTEGER,
                      distinct_fraction=_distinct(part_rows, partsupp_rows)),
        AttributeSpec("ps_suppkey", INTEGER,
                      distinct_fraction=_distinct(supplier_rows,
                                                  partsupp_rows)),
        AttributeSpec("ps_availqty", INTEGER,
                      distinct_fraction=_distinct(10_000, partsupp_rows)),
        AttributeSpec("ps_supplycost", DECIMAL, distinct_fraction=0.5),
        AttributeSpec("ps_comment", VARCHAR, width=48,
                      distinct_fraction=1.0),
    ], cardinality=partsupp_rows))

    orders_rows = table_rows("orders", scale)
    schema.add(Relation("orders", [
        AttributeSpec("o_orderkey", INTEGER, distinct_fraction=1.0),
        AttributeSpec("o_custkey", INTEGER,
                      distinct_fraction=_distinct(customer_rows,
                                                  orders_rows)),
        AttributeSpec("o_orderstatus", VARCHAR, width=1,
                      distinct_fraction=_distinct(3, orders_rows)),
        AttributeSpec("o_totalprice", DECIMAL, distinct_fraction=0.9),
        AttributeSpec("o_orderdate", DATE,
                      distinct_fraction=_distinct(2_400, orders_rows)),
        AttributeSpec("o_orderpriority", VARCHAR, width=15,
                      distinct_fraction=_distinct(5, orders_rows)),
        AttributeSpec("o_clerk", VARCHAR, width=15,
                      distinct_fraction=_distinct(1_000, orders_rows)),
        AttributeSpec("o_shippriority", INTEGER,
                      distinct_fraction=_distinct(1, orders_rows)),
        AttributeSpec("o_comment", VARCHAR, width=48,
                      distinct_fraction=1.0),
    ], cardinality=orders_rows))

    lineitem_rows = table_rows("lineitem", scale)
    schema.add(Relation("lineitem", [
        AttributeSpec("l_orderkey", INTEGER,
                      distinct_fraction=_distinct(orders_rows,
                                                  lineitem_rows)),
        AttributeSpec("l_partkey", INTEGER,
                      distinct_fraction=_distinct(part_rows, lineitem_rows)),
        AttributeSpec("l_suppkey", INTEGER,
                      distinct_fraction=_distinct(supplier_rows,
                                                  lineitem_rows)),
        AttributeSpec("l_linenumber", INTEGER,
                      distinct_fraction=_distinct(7, lineitem_rows)),
        AttributeSpec("l_quantity", INTEGER,
                      distinct_fraction=_distinct(50, lineitem_rows)),
        AttributeSpec("l_extendedprice", DECIMAL, distinct_fraction=0.9),
        AttributeSpec("l_discount", DECIMAL,
                      distinct_fraction=_distinct(11, lineitem_rows)),
        AttributeSpec("l_tax", DECIMAL,
                      distinct_fraction=_distinct(9, lineitem_rows)),
        AttributeSpec("l_returnflag", VARCHAR, width=1,
                      distinct_fraction=_distinct(3, lineitem_rows)),
        AttributeSpec("l_linestatus", VARCHAR, width=1,
                      distinct_fraction=_distinct(2, lineitem_rows)),
        AttributeSpec("l_shipdate", DATE,
                      distinct_fraction=_distinct(2_500, lineitem_rows)),
        AttributeSpec("l_commitdate", DATE,
                      distinct_fraction=_distinct(2_500, lineitem_rows)),
        AttributeSpec("l_receiptdate", DATE,
                      distinct_fraction=_distinct(2_500, lineitem_rows)),
        AttributeSpec("l_shipinstruct", VARCHAR, width=12,
                      distinct_fraction=_distinct(4, lineitem_rows)),
        AttributeSpec("l_shipmode", VARCHAR, width=10,
                      distinct_fraction=_distinct(7, lineitem_rows)),
        AttributeSpec("l_comment", VARCHAR, width=27,
                      distinct_fraction=1.0),
    ], cardinality=lineitem_rows))

    return schema


#: The §7 distribution of the 8 tables between two data authorities.
#: The split interleaves the join paths (product-side and order-side data
#: under different authorities), so most of the 22 queries genuinely span
#: both authorities — the collaborative setting §1 motivates.
AUTHORITY_TABLES = {
    "A1": ("part", "supplier", "customer", "region"),
    "A2": ("partsupp", "orders", "lineitem", "nation"),
}


def table_owners() -> dict[str, str]:
    """Relation name → owning authority (A1 or A2)."""
    owners: dict[str, str] = {}
    for authority, tables in AUTHORITY_TABLES.items():
        for table in tables:
            owners[table] = authority
    return owners

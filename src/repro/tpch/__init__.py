"""TPC-H substrate: schema, data generator, 22 queries, §7 scenarios."""

from repro.tpch.datagen import TpchData, generate
from repro.tpch.queries import TpchQuery, all_queries, query, query_plan
from repro.tpch.scenarios import (
    PROVIDERS,
    SCENARIOS,
    Scenario,
    all_scenarios,
    scenario,
)
from repro.tpch.schema import (
    AUTHORITY_TABLES,
    build_tpch_schema,
    table_owners,
    table_rows,
)
from repro.tpch.udfs import TPCH_UDFS

__all__ = [
    "AUTHORITY_TABLES", "PROVIDERS", "SCENARIOS", "Scenario", "TPCH_UDFS",
    "TpchData", "TpchQuery", "all_queries", "all_scenarios",
    "build_tpch_schema", "generate", "query", "query_plan", "scenario",
    "table_owners", "table_rows",
]

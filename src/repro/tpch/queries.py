"""The 22 TPC-H queries as query plans (§7's workload).

Each query is reproduced within the paper's query class
(``select from where group by having`` with conjunctive conditions and
joins).  TPC-H constructs outside that class are *approximated* and every
approximation is recorded on the query object:

* correlated/EXISTS subqueries become joins or constant thresholds;
* arithmetic select expressions become a representative aggregate, or a
  udf (µ) when the computation is essential to the query (Q8, Q9, Q14,
  Q22) — which also exercises the model's udf rule;
* OR-blocks (Q19) keep one representative conjunctive block;
* self-joins on ``nation`` (Q7) become an IN predicate (the model's
  global attribute names preclude self-joins).

The *plan shapes* — deep joins over the two authorities' tables,
selective predicates, group-bys with additive aggregates — are what the
§7 experiments exercise, and those are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.operators import (
    Aggregate,
    AggregateFunction,
    BaseRelationNode,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeValuePredicate,
    ComparisonOp,
    equals,
)
from repro.core.schema import Schema
from repro.exceptions import PlanError
from repro.sql.planner import plan_query

Builder = Callable[[Schema], QueryPlan]


@dataclass(frozen=True)
class TpchQuery:
    """One TPC-H query reproduction."""

    number: int
    name: str
    description: str
    sql: str | None
    approximations: tuple[str, ...] = ()
    builder: Builder | None = field(default=None, compare=False)

    def plan(self, schema: Schema) -> QueryPlan:
        """Build the query plan against ``schema``."""
        if self.builder is not None:
            return self.builder(schema)
        assert self.sql is not None
        return plan_query(self.sql, schema)

    def __str__(self) -> str:
        return f"Q{self.number} ({self.name})"


# ---------------------------------------------------------------------------
# Direct builders for the udf queries and Q15's join-above-aggregate.
# ---------------------------------------------------------------------------


def _q8_builder(schema: Schema) -> QueryPlan:
    core = plan_query(
        "select o_orderdate, l_extendedprice"
        " from part join lineitem on p_partkey = l_partkey"
        " join supplier on l_suppkey = s_suppkey"
        " join orders on l_orderkey = o_orderkey"
        " join customer on o_custkey = c_custkey"
        " join nation on c_nationkey = n_nationkey"
        " join region on n_regionkey = r_regionkey"
        " where r_name = 'AMERICA'"
        " and p_type = 'ECONOMY ANODIZED STEEL'"
        " and o_orderdate between date '1995-01-01' and date '1996-12-31'",
        schema,
    )
    year = Udf(core.root, ["o_orderdate"], "o_orderdate",
               encrypted_capable=False, name="extract_year")
    grouped = GroupBy(year, ["o_orderdate"], [
        Aggregate(AggregateFunction.SUM, "l_extendedprice", alias="volume"),
    ])
    return QueryPlan(grouped)


def _q9_builder(schema: Schema) -> QueryPlan:
    core = plan_query(
        "select n_name, l_extendedprice, l_discount, ps_supplycost,"
        " l_quantity"
        " from part join partsupp on p_partkey = ps_partkey"
        " join lineitem on ps_suppkey = l_suppkey and ps_partkey = l_partkey"
        " join supplier on l_suppkey = s_suppkey"
        " join orders on l_orderkey = o_orderkey"
        " join nation on s_nationkey = n_nationkey"
        " where p_name like '%green%'",
        schema,
    )
    amount = Udf(
        core.root,
        ["l_extendedprice", "l_discount", "ps_supplycost", "l_quantity"],
        "l_extendedprice",
        encrypted_capable=False,
        name="profit_amount",
    )
    grouped = GroupBy(amount, ["n_name"], [
        Aggregate(AggregateFunction.SUM, "l_extendedprice",
                  alias="sum_profit"),
    ])
    return QueryPlan(grouped)


def _q14_builder(schema: Schema) -> QueryPlan:
    core = plan_query(
        "select p_type, l_extendedprice"
        " from lineitem join part on l_partkey = p_partkey"
        " where l_shipdate >= date '1995-09-01'"
        " and l_shipdate < date '1995-10-01'",
        schema,
    )
    promo = Udf(core.root, ["p_type", "l_extendedprice"],
                "l_extendedprice", encrypted_capable=False,
                name="promo_revenue")
    grouped = GroupBy(promo, [], [
        Aggregate(AggregateFunction.SUM, "l_extendedprice",
                  alias="promo_revenue"),
    ])
    return QueryPlan(grouped)


def _q15_builder(schema: Schema) -> QueryPlan:
    revenue = plan_query(
        "select l_suppkey, sum(l_extendedprice) as total_revenue"
        " from lineitem"
        " where l_shipdate >= date '1996-01-01'"
        " and l_shipdate < date '1996-04-01'"
        " group by l_suppkey"
        " having sum(l_extendedprice) > 100000",
        schema,
    )
    supplier = BaseRelationNode(
        schema.relation("supplier"),
        ["s_suppkey", "s_name", "s_phone"],
    )
    joined = Join(revenue.root, supplier, equals("l_suppkey", "s_suppkey"))
    projected = Projection(
        joined, ["s_suppkey", "s_name", "s_phone", "total_revenue"]
    )
    return QueryPlan(projected)


def _q22_builder(schema: Schema) -> QueryPlan:
    customer = BaseRelationNode(
        schema.relation("customer"), ["c_phone", "c_acctbal"]
    )
    positive = Selection(
        customer,
        AttributeValuePredicate("c_acctbal", ComparisonOp.GT, 0.0),
    )
    code = Udf(positive, ["c_phone"], "c_phone", encrypted_capable=False,
               name="country_code")
    grouped = GroupBy(code, ["c_phone"], [
        Aggregate(AggregateFunction.COUNT, alias="numcust"),
        Aggregate(AggregateFunction.SUM, "c_acctbal", alias="totacctbal"),
    ])
    return QueryPlan(grouped)


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

QUERIES: tuple[TpchQuery, ...] = (
    TpchQuery(
        1, "pricing summary report",
        "Aggregates returned/shipped lineitems per flag and status.",
        "select l_returnflag, l_linestatus,"
        " sum(l_quantity) as sum_qty,"
        " sum(l_extendedprice) as sum_base_price,"
        " avg(l_quantity) as avg_qty,"
        " avg(l_extendedprice) as avg_price,"
        " avg(l_discount) as avg_disc,"
        " count(*) as count_order"
        " from lineitem"
        " where l_shipdate <= date '1998-09-02'"
        " group by l_returnflag, l_linestatus",
        ("derived sums (disc_price, charge) reduced to their base-price "
         "aggregates",),
    ),
    TpchQuery(
        2, "minimum cost supplier",
        "Cheapest European supplier per brass part.",
        "select p_partkey, min(ps_supplycost) as min_cost"
        " from part join partsupp on p_partkey = ps_partkey"
        " join supplier on s_suppkey = ps_suppkey"
        " join nation on n_nationkey = s_nationkey"
        " join region on r_regionkey = n_regionkey"
        " where p_size = 15 and p_type like '%BRASS'"
        " and r_name = 'EUROPE'"
        " group by p_partkey",
        ("correlated min-cost subquery flattened into a grouped min",),
    ),
    TpchQuery(
        3, "shipping priority",
        "Unshipped orders with the highest revenue.",
        "select l_orderkey, o_orderdate, o_shippriority,"
        " sum(l_extendedprice) as revenue"
        " from customer join orders on c_custkey = o_custkey"
        " join lineitem on o_orderkey = l_orderkey"
        " where c_mktsegment = 'BUILDING'"
        " and o_orderdate < date '1995-03-15'"
        " and l_shipdate > date '1995-03-15'"
        " group by l_orderkey, o_orderdate, o_shippriority",
        ("revenue keeps the undiscounted extended price",),
    ),
    TpchQuery(
        4, "order priority checking",
        "Orders with at least one late lineitem, by priority.",
        "select o_orderpriority, count(*) as order_count"
        " from orders join lineitem on o_orderkey = l_orderkey"
        " where o_orderdate >= date '1993-07-01'"
        " and o_orderdate < date '1993-10-01'"
        " and l_commitdate < l_receiptdate"
        " group by o_orderpriority",
        ("EXISTS semi-join becomes an inner join (counts lineitems, not "
         "orders)",),
    ),
    TpchQuery(
        5, "local supplier volume",
        "Revenue through local suppliers per Asian nation.",
        "select n_name, sum(l_extendedprice) as revenue"
        " from customer join orders on c_custkey = o_custkey"
        " join lineitem on o_orderkey = l_orderkey"
        " join supplier on l_suppkey = s_suppkey"
        " join nation on s_nationkey = n_nationkey"
        " join region on n_regionkey = r_regionkey"
        " where r_name = 'ASIA'"
        " and c_nationkey = s_nationkey"
        " and o_orderdate >= date '1994-01-01'"
        " and o_orderdate < date '1995-01-01'"
        " group by n_name",
        ("revenue keeps the undiscounted extended price",),
    ),
    TpchQuery(
        6, "forecasting revenue change",
        "Revenue of discounted small-quantity lineitems.",
        "select sum(l_extendedprice) as revenue"
        " from lineitem"
        " where l_shipdate >= date '1994-01-01'"
        " and l_shipdate < date '1995-01-01'"
        " and l_discount between 0.05 and 0.07"
        " and l_quantity < 24",
        ("revenue keeps the undiscounted extended price",),
    ),
    TpchQuery(
        7, "volume shipping",
        "Trade volume between two nations per year.",
        "select n_name, sum(l_extendedprice) as revenue"
        " from supplier join lineitem on s_suppkey = l_suppkey"
        " join orders on o_orderkey = l_orderkey"
        " join customer on c_custkey = o_custkey"
        " join nation on s_nationkey = n_nationkey"
        " where n_name in ('FRANCE', 'GERMANY')"
        " and l_shipdate >= date '1995-01-01'"
        " and l_shipdate <= date '1996-12-31'"
        " group by n_name",
        ("the nation self-join becomes an IN predicate (global attribute "
         "names preclude self-joins)",
         "per-year grouping dropped (no year extraction without a udf)"),
    ),
    TpchQuery(
        8, "national market share",
        "Volume per order year for a part type in a region.",
        None,
        ("market-share ratio reduced to per-year volume",
         "year extraction is a udf (µ), exercising the model's udf rule"),
        builder=_q8_builder,
    ),
    TpchQuery(
        9, "product type profit",
        "Profit on green parts per supplying nation.",
        None,
        ("per-year grouping dropped",
         "profit expression is a udf (µ) over four attributes"),
        builder=_q9_builder,
    ),
    TpchQuery(
        10, "returned item reporting",
        "Customers who returned items, with lost revenue.",
        "select c_custkey, c_name, c_acctbal, n_name,"
        " sum(l_extendedprice) as revenue"
        " from customer join orders on c_custkey = o_custkey"
        " join lineitem on o_orderkey = l_orderkey"
        " join nation on c_nationkey = n_nationkey"
        " where o_orderdate >= date '1993-10-01'"
        " and o_orderdate < date '1994-01-01'"
        " and l_returnflag = 'R'"
        " group by c_custkey, c_name, c_acctbal, n_name",
        ("revenue keeps the undiscounted extended price",),
    ),
    TpchQuery(
        11, "important stock identification",
        "Part value held by German suppliers.",
        "select ps_partkey, sum(ps_supplycost) as value"
        " from partsupp join supplier on ps_suppkey = s_suppkey"
        " join nation on s_nationkey = n_nationkey"
        " where n_name = 'GERMANY'"
        " group by ps_partkey"
        " having sum(ps_supplycost) > 100",
        ("value keeps supply cost without the quantity factor",
         "the global-fraction threshold subquery becomes a constant"),
    ),
    TpchQuery(
        12, "shipping modes and order priority",
        "Late lineitems per ship mode.",
        "select l_shipmode, count(*) as line_count"
        " from orders join lineitem on o_orderkey = l_orderkey"
        " where l_shipmode in ('MAIL', 'SHIP')"
        " and l_shipdate < l_commitdate"
        " and l_commitdate < l_receiptdate"
        " and l_receiptdate >= date '1994-01-01'"
        " and l_receiptdate < date '1995-01-01'"
        " group by l_shipmode",
        ("the high/low priority split becomes a plain count",),
    ),
    TpchQuery(
        13, "customer distribution",
        "Orders per customer.",
        "select c_custkey, count(*) as c_count"
        " from customer join orders on c_custkey = o_custkey"
        " group by c_custkey",
        ("left outer join becomes inner (zero-order customers drop out)",
         "the o_comment NOT LIKE filter is dropped"),
    ),
    TpchQuery(
        14, "promotion effect",
        "Revenue share of promotional parts in one month.",
        None,
        ("the promo ratio becomes a promo-revenue sum",
         "promo detection is a udf (µ) over the part type"),
        builder=_q14_builder,
    ),
    TpchQuery(
        15, "top supplier",
        "Suppliers above a revenue threshold in one quarter.",
        None,
        ("the max-revenue subquery becomes a constant threshold",
         "demonstrates a join above a group-by in the model"),
        builder=_q15_builder,
    ),
    TpchQuery(
        16, "parts/supplier relationship",
        "Supplier counts per brand/type/size.",
        "select p_brand, p_type, p_size, count(*) as supplier_cnt"
        " from partsupp join part on p_partkey = ps_partkey"
        " where p_brand <> 'Brand#45'"
        " and p_size in (49, 14, 23, 45, 19, 3, 36, 9)"
        " group by p_brand, p_type, p_size",
        ("count(distinct) becomes count", "NOT LIKE filter dropped"),
    ),
    TpchQuery(
        17, "small-quantity-order revenue",
        "Revenue lost to small orders of one part class.",
        "select sum(l_extendedprice) as avg_yearly"
        " from lineitem join part on p_partkey = l_partkey"
        " where p_brand = 'Brand#23'"
        " and p_container = 'MED BOX'"
        " and l_quantity < 5",
        ("the correlated avg-quantity subquery becomes a constant "
         "threshold",),
    ),
    TpchQuery(
        18, "large volume customer",
        "Orders above 300 total quantity, with their customers.",
        "select c_custkey, o_orderkey, o_orderdate, o_totalprice,"
        " sum(l_quantity) as total_qty"
        " from customer join orders on c_custkey = o_custkey"
        " join lineitem on o_orderkey = l_orderkey"
        " group by c_custkey, o_orderkey, o_orderdate, o_totalprice"
        " having sum(l_quantity) > 300",
        ("the IN-subquery formulation becomes a direct grouped having",),
    ),
    TpchQuery(
        19, "discounted revenue",
        "Revenue from one brand/container/quantity class.",
        "select sum(l_extendedprice) as revenue"
        " from lineitem join part on p_partkey = l_partkey"
        " where p_brand = 'Brand#12'"
        " and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')"
        " and l_quantity between 1 and 11"
        " and p_size between 1 and 5"
        " and l_shipmode in ('AIR', 'REG AIR')"
        " and l_shipinstruct = 'DELIVER IN PERSON'",
        ("one representative conjunctive block of the three OR blocks",),
    ),
    TpchQuery(
        20, "potential part promotion",
        "Canadian suppliers with forest-part stock.",
        "select s_suppkey, sum(ps_availqty) as avail"
        " from supplier join nation on s_nationkey = n_nationkey"
        " join partsupp on ps_suppkey = s_suppkey"
        " join part on p_partkey = ps_partkey"
        " where n_name = 'CANADA'"
        " and p_name like 'forest%'"
        " group by s_suppkey",
        ("the half-of-shipped-quantity subquery is dropped",),
    ),
    TpchQuery(
        21, "suppliers who kept orders waiting",
        "Late Saudi suppliers on multi-supplier orders.",
        "select s_name, count(*) as numwait"
        " from supplier join lineitem on s_suppkey = l_suppkey"
        " join orders on o_orderkey = l_orderkey"
        " join nation on s_nationkey = n_nationkey"
        " where o_orderstatus = 'F'"
        " and l_commitdate < l_receiptdate"
        " and n_name = 'SAUDI ARABIA'"
        " group by s_name",
        ("the EXISTS/NOT EXISTS multi-supplier conditions are dropped",),
    ),
    TpchQuery(
        22, "global sales opportunity",
        "Account balances of idle customers per country code.",
        None,
        ("country-code extraction is a udf (µ) over the phone number",
         "the NOT EXISTS anti-join and avg-balance subquery become a "
         "positive-balance filter"),
        builder=_q22_builder,
    ),
)


def query(number: int) -> TpchQuery:
    """Look up one of the 22 queries by number."""
    if not 1 <= number <= 22:
        raise PlanError(f"TPC-H defines queries 1..22, not {number}")
    return QUERIES[number - 1]


def all_queries() -> tuple[TpchQuery, ...]:
    """All 22 queries, in order."""
    return QUERIES


def query_plan(number: int, schema: Schema) -> QueryPlan:
    """Convenience: the plan of query ``number`` against ``schema``."""
    return query(number).plan(schema)

"""Deterministic TPC-H data generator (a small, pure-Python dbgen).

Generates the eight tables with the official schema, referentially
consistent keys, and the value domains queries select on (market
segments, ship modes, brands, date ranges, ...).  A fixed seed makes
generation reproducible; sizes follow the TPC-H scaling rules via
:func:`repro.tpch.schema.table_rows`.

Substitutes the authors' 1 GB dbgen database (see DESIGN.md): the
evaluation reports normalized costs, so the scale factor cancels out.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.engine.table import Table
from repro.tpch.schema import table_rows

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                   "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
SHIP_INSTRUCTIONS = ("COLLECT COD", "DELIVER IN PERSON", "NONE",
                     "TAKE BACK RETURN")
CONTAINERS = ("SM CASE", "SM BOX", "MED BOX", "MED BAG", "LG CASE",
              "LG BOX", "JUMBO PKG", "WRAP CASE", "JUMBO BOX", "LG CAN")
TYPE_SYLLABLES_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                    "PROMO")
TYPE_SYLLABLES_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                    "BRUSHED")
TYPE_SYLLABLES_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
NAME_WORDS = ("almond", "antique", "aquamarine", "azure", "beige", "bisque",
              "black", "blanched", "blue", "blush", "brown", "burlywood",
              "burnished", "chartreuse", "chiffon", "chocolate", "coral",
              "cornflower", "cornsilk", "cream", "cyan", "dark", "deep",
              "dim", "dodger", "drab", "firebrick", "floral", "forest",
              "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
              "honeydew", "hot", "hotpink", "indian", "ivory", "khaki")

START_DATE = date(1992, 1, 1)
END_DATE = date(1998, 12, 1)
_DATE_SPAN = (END_DATE - START_DATE).days


class TpchData:
    """The generated database: one :class:`Table` per relation."""

    def __init__(self, tables: dict[str, Table], scale: float,
                 seed: int) -> None:
        self.tables = tables
        self.scale = scale
        self.seed = seed

    def table(self, name: str) -> Table:
        """Look up a generated table."""
        return self.tables[name]

    def catalog(self) -> dict[str, Table]:
        """All tables keyed by relation name (executor catalog)."""
        return dict(self.tables)

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}={len(t)}" for n, t in self.tables.items())
        return f"TpchData(scale={self.scale}; {sizes})"


#: Non-key measure columns that ``null_rate`` may blank out — keys and
#: the columns queries group on stay NOT NULL, like real TPC-H.
NULLABLE_COLUMNS: dict[str, tuple[str, ...]] = {
    "supplier": ("s_acctbal",),
    "customer": ("c_acctbal",),
    "part": ("p_retailprice",),
    "partsupp": ("ps_supplycost",),
    "orders": ("o_totalprice",),
    "lineitem": ("l_discount", "l_tax"),
}


def generate(scale: float = 0.001, seed: int = 20170801,
             null_rate: float = 0.0) -> TpchData:
    """Generate the TPC-H database at scale factor ``scale``.

    ``null_rate`` (0.0–1.0) replaces that fraction of the
    :data:`NULLABLE_COLUMNS` measure values with SQL NULL (``None``) —
    an opt-in stressor for the engine's NULL-handling paths; the default
    keeps the classic all-populated database.

    Examples
    --------
    >>> data = generate(scale=0.001)
    >>> len(data.table("region"))
    5
    >>> len(data.table("lineitem")) >= 1000
    True
    >>> sparse = generate(scale=0.001, null_rate=0.5)
    >>> any(v is None for v in sparse.table("orders")
    ...     .column_values("o_totalprice"))
    True
    """
    if not 0.0 <= null_rate <= 1.0:
        raise ValueError(f"null_rate must be in [0, 1], got {null_rate}")
    rng = random.Random(seed)
    tables: dict[str, Table] = {}

    tables["region"] = Table("region",
                             ("r_regionkey", "r_name", "r_comment"), [
        (i, name, f"region {name.lower()}")
        for i, name in enumerate(REGIONS)
    ])

    tables["nation"] = Table(
        "nation",
        ("n_nationkey", "n_name", "n_regionkey", "n_comment"),
        [(i, name, region, f"nation {name.lower()}")
         for i, (name, region) in enumerate(NATIONS)],
    )

    supplier_count = table_rows("supplier", scale)
    tables["supplier"] = Table(
        "supplier",
        ("s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
         "s_acctbal", "s_comment"),
        [(k,
          f"Supplier#{k:09d}",
          f"addr-{rng.randrange(10**6)}",
          rng.randrange(len(NATIONS)),
          _phone(rng),
          round(rng.uniform(-999.99, 9999.99), 2),
          "supplier comment")
         for k in range(1, supplier_count + 1)],
    )

    customer_count = table_rows("customer", scale)
    tables["customer"] = Table(
        "customer",
        ("c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
         "c_acctbal", "c_mktsegment", "c_comment"),
        [(k,
          f"Customer#{k:09d}",
          f"addr-{rng.randrange(10**6)}",
          rng.randrange(len(NATIONS)),
          _phone(rng),
          round(rng.uniform(-999.99, 9999.99), 2),
          rng.choice(MARKET_SEGMENTS),
          "customer comment")
         for k in range(1, customer_count + 1)],
    )

    part_count = table_rows("part", scale)
    tables["part"] = Table(
        "part",
        ("p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
         "p_container", "p_retailprice", "p_comment"),
        [(k,
          " ".join(rng.sample(NAME_WORDS, 3)),
          f"Manufacturer#{rng.randrange(1, 6)}",
          f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
          " ".join((rng.choice(TYPE_SYLLABLES_1),
                    rng.choice(TYPE_SYLLABLES_2),
                    rng.choice(TYPE_SYLLABLES_3))),
          rng.randrange(1, 51),
          rng.choice(CONTAINERS),
          round(900 + (k % 1000) + rng.uniform(0, 100), 2),
          "part comment")
         for k in range(1, part_count + 1)],
    )

    partsupp_count = table_rows("partsupp", scale)
    partsupp_rows = []
    for index in range(partsupp_count):
        partkey = (index % part_count) + 1
        suppkey = ((index * 7) % supplier_count) + 1
        partsupp_rows.append((
            partkey, suppkey,
            rng.randrange(1, 10_000),
            round(rng.uniform(1.0, 1000.0), 2),
            "partsupp comment",
        ))
    tables["partsupp"] = Table(
        "partsupp",
        ("ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
         "ps_comment"),
        partsupp_rows,
    )

    orders_count = table_rows("orders", scale)
    order_dates: dict[int, date] = {}
    orders_rows = []
    for k in range(1, orders_count + 1):
        order_date = START_DATE + timedelta(
            days=rng.randrange(_DATE_SPAN - 151)
        )
        order_dates[k] = order_date
        orders_rows.append((
            k,
            rng.randrange(1, customer_count + 1),
            rng.choice("OFP"),
            round(rng.uniform(850.0, 500_000.0), 2),
            order_date,
            rng.choice(ORDER_PRIORITIES),
            f"Clerk#{rng.randrange(1, 1001):09d}",
            0,
            "order comment",
        ))
    tables["orders"] = Table(
        "orders",
        ("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
         "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
         "o_comment"),
        orders_rows,
    )

    lineitem_count = table_rows("lineitem", scale)
    lineitem_rows = []
    produced = 0
    orderkey = 0
    while produced < lineitem_count:
        orderkey = orderkey % orders_count + 1
        lines = rng.randrange(1, 8)
        order_date = order_dates[orderkey]
        for line in range(1, lines + 1):
            if produced >= lineitem_count:
                break
            quantity = rng.randrange(1, 51)
            price = round(quantity * rng.uniform(900.0, 1100.0), 2)
            ship_date = order_date + timedelta(days=rng.randrange(1, 122))
            commit_date = order_date + timedelta(days=rng.randrange(30, 91))
            receipt_date = ship_date + timedelta(days=rng.randrange(1, 31))
            lineitem_rows.append((
                orderkey,
                rng.randrange(1, part_count + 1),
                rng.randrange(1, supplier_count + 1),
                line,
                quantity,
                price,
                round(rng.uniform(0.0, 0.10), 2),
                round(rng.uniform(0.0, 0.08), 2),
                rng.choice("ANR"),
                rng.choice("OF"),
                ship_date,
                commit_date,
                receipt_date,
                rng.choice(SHIP_INSTRUCTIONS),
                rng.choice(SHIP_MODES),
                "lineitem comment",
            ))
            produced += 1
    tables["lineitem"] = Table(
        "lineitem",
        ("l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
         "l_quantity", "l_extendedprice", "l_discount", "l_tax",
         "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
         "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"),
        lineitem_rows,
    )

    if null_rate > 0.0:
        _inject_nulls(tables, null_rate, rng)

    return TpchData(tables, scale, seed)


def _inject_nulls(tables: dict[str, Table], rate: float,
                  rng: random.Random) -> None:
    """Blank out a ``rate`` fraction of the nullable measure columns."""
    for name, columns in NULLABLE_COLUMNS.items():
        table = tables[name]
        transforms = {
            column: (lambda v, r=rng: None if r.random() < rate else v)
            for column in columns
        }
        tables[name] = table.map_columns(transforms)


def _phone(rng: random.Random) -> str:
    return (f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
            f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}")

"""The three authorization scenarios of §7.

The 8 TPC-H tables are split between two data authorities (A1: part,
supplier, partsupp, nation, region; A2: customer, orders, lineitem), and
queries are issued by user U with three cloud providers P1, P2, P3
available:

* **UA** — authorizations permit access to the base relations only to the
  querying user (each authority keeps plaintext access to its own data);
* **UAPenc** — additionally, providers may access *all* attributes of all
  relations in encrypted form;
* **UAPmix** — as UAPenc, but providers get plaintext visibility on half
  of each relation's attributes (the first half, deterministically) and
  encrypted visibility on the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.authorization import (
    Authorization,
    Policy,
    Subject,
    SubjectKind,
)
from repro.core.schema import Schema
from repro.exceptions import AuthorizationError
from repro.tpch.schema import AUTHORITY_TABLES, table_owners

#: Scenario identifiers, in presentation order (Figures 9–10).
SCENARIOS = ("UA", "UAPenc", "UAPmix")

USER = "U"
AUTHORITIES = ("A1", "A2")
PROVIDERS = ("P1", "P2", "P3")


@dataclass(frozen=True)
class Scenario:
    """A named authorization scenario, ready for the pipeline."""

    name: str
    policy: Policy
    subjects: tuple[Subject, ...]
    user: str
    owners: dict[str, str]

    @property
    def subject_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.subjects)


def build_subjects() -> tuple[Subject, ...]:
    """U, the two authorities, and the three providers."""
    subjects = [Subject(USER, SubjectKind.USER)]
    subjects += [Subject(a, SubjectKind.AUTHORITY) for a in AUTHORITIES]
    subjects += [Subject(p, SubjectKind.PROVIDER) for p in PROVIDERS]
    return tuple(subjects)


def scenario(name: str, schema: Schema,
             mix_split: str = "prefix") -> Scenario:
    """Build one of the §7 scenarios over a TPC-H schema.

    ``mix_split`` selects which half of each relation's attributes the
    UAPmix scenario opens to providers in plaintext: ``"prefix"`` (the
    leading half — keys and names, which keeps visibility *uniform*
    across join pairs) or ``"alternating"`` (every other attribute).
    The alternating split scatters plaintext across join equivalences and
    triggers Definition 4.1's condition 3 — non-uniform visibility — so
    providers lose eligibility for most joins: a built-in ablation of the
    uniform-visibility rule (see the ablation benchmarks).

    Examples
    --------
    >>> from repro.tpch.schema import build_tpch_schema
    >>> s = scenario("UAPenc", build_tpch_schema())
    >>> sorted(s.policy.view("P1").encrypted) == \
        sorted(build_tpch_schema().all_attributes())
    True
    """
    if name not in SCENARIOS:
        raise AuthorizationError(
            f"unknown scenario {name!r}; choose from {SCENARIOS}"
        )
    if mix_split not in ("prefix", "alternating"):
        raise AuthorizationError(
            f"unknown mix_split {mix_split!r}"
        )
    policy = Policy(schema)
    owners = table_owners()

    for authority, tables in AUTHORITY_TABLES.items():
        for table in tables:
            relation = schema.relation(table)
            attributes = relation.attribute_names
            # The user can access every relation in plaintext (it issues
            # the queries); the owning authority keeps its own data.
            policy.grant(Authorization(relation, attributes, (), USER))
            policy.grant(Authorization(relation, attributes, (), authority))
            if name == "UA":
                continue
            for provider in PROVIDERS:
                if name == "UAPenc":
                    policy.grant(Authorization(
                        relation, (), attributes, provider
                    ))
                else:  # UAPmix
                    # "half of the attributes that were previously only
                    # accessible in encrypted form" become plaintext; the
                    # paper does not fix which half.
                    if mix_split == "prefix":
                        half = (len(attributes) + 1) // 2
                        plaintext = attributes[:half]
                        encrypted = attributes[half:]
                    else:
                        plaintext = attributes[0::2]
                        encrypted = attributes[1::2]
                    policy.grant(Authorization(
                        relation, plaintext, encrypted, provider
                    ))

    return Scenario(
        name=name,
        policy=policy,
        subjects=build_subjects(),
        user=USER,
        owners=owners,
    )


def all_scenarios(schema: Schema,
                  mix_split: str = "prefix") -> dict[str, Scenario]:
    """All three scenarios over one schema."""
    return {name: scenario(name, schema, mix_split) for name in SCENARIOS}

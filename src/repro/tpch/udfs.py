"""User-defined functions used by the TPC-H query approximations.

The paper notes that TPC-H itself contains no udfs but that udf-heavy
queries benefit *more* from provider delegation (§7).  Four of our query
reproductions model their scalar expressions / substring computations as
udf operators (µ), which exercises the model's udf profile rule and the
plaintext-requirement machinery; these are their executable bodies.
"""

from __future__ import annotations

from datetime import date

from repro.exceptions import ExecutionError


def extract_year(arguments: dict[str, object]) -> int:
    """Q8: ``extract(year from o_orderdate)``."""
    value = arguments["o_orderdate"]
    if not isinstance(value, date):
        raise ExecutionError("extract_year expects a date")
    return value.year


def profit_amount(arguments: dict[str, object]) -> float:
    """Q9: ``l_extendedprice*(1-l_discount) - ps_supplycost*l_quantity``."""
    price = float(arguments["l_extendedprice"])  # type: ignore[arg-type]
    discount = float(arguments["l_discount"])  # type: ignore[arg-type]
    cost = float(arguments["ps_supplycost"])  # type: ignore[arg-type]
    quantity = float(arguments["l_quantity"])  # type: ignore[arg-type]
    return round(price * (1.0 - discount) - cost * quantity, 2)


def promo_revenue(arguments: dict[str, object]) -> float:
    """Q14: discounted price when the part type is promotional, else 0."""
    p_type = arguments["p_type"]
    price = float(arguments["l_extendedprice"])  # type: ignore[arg-type]
    if isinstance(p_type, str) and p_type.startswith("PROMO"):
        return round(price, 2)
    return 0.0


def country_code(arguments: dict[str, object]) -> str:
    """Q22: ``substring(c_phone from 1 for 2)``."""
    phone = arguments["c_phone"]
    if not isinstance(phone, str):
        raise ExecutionError("country_code expects a string")
    return phone[:2]


#: Registry handed to executors running TPC-H plans.
TPCH_UDFS = {
    "extract_year": extract_year,
    "profit_amount": profit_amount,
    "promo_revenue": promo_revenue,
    "country_code": country_code,
}

"""A dependency-free Prometheus-style metrics registry.

The production front-end needs counters (admissions, rejections,
credits spent), gauges (queue depths, in-flight queries, breaker
states) and latency histograms (queue wait, query and fragment
latencies) scrapable in the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
without adding a client-library dependency the container does not
have.  This module implements the minimal consistent subset:

* :class:`Counter` — monotone; ``inc(amount)`` with ``amount >= 0``,
  plus :meth:`Counter.set_total` for *collector-maintained* totals
  mirrored from an external monotone source (cache hit counters,
  breaker trip counts) at scrape time;
* :class:`Gauge` — ``set``/``inc``/``dec``;
* :class:`Histogram` — fixed upper-bound buckets chosen at
  registration; ``observe(value)``; rendered as the standard
  cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.

Every metric family may declare label names once; children are
obtained with :meth:`MetricFamily.labels` and are created on first
use.  All operations are thread-safe — gateway workers, runtime
fragment threads and the scraping thread all touch the registry
concurrently.

Registries also accept *collector callbacks*
(:meth:`MetricsRegistry.register_collector`): callables invoked at the
start of every :meth:`MetricsRegistry.render`, used to mirror
point-in-time snapshots (``health_info()`` breaker states, cache
counters) into gauges and counters right before exposition.

Examples
--------
>>> registry = MetricsRegistry()
>>> served = registry.counter("repro_queries_total",
...                           "Queries served.", labelnames=("tenant",))
>>> served.labels("gold").inc()
>>> served.labels("gold").inc(2)
>>> served.labels("gold").value()
3.0
>>> depth = registry.gauge("repro_queue_depth", "Queued requests.")
>>> depth.set(4)
>>> waits = registry.histogram("repro_wait_seconds", "Queue wait.",
...                            buckets=(0.1, 1.0))
>>> waits.observe(0.05); waits.observe(5.0)
>>> print(registry.render(), end="")
# HELP repro_queries_total Queries served.
# TYPE repro_queries_total counter
repro_queries_total{tenant="gold"} 3.0
# HELP repro_queue_depth Queued requests.
# TYPE repro_queue_depth gauge
repro_queue_depth 4.0
# HELP repro_wait_seconds Queue wait.
# TYPE repro_wait_seconds histogram
repro_wait_seconds_bucket{le="0.1"} 1
repro_wait_seconds_bucket{le="1.0"} 1
repro_wait_seconds_bucket{le="+Inf"} 2
repro_wait_seconds_sum 5.05
repro_wait_seconds_count 2
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Iterable, Sequence

#: Metric and label names per the Prometheus data model.
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): sub-millisecond cache hits up to
#: multi-second saturated-queue waits.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for ratios in [0, 1] (e.g. the fraction of a query's
#: deadline budget left at delivery): dense near 0 where queries that
#: barely made it — the early-warning signal for shedding — land.
DEFAULT_FRACTION_BUCKETS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
)


def _format_value(value: float) -> str:
    """A float in exposition format (``repr`` round-trips exactly)."""
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """One monotone counter child (a single labelled time series)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        with self._lock:
            self._value += amount

    def set_total(self, total: float) -> None:
        """Mirror an externally maintained monotone total.

        For collectors copying counters the registry does not own
        (cache hits, breaker trips).  The total may never decrease.
        """
        with self._lock:
            if total < self._value:
                raise ValueError(
                    f"counter total went backwards: "
                    f"{self._value!r} -> {total!r}")
            self._value = total

    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """One gauge child: a value that can go up and down."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """One histogram child with fixed, registration-time buckets."""

    def __init__(self, lock: threading.Lock,
                 upper_bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self._upper_bounds = upper_bounds
        self._bucket_counts = [0] * (len(upper_bounds) + 1)  # +Inf last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._upper_bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict[str, object]:
        """Point-in-time copy: cumulative bucket counts, sum, count."""
        with self._lock:
            counts = list(self._bucket_counts)
            total_sum, total_count = self._sum, self._count
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._upper_bounds + (float("inf"),),
                                counts):
            running += count
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": total_sum,
                "count": total_count}

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (the bucket upper bound).

        Good enough for gating tail-latency invariants in benchmarks;
        returns ``inf`` when the quantile lands in the overflow bucket
        and ``0.0`` when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        snap = self.snapshot()
        count = snap["count"]
        if not count:
            return 0.0
        rank = q * count
        for bound, cumulative in snap["buckets"]:
            if cumulative >= rank:
                return bound
        return float("inf")


class MetricFamily:
    """A named metric with fixed label names and per-labelset children."""

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: tuple[str, ...],
                 child_factory: Callable[[threading.Lock], object]) -> None:
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._child_factory = child_factory
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values: str) -> object:
        """The child for this label-value tuple (created on first use)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {values!r}")
        key = tuple(str(value) for value in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child_factory(self._lock)
                self._children[key] = child
        return child

    def _items(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class _UnlabelledFamily(MetricFamily):
    """A family with no labels behaves as its single child directly."""

    def __init__(self, name: str, help_text: str, kind: str,
                 child_factory: Callable[[threading.Lock], object]) -> None:
        super().__init__(name, help_text, kind, (), child_factory)
        self._children[()] = child_factory(self._lock)

    def __getattr__(self, attribute: str):
        # Delegate inc/set/observe/value/snapshot/... to the sole child.
        return getattr(self._children[()], attribute)


class MetricsRegistry:
    """Owns metric families and renders the text exposition."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch the existing) counter family ``name``."""
        return self._register(name, help_text, "counter",
                              tuple(labelnames),
                              lambda lock: Counter(lock))

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch the existing) gauge family ``name``."""
        return self._register(name, help_text, "gauge",
                              tuple(labelnames),
                              lambda lock: Gauge(lock))

    def histogram(self, name: str, help_text: str,
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
                  labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch the existing) histogram family ``name``.

        ``buckets`` are finite upper bounds; they are sorted, must be
        distinct, and the implicit ``+Inf`` bucket is always appended.
        """
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histograms need at least one finite bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram buckets: {bounds}")
        if bounds[-1] == float("inf"):
            raise ValueError("+Inf is implicit; pass finite buckets only")
        return self._register(
            name, help_text, "histogram", tuple(labelnames),
            lambda lock: Histogram(lock, bounds))

    def _register(self, name: str, help_text: str, kind: str,
                  labelnames: tuple[str, ...],
                  child_factory) -> MetricFamily:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        if kind == "histogram" and "le" in labelnames:
            raise ValueError("'le' is reserved on histograms")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}")
                return family
            if labelnames:
                family = MetricFamily(name, help_text, kind, labelnames,
                                      child_factory)
            else:
                family = _UnlabelledFamily(name, help_text, kind,
                                           child_factory)
            self._families[name] = family
            return family

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Run ``collect()`` at the start of every :meth:`render`.

        Collectors mirror externally owned snapshots (health registry,
        cache counters) into this registry's metrics right before the
        scrape, so exported values are point-in-time consistent without
        instrumenting every increment site.
        """
        with self._lock:
            self._collectors.append(collect)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.help_text)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family._items():
                if family.kind == "histogram":
                    self._render_histogram(lines, family, labelvalues,
                                           child)
                else:
                    labels = _render_labels(family.labelnames, labelvalues)
                    lines.append(f"{family.name}{labels} "
                                 f"{_format_value(child.value())}")
        return "".join(f"{line}\n" for line in lines)

    @staticmethod
    def _render_histogram(lines: list[str], family: MetricFamily,
                          labelvalues: tuple[str, ...],
                          child: Histogram) -> None:
        snap = child.snapshot()
        names = family.labelnames + ("le",)
        for bound, cumulative in snap["buckets"]:
            bound_text = "+Inf" if bound == float("inf") else repr(bound)
            labels = _render_labels(names, labelvalues + (bound_text,))
            lines.append(f"{family.name}_bucket{labels} {cumulative}")
        plain = _render_labels(family.labelnames, labelvalues)
        lines.append(f"{family.name}_sum{plain} "
                     f"{_format_value(snap['sum'])}")
        lines.append(f"{family.name}_count{plain} {snap['count']}")

"""Observability: the dependency-free metrics layer.

:mod:`repro.obs.metrics` is a small Prometheus-style metrics registry
(counters, gauges, fixed-bucket histograms, text exposition).  It
deliberately imports nothing from the rest of the library, so every
layer — the gateway, the distributed runtime, benchmarks — can emit
metrics without creating import cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

"""Value-level encryption/decryption against key material.

Shared by the executor (Encrypt/Decrypt operators) and the expression
evaluator (note 2 of §5: a subject holding the covering key may evaluate
a condition on plaintext values even when the plan carries the attribute
encrypted, by decrypting locally).

Two granularities: :func:`encrypt_value`/:func:`decrypt_value` transform
one cell, while :func:`encrypt_column`/:func:`decrypt_column` transform a
whole column in one Python-level dispatch — scheme routing, cipher
construction, and key checks are resolved once per column, and the
ciphers' bulk APIs (``encrypt_many``/``decrypt_many``) do the rest.  Both
granularities share the memoized per-material cipher instances of
:class:`~repro.crypto.keymanager.KeyMaterial`, produce identical
ciphertexts, and raise the same errors (NULLs pass through untouched;
already-encrypted inputs and foreign-key ciphertexts fail loudly).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyMaterial, KeyStore
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import ExecutionError


def encrypt_value(material: KeyMaterial, value: object) -> EncryptedValue:
    """Encrypt one value under the scheme attached to ``material``."""
    if isinstance(value, (EncryptedValue, EncryptedAggregate)):
        raise ExecutionError("value is already encrypted")
    scheme = material.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_public is None:
            raise ExecutionError(f"key {material.name} lacks Paillier parts")
        if not isinstance(value, (int, float)):
            raise ExecutionError("Paillier encrypts numeric values only")
        return EncryptedValue(
            key_name=material.name, scheme=scheme,
            token=material.paillier_public.encrypt(value),
        )
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        token: object = material.deterministic_cipher().encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.RANDOMIZED:
        token = material.randomized_cipher().encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.OPE:
        token = material.ope_cipher().encrypt(value)
        recovery = material.recovery_cipher().encrypt(value)
        return EncryptedValue(material.name, scheme, token, recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


def encrypt_column(material: KeyMaterial, values: Sequence[object],
                   pool=None) -> list[object]:
    """Bulk :func:`encrypt_value` over a whole column.

    NULLs stay NULL (Encrypt passes them through); everything else must
    be plaintext.  Equivalent to the per-cell loop, one dispatch total.

    With a :class:`~repro.parallel.WorkerPool` (and a column past its
    size threshold) the plaintexts partition into per-worker chunks;
    validation stays parent-side, raw tokens come back in order, and
    the output is distributed identically to the inline path (workers
    draw their own IVs/obfuscators for the randomized schemes).
    """
    out: list[object] = [None] * len(values)
    positions: list[int] = []
    plain: list[object] = []
    for index, value in enumerate(values):
        if value is None:
            continue
        if isinstance(value, (EncryptedValue, EncryptedAggregate)):
            raise ExecutionError("value is already encrypted")
        positions.append(index)
        plain.append(value)
    if not positions:
        return out
    scheme = material.scheme
    name = material.name
    parallel = pool is not None and pool.should_parallelize(len(plain))
    if parallel:
        from repro.parallel import kernels
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_public is None:
            raise ExecutionError(f"key {name} lacks Paillier parts")
        for value in plain:
            if not isinstance(value, (int, float)):
                raise ExecutionError("Paillier encrypts numeric values only")
        if parallel:
            from repro.crypto.paillier import PaillierCiphertext

            public = material.paillier_public
            tokens: list[object] = [
                PaillierCiphertext(public, raw)
                for raw in pool.map_chunks(kernels.column_encrypt_chunk,
                                           kernels.dumps(material), plain)
            ]
        else:
            tokens = material.paillier_public.encrypt_many(plain)
    elif material.symmetric is None:
        raise ExecutionError(f"key {name} lacks symmetric material")
    elif scheme in (EncryptionScheme.DETERMINISTIC,
                    EncryptionScheme.RANDOMIZED):
        if parallel:
            tokens = pool.map_chunks(kernels.column_encrypt_chunk,
                                     kernels.dumps(material), plain)
        elif scheme is EncryptionScheme.DETERMINISTIC:
            tokens = material.deterministic_cipher().encrypt_many(plain)
        else:
            tokens = material.randomized_cipher().encrypt_many(plain)
    elif scheme is EncryptionScheme.OPE:
        if parallel:
            pairs = pool.map_chunks(kernels.column_encrypt_chunk,
                                    kernels.dumps(material), plain)
        else:
            pairs = list(zip(material.ope_cipher().encrypt_many(plain),
                             material.recovery_cipher().encrypt_many(plain)))
        for index, (token, recovery) in zip(positions, pairs):
            out[index] = EncryptedValue(name, scheme, token, recovery)
        return out
    else:
        raise ExecutionError(f"unsupported scheme {scheme}")
    for index, token in zip(positions, tokens):
        out[index] = EncryptedValue(name, scheme, token)
    return out


def decrypt_value(material: KeyMaterial, value: object) -> object:
    """Invert :func:`encrypt_value` (also resolves encrypted aggregates)."""
    if isinstance(value, EncryptedAggregate):
        return _decrypt_aggregate(material, value)
    if not isinstance(value, EncryptedValue):
        raise ExecutionError("value is not encrypted")
    if value.key_name != material.name:
        raise ExecutionError(
            f"value encrypted under {value.key_name}, not {material.name}"
        )
    scheme = value.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
        from repro.crypto.paillier import PaillierCiphertext

        assert isinstance(value.token, PaillierCiphertext)
        return material.paillier_private.decrypt(value.token)
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        assert isinstance(value.token, bytes)
        return material.deterministic_cipher().decrypt(value.token)
    if scheme is EncryptionScheme.RANDOMIZED:
        assert isinstance(value.token, bytes)
        return material.randomized_cipher().decrypt(value.token)
    if scheme is EncryptionScheme.OPE:
        if value.recovery is None:
            raise ExecutionError("OPE value lacks its recovery ciphertext")
        return material.recovery_cipher().decrypt(value.recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


def decrypt_column(material: KeyMaterial, values: Sequence[object],
                   pool=None) -> list[object]:
    """Bulk :func:`decrypt_value` over a whole column.

    The scheme decoder is resolved once for the column's dominant scheme
    (cells are checked individually, so a stray aggregate or foreign-key
    ciphertext still gets the per-cell diagnostics).

    With a :class:`~repro.parallel.WorkerPool` (and a column past its
    size threshold) the cells group per scheme and ship as raw tokens to
    worker chunks; key-name checks, aggregates, and key-part validation
    stay parent-side, and a tampered token's
    :class:`~repro.exceptions.CryptoError` raises through the chunk's
    future like the inline loop raises it.
    """
    if pool is not None and pool.should_parallelize(len(values)):
        return _decrypt_column_parallel(material, values, pool)
    decoders: dict[EncryptionScheme, object] = {}

    def decoder(scheme: EncryptionScheme):
        decode = decoders.get(scheme)
        if decode is None:
            decode = _column_decoder(material, scheme)
            decoders[scheme] = decode
        return decode

    name = material.name
    out: list[object] = []
    append = out.append
    for value in values:
        if value is None:
            append(None)
        elif isinstance(value, EncryptedValue):
            if value.key_name != name:
                raise ExecutionError(
                    f"value encrypted under {value.key_name}, not {name}"
                )
            append(decoder(value.scheme)(value))
        elif isinstance(value, EncryptedAggregate):
            append(_decrypt_aggregate(material, value))
        else:
            raise ExecutionError("value is not encrypted")
    return out


def _decrypt_column_parallel(material: KeyMaterial,
                             values: Sequence[object], pool) -> list[object]:
    """The chunked worker path of :func:`decrypt_column`.

    One parent-side pass groups cells per scheme (running every per-cell
    check the inline loop runs) and strips tokens to their raw transport
    form; each scheme group then fans out through the pool and lands
    back at its cells' positions.
    """
    from repro.parallel import kernels

    name = material.name
    out: list[object] = [None] * len(values)
    groups: dict[EncryptionScheme, tuple[list[int], list[object]]] = {}
    for index, value in enumerate(values):
        if value is None:
            continue
        if isinstance(value, EncryptedValue):
            if value.key_name != name:
                raise ExecutionError(
                    f"value encrypted under {value.key_name}, not {name}"
                )
            scheme = value.scheme
            if scheme is EncryptionScheme.OPE:
                if value.recovery is None:
                    raise ExecutionError(
                        "OPE value lacks its recovery ciphertext"
                    )
                token: object = value.recovery
            elif scheme is EncryptionScheme.PAILLIER:
                token = value.token.value
            else:
                token = value.token
            positions, tokens = groups.setdefault(scheme, ([], []))
            positions.append(index)
            tokens.append(token)
        elif isinstance(value, EncryptedAggregate):
            out[index] = _decrypt_aggregate(material, value)
        else:
            raise ExecutionError("value is not encrypted")
    if not groups:
        return out
    blob = kernels.dumps(material)
    for scheme, (positions, tokens) in groups.items():
        _require_scheme_parts(material, scheme)
        plains = pool.map_chunks(kernels.column_decrypt_chunk,
                                 (blob, scheme.name), tokens)
        for index, plain in zip(positions, plains):
            out[index] = plain
    return out


def _require_scheme_parts(material: KeyMaterial,
                          scheme: EncryptionScheme) -> None:
    """The key-part checks of :func:`_column_decoder`, shared with the
    parallel path (which validates before submitting chunks)."""
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
    elif material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    elif scheme not in (EncryptionScheme.DETERMINISTIC,
                        EncryptionScheme.RANDOMIZED,
                        EncryptionScheme.OPE):
        raise ExecutionError(f"unsupported scheme {scheme}")


def _column_decoder(material: KeyMaterial, scheme: EncryptionScheme):
    """One specialized ``EncryptedValue -> plaintext`` closure per scheme."""
    _require_scheme_parts(material, scheme)
    if scheme is EncryptionScheme.PAILLIER:
        private = material.paillier_private
        return lambda value: private.decrypt(value.token)
    if scheme is EncryptionScheme.DETERMINISTIC:
        decrypt = material.deterministic_cipher().decrypt
        return lambda value: decrypt(value.token)
    if scheme is EncryptionScheme.RANDOMIZED:
        decrypt = material.randomized_cipher().decrypt
        return lambda value: decrypt(value.token)
    if scheme is EncryptionScheme.OPE:
        decrypt = material.recovery_cipher().decrypt

        def decode_ope(value: EncryptedValue) -> object:
            if value.recovery is None:
                raise ExecutionError(
                    "OPE value lacks its recovery ciphertext"
                )
            return decrypt(value.recovery)

        return decode_ope
    raise ExecutionError(f"unsupported scheme {scheme}")


def _decrypt_aggregate(material: KeyMaterial,
                       value: EncryptedAggregate) -> object:
    if material.paillier_private is None:
        raise ExecutionError(
            f"key {material.name} lacks the Paillier private part"
        )
    total = material.paillier_private.decrypt(value.ciphertext_sum)
    if value.is_average:
        return total / value.count
    return total


def try_decrypt(keystore: KeyStore | None, value: object) -> object:
    """Decrypt ``value`` when the store holds its key; raise otherwise.

    This is the note-2 path: a subject that knows the key can always fall
    back to plaintext evaluation, whatever the scheme supports.
    """
    if not isinstance(value, (EncryptedValue, EncryptedAggregate)):
        return value
    if keystore is None:
        raise ExecutionError("no keys held; cannot decrypt for evaluation")
    if isinstance(value, EncryptedAggregate):
        material = keystore.material(value.key_name)
    else:
        if value.key_name not in keystore.names():
            raise ExecutionError(
                f"key {value.key_name} not held; cannot decrypt"
            )
        material = keystore.material(value.key_name)
    return decrypt_value(material, value)

"""Value-level encryption/decryption against key material.

Shared by the executor (Encrypt/Decrypt operators) and the expression
evaluator (note 2 of §5: a subject holding the covering key may evaluate
a condition on plaintext values even when the plan carries the attribute
encrypted, by decrypting locally).
"""

from __future__ import annotations

from repro.core.requirements import EncryptionScheme
from repro.crypto import primitives
from repro.crypto.keymanager import KeyMaterial, KeyStore
from repro.crypto.ope import OpeCipher
from repro.crypto.symmetric import DeterministicCipher, RandomizedCipher
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import ExecutionError


def encrypt_value(material: KeyMaterial, value: object) -> EncryptedValue:
    """Encrypt one value under the scheme attached to ``material``."""
    if isinstance(value, (EncryptedValue, EncryptedAggregate)):
        raise ExecutionError("value is already encrypted")
    scheme = material.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_public is None:
            raise ExecutionError(f"key {material.name} lacks Paillier parts")
        if not isinstance(value, (int, float)):
            raise ExecutionError("Paillier encrypts numeric values only")
        return EncryptedValue(
            key_name=material.name, scheme=scheme,
            token=material.paillier_public.encrypt(value),
        )
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        token: object = DeterministicCipher(material.symmetric).encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.RANDOMIZED:
        token = RandomizedCipher(material.symmetric).encrypt(value)
        return EncryptedValue(material.name, scheme, token)
    if scheme is EncryptionScheme.OPE:
        token = OpeCipher(material.symmetric).encrypt(value)
        recovery = RandomizedCipher(
            primitives.prf(material.symmetric, b"recovery")
        ).encrypt(value)
        return EncryptedValue(material.name, scheme, token, recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


def decrypt_value(material: KeyMaterial, value: object) -> object:
    """Invert :func:`encrypt_value` (also resolves encrypted aggregates)."""
    if isinstance(value, EncryptedAggregate):
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
        total = material.paillier_private.decrypt(value.ciphertext_sum)
        if value.is_average:
            return total / value.count
        return total
    if not isinstance(value, EncryptedValue):
        raise ExecutionError("value is not encrypted")
    if value.key_name != material.name:
        raise ExecutionError(
            f"value encrypted under {value.key_name}, not {material.name}"
        )
    scheme = value.scheme
    if scheme is EncryptionScheme.PAILLIER:
        if material.paillier_private is None:
            raise ExecutionError(
                f"key {material.name} lacks the Paillier private part"
            )
        from repro.crypto.paillier import PaillierCiphertext

        assert isinstance(value.token, PaillierCiphertext)
        return material.paillier_private.decrypt(value.token)
    if material.symmetric is None:
        raise ExecutionError(f"key {material.name} lacks symmetric material")
    if scheme is EncryptionScheme.DETERMINISTIC:
        assert isinstance(value.token, bytes)
        return DeterministicCipher(material.symmetric).decrypt(value.token)
    if scheme is EncryptionScheme.RANDOMIZED:
        assert isinstance(value.token, bytes)
        return RandomizedCipher(material.symmetric).decrypt(value.token)
    if scheme is EncryptionScheme.OPE:
        if value.recovery is None:
            raise ExecutionError("OPE value lacks its recovery ciphertext")
        return RandomizedCipher(
            primitives.prf(material.symmetric, b"recovery")
        ).decrypt(value.recovery)
    raise ExecutionError(f"unsupported scheme {scheme}")


def try_decrypt(keystore: KeyStore | None, value: object) -> object:
    """Decrypt ``value`` when the store holds its key; raise otherwise.

    This is the note-2 path: a subject that knows the key can always fall
    back to plaintext evaluation, whatever the scheme supports.
    """
    if not isinstance(value, (EncryptedValue, EncryptedAggregate)):
        return value
    if keystore is None:
        raise ExecutionError("no keys held; cannot decrypt for evaluation")
    if isinstance(value, EncryptedAggregate):
        material = keystore.material(value.key_name)
    else:
        if value.key_name not in keystore.names():
            raise ExecutionError(
                f"key {value.key_name} not held; cannot decrypt"
            )
        material = keystore.material(value.key_name)
    return decrypt_value(material, value)

"""In-memory relational engine with encrypted execution.

Executes (extended) query plans over real tuples: relational operators
work transparently over plaintext values and over the encrypted tokens
produced by the Encrypt operator, with runtime capability checks that
mirror the model (deterministic equality, OPE ranges, Paillier addition).

NULL semantics
--------------
SQL NULL is represented as Python ``None`` and follows the SQL standard
throughout the engine:

* *ordered* comparisons (``<``, ``<=``, ``>``, ``>=``) with a NULL
  operand are UNKNOWN and collapse to False in filters
  (``compare_plain`` short-circuits them); equality and inequality
  keep the seed engine's Python semantics — ``NULL = NULL`` matches,
  ``NULL <> x`` holds — and hash-join keys group NULL with NULL.
  ``NULL LIKE p`` is UNKNOWN (False).  A comparison between NULL and a
  ciphertext is not a representation mix (Encrypt passes NULL through
  unencrypted) and mirrors the plaintext NULL semantics — only ``<>``
  holds — so encrypted and plaintext plans agree.  Strict three-valued
  equality end to end is a ROADMAP open item;
* aggregates *skip* NULLs: ``COUNT(attr)`` counts only non-NULL values
  (``COUNT(*)`` counts rows), and ``SUM``/``AVG``/``MIN``/``MAX`` over an
  all-NULL group return NULL instead of raising or returning 0;
* a global aggregate (no grouping attributes) over an empty input yields
  the standard single row — COUNT 0, every other aggregate NULL — while
  a grouped aggregate yields zero groups;
* NULLs stay NULL under encryption: Encrypt/Decrypt pass ``None``
  through, and encrypted aggregation skips NULLs before its
  plaintext/ciphertext mix check, so encrypted and plaintext grouping
  agree on NULL-bearing data.

Engine internals (the hot path)
-------------------------------
The executor is built around batched, hash-partitioned operators:

* **Joins** evaluate every equality conjunct with a hash build/probe
  pass — the hash table is built on the smaller operand — and apply only
  the true residual conjuncts (compiled once per node) to each matched
  pair before the output row is materialized.  The seed's ``σ_C(L×R)``
  nested-loop semantics survive behind ``join_strategy="nested-loop"``
  as the benchmark baseline.
* **Predicates** are compiled once per operator
  (:func:`repro.engine.expressions.compile_predicate`): positions,
  operators, and constants are resolved at compile time, so per-row work
  is a plain closure call.
* **Tables** cache their column→position maps and expose
  :meth:`~repro.engine.table.Table.bulk_project` /
  :meth:`~repro.engine.table.Table.bulk_filter` /
  :meth:`~repro.engine.table.Table.map_columns` batch APIs.
* **Shared subtrees** hit an LRU result cache on :class:`Executor`
  keyed by plan-node identity, so re-executed candidate subtrees (the
  extension/assignment search re-runs them constantly) are free.
"""

from repro.engine.executor import Executor, decrypt_value, encrypt_value
from repro.engine.expressions import compile_comparison, compile_predicate
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue

__all__ = [
    "EncryptedAggregate", "EncryptedValue", "Executor", "Table",
    "compile_comparison", "compile_predicate",
    "decrypt_value", "encrypt_value",
]

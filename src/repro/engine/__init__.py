"""In-memory relational engine with encrypted execution.

Executes (extended) query plans over real tuples: relational operators
work transparently over plaintext values and over the encrypted tokens
produced by the Encrypt operator, with runtime capability checks that
mirror the model (deterministic equality, OPE ranges, Paillier addition).
"""

from repro.engine.executor import Executor, decrypt_value, encrypt_value
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue

__all__ = [
    "EncryptedAggregate", "EncryptedValue", "Executor", "Table",
    "decrypt_value", "encrypt_value",
]

"""Runtime value representations for encrypted execution.

The engine carries encrypted attribute values as :class:`EncryptedValue`
wrappers tagging the ciphertext with its query-key name and scheme.
Deterministic tokens compare for equality, OPE tokens compare for order,
Paillier ciphertexts add homomorphically, and randomized ciphertexts
support nothing — exactly the capability matrix of
:data:`repro.core.requirements.SCHEME_CAPABILITIES`, enforced at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.requirements import EncryptionScheme
from repro.crypto.paillier import PaillierCiphertext
from repro.exceptions import ExecutionError


@dataclass(frozen=True)
class EncryptedValue:
    """One encrypted attribute value flowing through the engine.

    Attributes
    ----------
    key_name:
        Name of the query key (``kSC``, ``kP``, ...) the value is
        encrypted under; comparisons across different keys are meaningless
        and rejected.
    scheme:
        The encryption scheme of the token.
    token:
        ``bytes`` for symmetric schemes, ``int`` for OPE,
        :class:`PaillierCiphertext` for Paillier.
    recovery:
        For OPE: a randomized ciphertext of the plaintext kept alongside
        the comparison token so holders of the key can decrypt (OPE
        tokens themselves only come back as scaled integers).
    """

    key_name: str
    scheme: EncryptionScheme
    token: object
    recovery: bytes | None = None

    def comparable_with(self, other: "EncryptedValue") -> bool:
        """Whether equality between the two tokens is meaningful."""
        return (self.key_name == other.key_name
                and self.scheme == other.scheme
                and self.scheme in (EncryptionScheme.DETERMINISTIC,
                                    EncryptionScheme.OPE))

    def require_comparable(self, other: "EncryptedValue") -> None:
        """Raise unless the two values share key and a comparable scheme."""
        if self.key_name != other.key_name:
            raise ExecutionError(
                f"comparing ciphertexts under different keys "
                f"({self.key_name} vs {other.key_name})"
            )
        if self.scheme != other.scheme:
            raise ExecutionError(
                f"comparing ciphertexts under different schemes "
                f"({self.scheme} vs {other.scheme})"
            )
        if self.scheme not in (EncryptionScheme.DETERMINISTIC,
                               EncryptionScheme.OPE):
            raise ExecutionError(
                f"{self.scheme} ciphertexts do not support comparison"
            )

    def equals(self, other: "EncryptedValue") -> bool:
        """Equality over deterministic or OPE tokens."""
        self.require_comparable(other)
        return self.token == other.token

    def less_than(self, other: "EncryptedValue") -> bool:
        """Order comparison; OPE tokens only."""
        self.require_comparable(other)
        if self.scheme is not EncryptionScheme.OPE:
            raise ExecutionError(
                "order comparison requires order-preserving encryption"
            )
        assert isinstance(self.token, int) and isinstance(other.token, int)
        return self.token < other.token

    def add(self, other: "EncryptedValue") -> "EncryptedValue":
        """Homomorphic addition of Paillier ciphertexts."""
        if self.scheme is not EncryptionScheme.PAILLIER \
                or other.scheme is not EncryptionScheme.PAILLIER:
            raise ExecutionError("homomorphic addition needs Paillier values")
        if self.key_name != other.key_name:
            raise ExecutionError("adding ciphertexts under different keys")
        assert isinstance(self.token, PaillierCiphertext)
        assert isinstance(other.token, PaillierCiphertext)
        return EncryptedValue(
            key_name=self.key_name,
            scheme=EncryptionScheme.PAILLIER,
            token=self.token + other.token,
        )

    def group_key(self) -> object:
        """A hashable grouping/join key for the token."""
        if self.scheme is EncryptionScheme.DETERMINISTIC:
            return (self.key_name, "det", self.token)
        if self.scheme is EncryptionScheme.OPE:
            return (self.key_name, "ope", self.token)
        raise ExecutionError(
            f"{self.scheme} ciphertexts cannot be grouped or hash-joined"
        )

    def __repr__(self) -> str:
        if isinstance(self.token, bytes):
            preview = self.token[:6].hex() + "…"
        else:
            preview = str(self.token)[:12]
        return f"Enc<{self.key_name}:{self.scheme.value}:{preview}>"


@dataclass(frozen=True)
class EncryptedAggregate:
    """A Paillier-encrypted running aggregate (``sum`` or ``avg``).

    Homomorphic aggregation cannot divide, so averages are carried as an
    encrypted sum plus a plaintext count and divided on decryption — the
    standard CryptDB-style treatment, matching the paper's dispatch where
    Y computes ``decrypt(Pk, kP)`` to obtain ``avg(P)``.
    """

    key_name: str
    ciphertext_sum: PaillierCiphertext
    count: int
    is_average: bool

    def merge(self, other: "EncryptedAggregate") -> "EncryptedAggregate":
        """Combine two partial aggregates."""
        if self.key_name != other.key_name \
                or self.is_average != other.is_average:
            raise ExecutionError("merging incompatible encrypted aggregates")
        return EncryptedAggregate(
            key_name=self.key_name,
            ciphertext_sum=self.ciphertext_sum + other.ciphertext_sum,
            count=self.count + other.count,
            is_average=self.is_average,
        )

    def __repr__(self) -> str:
        kind = "avg" if self.is_average else "sum"
        return f"EncAgg<{kind}:{self.key_name}:n={self.count}>"

"""In-memory relations.

A :class:`Table` is an ordered list of equally shaped tuples with named
columns — the runtime counterpart of the model-level
:class:`repro.core.schema.Relation`.  Tables are cheap value objects: the
executor produces a new table per plan node.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ExecutionError


class Table:
    """A named, column-ordered, in-memory relation.

    Examples
    --------
    >>> t = Table("Ins", ("C", "P"), [("alice", 120.0), ("bob", 80.0)])
    >>> t.column_values("P")
    [120.0, 80.0]
    >>> len(t)
    2
    """

    __slots__ = ("name", "columns", "rows", "_index")

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
        self.name = name
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ExecutionError(f"duplicate columns in table {name}")
        self._index = {c: i for i, c in enumerate(self.columns)}
        materialized = []
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} != column count {width} "
                    f"in table {name}"
                )
            materialized.append(row)
        self.rows = materialized

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, name: str, columns: Sequence[str],
                   records: Iterable[Mapping[str, object]]) -> "Table":
        """Build from dictionaries, in the given column order."""
        return cls(name, columns,
                   [tuple(r[c] for c in columns) for r in records])

    def empty_like(self) -> "Table":
        """An empty table with the same shape."""
        return Table(self.name, self.columns, [])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column_position(self, column: str) -> int:
        """Index of ``column`` in each row tuple."""
        try:
            return self._index[column]
        except KeyError:
            raise ExecutionError(
                f"table {self.name} has no column {column!r}"
            ) from None

    def column_values(self, column: str) -> list[object]:
        """All values of one column, in row order."""
        position = self.column_position(column)
        return [row[position] for row in self.rows]

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        """Rows as dictionaries."""
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str],
                name: str | None = None) -> "Table":
        """Keep only ``columns`` (in the given order), dropping duplicates."""
        positions = [self.column_position(c) for c in columns]
        seen: set[tuple[object, ...]] = set()
        rows: list[tuple[object, ...]] = []
        hashable = True
        for row in self.rows:
            projected = tuple(row[p] for p in positions)
            if hashable:
                try:
                    if projected in seen:
                        continue
                    seen.add(projected)
                except TypeError:
                    hashable = False  # unhashable values: keep duplicates
            rows.append(projected)
        return Table(name or self.name, tuple(columns), rows)

    def filter(self, keep: Callable[[tuple[object, ...]], bool],
               name: str | None = None) -> "Table":
        """Rows satisfying ``keep``."""
        return Table(name or self.name, self.columns,
                     [row for row in self.rows if keep(row)])

    def map_column(self, column: str,
                   transform: Callable[[object], object]) -> "Table":
        """Apply ``transform`` to one column."""
        position = self.column_position(column)
        rows = [
            row[:position] + (transform(row[position]),) + row[position + 1:]
            for row in self.rows
        ]
        return Table(self.name, self.columns, rows)

    def rename(self, name: str) -> "Table":
        """The same table under a new name."""
        return Table(name, self.columns, self.rows)

    # ------------------------------------------------------------------
    # Comparison helpers (tests)
    # ------------------------------------------------------------------
    def sorted_rows(self) -> list[tuple[object, ...]]:
        """Rows sorted by repr — stable order-insensitive comparison."""
        return sorted(self.rows, key=repr)

    def same_content(self, other: "Table") -> bool:
        """Order-insensitive equality on (columns, rows)."""
        return (self.columns == other.columns
                and self.sorted_rows() == other.sorted_rows())

    def __repr__(self) -> str:
        return (f"Table({self.name}: {', '.join(self.columns)}; "
                f"{len(self.rows)} rows)")

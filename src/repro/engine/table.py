"""In-memory relations.

A :class:`Table` is an ordered list of equally shaped tuples with named
columns — the runtime counterpart of the model-level
:class:`repro.core.schema.Relation`.  Tables are cheap value objects: the
executor produces a new table per plan node.

The engine hot path works in *batches*: a table caches the column→index
map and per-column-list position tuples, and exposes
:meth:`bulk_project` / :meth:`bulk_filter` / :meth:`map_columns` so
operators resolve positions once per node instead of once per row.
"""

from __future__ import annotations

import sys
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ExecutionError

#: How many rows :meth:`Table.estimated_bytes` samples before
#: extrapolating (footprints scale linearly in the row count).
_BYTES_SAMPLE_ROWS = 64


class Table:
    """A named, column-ordered, in-memory relation.

    Examples
    --------
    >>> t = Table("Ins", ("C", "P"), [("alice", 120.0), ("bob", 80.0)])
    >>> t.column_values("P")
    [120.0, 80.0]
    >>> len(t)
    2
    """

    __slots__ = ("name", "columns", "rows", "_index", "_positions_cache",
                 "_bytes_estimate")

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> None:
        self.name = name
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ExecutionError(f"duplicate columns in table {name}")
        self._index = {c: i for i, c in enumerate(self.columns)}
        self._positions_cache: dict[tuple[str, ...], tuple[int, ...]] = {}
        self._bytes_estimate: int | None = None
        materialized = []
        width = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} != column count {width} "
                    f"in table {name}"
                )
            materialized.append(row)
        self.rows = materialized

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, name: str, columns: Sequence[str],
                   records: Iterable[Mapping[str, object]]) -> "Table":
        """Build from dictionaries, in the given column order."""
        return cls(name, columns,
                   [tuple(r[c] for c in columns) for r in records])

    @classmethod
    def _from_trusted(cls, name: str, columns: tuple[str, ...],
                      rows: list[tuple[object, ...]]) -> "Table":
        """Internal fast constructor: ``rows`` are already shaped tuples.

        Skips the per-row width validation of ``__init__`` — only for
        rows the engine itself produced from an already valid table.
        Column uniqueness is still checked (joins/products of operands
        with clashing names must fail loudly, not shadow a column).
        """
        table = cls.__new__(cls)
        table.name = name
        table.columns = columns
        table._index = {c: i for i, c in enumerate(columns)}
        if len(table._index) != len(columns):
            raise ExecutionError(f"duplicate columns in table {name}")
        table._positions_cache = {}
        table._bytes_estimate = None
        table.rows = rows
        return table

    def empty_like(self) -> "Table":
        """An empty table with the same shape."""
        return Table(self.name, self.columns, [])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column_position(self, column: str) -> int:
        """Index of ``column`` in each row tuple."""
        try:
            return self._index[column]
        except KeyError:
            raise ExecutionError(
                f"table {self.name} has no column {column!r}"
            ) from None

    def positions(self, columns: Sequence[str]) -> tuple[int, ...]:
        """Row-tuple indices of ``columns``, cached per column list.

        Operators resolve positions once per node through this method and
        then index rows directly, instead of re-deriving the map per row.
        """
        key = tuple(columns)
        cached = self._positions_cache.get(key)
        if cached is None:
            cached = tuple(self.column_position(c) for c in key)
            self._positions_cache[key] = cached
        return cached

    def column_values(self, column: str) -> list[object]:
        """All values of one column, in row order."""
        position = self.column_position(column)
        return [row[position] for row in self.rows]

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        """Rows as dictionaries."""
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint of this table, memoized.

        Sums ``sys.getsizeof`` over the row list, the row tuples, and
        (shallowly) each cell, sampling at most :data:`_BYTES_SAMPLE_ROWS`
        evenly spaced rows and extrapolating linearly.  The estimate feeds
        the executor's byte-bounded result cache, where a consistent
        relative measure matters more than exact heap accounting.
        """
        if self._bytes_estimate is None:
            total = sys.getsizeof(self.rows)
            total += sum(sys.getsizeof(c) for c in self.columns)
            count = len(self.rows)
            if count:
                step = max(1, count // _BYTES_SAMPLE_ROWS)
                sample = self.rows[::step][:_BYTES_SAMPLE_ROWS]
                sampled = sum(
                    sys.getsizeof(row)
                    + sum(sys.getsizeof(cell) for cell in row)
                    for row in sample
                )
                total += int(sampled * (count / len(sample)))
            self._bytes_estimate = total
        return self._bytes_estimate

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str],
                name: str | None = None) -> "Table":
        """Keep only ``columns`` (in the given order), dropping duplicates."""
        return self.bulk_project(columns, name=name, dedupe=True)

    def bulk_project(self, columns: Sequence[str], name: str | None = None,
                     dedupe: bool = True) -> "Table":
        """Batch projection: one position lookup, then a tight row loop.

        With ``dedupe`` (relational semantics) duplicate result rows are
        dropped; rows with unhashable values are kept from the first
        offender onward.  Without it the row count is preserved.
        """
        positions = self.positions(columns)
        if not positions:
            projected: list[tuple[object, ...]] = [() for _ in self.rows]
        elif len(positions) == 1:
            p = positions[0]
            projected = [(row[p],) for row in self.rows]
        else:
            getter = itemgetter(*positions)
            projected = [getter(row) for row in self.rows]
        if dedupe:
            seen: set[tuple[object, ...]] = set()
            rows: list[tuple[object, ...]] = []
            hashable = True
            for row in projected:
                if hashable:
                    try:
                        if row in seen:
                            continue
                        seen.add(row)
                    except TypeError:
                        hashable = False  # unhashable values: keep duplicates
                rows.append(row)
            projected = rows
        return Table._from_trusted(name or self.name, tuple(columns),
                                   projected)

    def filter(self, keep: Callable[[tuple[object, ...]], bool],
               name: str | None = None) -> "Table":
        """Rows satisfying ``keep``."""
        return self.bulk_filter(keep, name=name)

    def bulk_filter(self, keep: Callable[[tuple[object, ...]], bool],
                    name: str | None = None) -> "Table":
        """Batch filter with a pre-compiled row predicate.

        ``keep`` is expected to be compiled once per operator (see
        :func:`repro.engine.expressions.compile_predicate`), so this is a
        single pass with no per-row dispatch beyond the call itself.
        """
        return Table._from_trusted(
            name or self.name, self.columns,
            [row for row in self.rows if keep(row)],
        )

    def map_column(self, column: str,
                   transform: Callable[[object], object]) -> "Table":
        """Apply ``transform`` to one column."""
        return self.map_columns({column: transform})

    def map_columns(self, transforms: Mapping[str, Callable[[object], object]],
                    ) -> "Table":
        """Apply several per-column transforms in one pass over the rows."""
        if not transforms:
            return self
        items = [(self.column_position(c), f) for c, f in transforms.items()]
        if len(items) == 1:
            position, transform = items[0]
            rows = [
                row[:position] + (transform(row[position]),)
                + row[position + 1:]
                for row in self.rows
            ]
        else:
            rows = []
            for row in self.rows:
                cells = list(row)
                for position, transform in items:
                    cells[position] = transform(cells[position])
                rows.append(tuple(cells))
        return Table._from_trusted(self.name, self.columns, rows)

    def replace_columns(self, replacements: Mapping[str, Sequence[object]],
                        ) -> "Table":
        """Swap whole columns for precomputed value lists, one zip pass.

        This is the columnar counterpart of :meth:`map_columns`: the
        caller transforms ``column_values`` in bulk (one Python-level
        dispatch per column — the Encrypt/Decrypt operators do this
        through the codec's column kernels) and this method stitches the
        new columns back into rows.  Each replacement list must match
        the row count.
        """
        if not replacements:
            return self
        count = len(self.rows)
        items = []
        for column, column_values in replacements.items():
            if len(column_values) != count:
                raise ExecutionError(
                    f"replacement for column {column!r} has "
                    f"{len(column_values)} values for {count} rows"
                )
            items.append((self.column_position(column), column_values))
        if len(items) == 1:
            position, column_values = items[0]
            rows = [
                row[:position] + (value,) + row[position + 1:]
                for row, value in zip(self.rows, column_values)
            ]
        else:
            columns_data = [list(c) for c in zip(*self.rows)] if count \
                else [[] for _ in self.columns]
            for position, column_values in items:
                columns_data[position] = list(column_values)
            rows = [tuple(r) for r in zip(*columns_data)] if count else []
        return Table._from_trusted(self.name, self.columns, rows)

    def rename(self, name: str) -> "Table":
        """The same content under a new name (rows list is copied)."""
        return Table._from_trusted(name, self.columns, list(self.rows))

    def copy(self) -> "Table":
        """A same-content table with a private ``rows`` list.

        Rows are immutable tuples, so the shallow copy is enough to
        detach the caller from any cache the original lives in.
        """
        return self.rename(self.name)

    # ------------------------------------------------------------------
    # Comparison helpers (tests)
    # ------------------------------------------------------------------
    def sorted_rows(self) -> list[tuple[object, ...]]:
        """Rows sorted by repr — stable order-insensitive comparison."""
        return sorted(self.rows, key=repr)

    def same_content(self, other: "Table") -> bool:
        """Order-insensitive equality on (columns, rows)."""
        return (self.columns == other.columns
                and self.sorted_rows() == other.sorted_rows())

    def __repr__(self) -> str:
        return (f"Table({self.name}: {', '.join(self.columns)}; "
                f"{len(self.rows)} rows)")

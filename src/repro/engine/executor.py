"""Plan execution over in-memory tables, plaintext or encrypted.

The :class:`Executor` evaluates a (possibly extended) query plan against a
catalog of base tables.  It understands the model's Encrypt/Decrypt
operators — applying real ciphers from a :class:`KeyStore` — and executes
relational operators over encrypted values whenever the scheme permits
(deterministic equality, OPE ranges and min/max, Paillier sums/averages),
so an extended plan produced by :func:`repro.core.extension.minimally_extend`
runs end to end and produces the same answers as its plaintext original.

The hot path is batched and hash-partitioned: joins evaluate every
equality conjunct through a hash-partitioned build/probe pass (building
on the smaller operand) and apply only the true residual conjuncts per
matched pair, selections and projections run compiled closures through
the table bulk APIs, and an LRU result cache keyed by plan-node identity
makes re-executed subtrees (common in the extension/assignment search)
free.  The seed's ``σ_C(L×R)`` nested-loop semantics survive as the
``join_strategy="nested-loop"`` reference path used by the benchmarks.

With a :class:`~repro.parallel.WorkerPool` attached, the Encrypt/Decrypt
operators fan column chunks across worker processes, and
``join_strategy="parallel-hash"`` probes contiguous slices of the probe
side concurrently against the shared build table
(:func:`probe_partition` is the exact loop both the sequential path and
the workers run), preserving the sequential output row order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping

from repro.core.operators import (
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import AttributeComparisonPredicate
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyStore
from repro.engine.codec import (
    decrypt_column,
    decrypt_value,
    encrypt_column,
    encrypt_value,
)
from repro.engine.expressions import (
    ConstantEncryptor,
    compile_comparison,
    compile_predicate,
)
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import ExecutionError
from repro.parallel.pool import JOIN_STRATEGIES, WorkerPool

#: A user-defined function: receives {input attribute: value}, returns one
#: value (named after the node's output attribute).
UdfCallable = Callable[[dict[str, object]], object]

#: A compiled residual conjunct: (left-row selector, comparator,
#: right-row selector) where each selector is (from_left, position).
_ResidualCheck = tuple[
    tuple[bool, int], Callable[[object, object], bool], tuple[bool, int]
]

#: The picklable form of a residual conjunct: the comparator travels as
#: its :class:`~repro.core.predicates.ComparisonOp` (closures don't
#: pickle) and is compiled worker-side, once per join payload.
_ResidualSpec = tuple[tuple[bool, int], object, tuple[bool, int]]


class Executor:
    """Evaluates plans against a catalog of base tables.

    Parameters
    ----------
    catalog:
        Relation name → :class:`Table` holding its stored tuples.
    keystore:
        Key material available to this evaluator (encrypt/decrypt nodes
        and encrypted constants need the covering keys).
    udfs:
        Udf name → callable.
    join_strategy:
        ``"hash"`` (default) evaluates every equality conjunct through the
        hash-partitioned build/probe path and applies residual conjuncts
        per matched pair; ``"parallel-hash"`` is the same build/probe
        pass with the probe side partitioned across the worker pool
        (requires ``pool``; without one, or below the pool's size
        threshold, it degrades to plain ``"hash"``); ``"nested-loop"``
        keeps the seed ``σ_C(L×R)`` reference semantics (used by the
        join benchmarks as the baseline).
    pool:
        A :class:`~repro.parallel.WorkerPool` for the CPU-bound column
        kernels (Encrypt/Decrypt) and the ``"parallel-hash"`` probe.
        ``None`` (the default) keeps every path inline and single-core.
        The pool does not affect results, so rebinding it never
        invalidates the cache.
    cache_size:
        Capacity of the LRU plan-subtree result cache (0 disables it).
        Results are keyed by plan-node *identity*, so re-executing a
        shared subtree — the extension/assignment search does this for
        every candidate — returns the memoized table.  Mutating
        :attr:`catalog` (item assignment or reassignment) invalidates
        the cache automatically — as does rebinding :attr:`keystore`,
        :attr:`udfs`, or :attr:`join_strategy`; caching assumes
        deterministic UDFs — pass ``cache_size=0`` for nondeterministic
        ones.  Entries are fully materialized tables, so for one-shot
        executions over large data prefer a small capacity (or 0) over
        the default.
    cache_bytes:
        Byte budget for the result cache, measured with
        :meth:`~repro.engine.table.Table.estimated_bytes`.  ``None``
        (the default) keeps the entry-count LRU behaviour of
        ``cache_size``; a positive budget makes eviction byte-driven
        instead (the entry count is then unbounded: ``cache_size`` stays
        accepted for backward compatibility, and ``cache_size=0`` still
        disables caching), and a table larger than the whole budget is
        never cached at all; ``0`` disables the cache entirely.  The
        long-lived executors of the service layer use this so large
        catalogs cannot pin unbounded memory.
    """

    def __init__(self, catalog: Mapping[str, Table],
                 keystore: KeyStore | None = None,
                 udfs: Mapping[str, UdfCallable] | None = None,
                 constant_keystore: KeyStore | None = None,
                 join_strategy: str = "hash",
                 cache_size: int = 128,
                 cache_bytes: int | None = None,
                 pool: "WorkerPool | None" = None) -> None:
        self.pool = pool
        self._cache_capacity = max(0, cache_size)
        self._cache_byte_budget = (None if cache_bytes is None
                                   else max(0, cache_bytes))
        if self._cache_byte_budget == 0:
            self._cache_capacity = 0
        self._cache_bytes_used = 0
        self._cache: OrderedDict[PlanNode, Table] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # Constants in dispatched conditions arrive pre-encrypted by the
        # user (Figure 8); simulate that with a dedicated store.
        self._constant_store = constant_keystore
        self.catalog = catalog  # each setter wraps/validates and
        self.keystore = keystore  # invalidates the subtree cache
        self.udfs = udfs or {}
        self.join_strategy = join_strategy

    # -- cached results are only valid for the state they were computed
    # against, so every public mutable input invalidates on change -----
    @property
    def catalog(self) -> "_InvalidatingDict":
        """The base tables; mutating it drops memoized subtree results."""
        return self._catalog

    @catalog.setter
    def catalog(self, mapping: Mapping[str, Table]) -> None:
        self._catalog = _InvalidatingDict(mapping, self.clear_cache)
        self.clear_cache()

    @property
    def keystore(self) -> KeyStore | None:
        """This evaluator's key material; rebinding drops the cache."""
        return self._keystore

    @keystore.setter
    def keystore(self, store: KeyStore | None) -> None:
        self._keystore = store
        self._keystore_names = self._keystore_fingerprint()
        self._encryptor = ConstantEncryptor(self._constant_store or store)
        self.clear_cache()

    def _keystore_fingerprint(self) -> tuple[object, object]:
        """The held key names of both stores (cache staleness check)."""
        return (
            self._keystore.names() if self._keystore is not None else None,
            self._constant_store.names()
            if self._constant_store is not None else None,
        )

    @property
    def udfs(self) -> "_InvalidatingDict":
        """Udf name → callable; mutating it drops the cache."""
        return self._udfs

    @udfs.setter
    def udfs(self, mapping: Mapping[str, UdfCallable]) -> None:
        self._udfs = _InvalidatingDict(mapping, self.clear_cache)
        self.clear_cache()

    @property
    def join_strategy(self) -> str:
        """``"hash"``, ``"parallel-hash"``, or ``"nested-loop"``;
        rebinding drops the cache."""
        return self._join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        if strategy not in JOIN_STRATEGIES:
            raise ExecutionError(f"unknown join strategy {strategy!r}")
        self._join_strategy = strategy
        self.clear_cache()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, plan: QueryPlan | PlanNode) -> Table:
        """Evaluate a plan (or subtree) and return the result table.

        Tables are value objects; with the subtree cache enabled the
        same :class:`Table` instance may be returned for repeated
        executions — treat results as immutable.
        """
        # Keys added in place (KeyStore.add) change what cached subtrees
        # would compute (note-2 fallbacks, encrypted constants,
        # encrypt/decrypt); detect that by fingerprinting the held key
        # names of both stores per top-level execution.
        names = self._keystore_fingerprint()
        if names != self._keystore_names:
            self._keystore_names = names
            self.clear_cache()
        node = plan.root if isinstance(plan, QueryPlan) else plan
        return self._execute(node)

    def _execute(self, node: PlanNode) -> Table:
        cached = self.lookup(node)
        if cached is not None:
            return cached
        children = [self._execute(child) for child in node.children]
        result = self.execute_node(node, children)
        self.memoize(node, result)
        return result

    def lookup(self, node: PlanNode) -> Table | None:
        """The memoized result for ``node``, or ``None`` (counts a hit)."""
        if not self._cache_capacity:
            return None
        cached = self._cache.get(node)
        if cached is None:
            return None
        self._cache.move_to_end(node)
        self.cache_hits += 1
        return cached

    def memoize(self, node: PlanNode, result: Table) -> None:
        """Store one subtree result, evicting LRU entries past budget.

        With a byte budget the table's estimated footprint drives
        eviction; entries larger than the whole budget are skipped so a
        single huge intermediate cannot flush the entire cache.
        """
        if not self._cache_capacity:
            return
        self.cache_misses += 1
        budget = self._cache_byte_budget
        if budget is None:
            self._cache[node] = result
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
            return
        size = result.estimated_bytes()
        if size > budget:
            return
        previous = self._cache.get(node)
        if previous is not None:
            self._cache_bytes_used -= previous.estimated_bytes()
        self._cache_bytes_used += size
        self._cache[node] = result
        self._cache.move_to_end(node)
        while self._cache_bytes_used > budget:
            _, evicted = self._cache.popitem(last=False)
            self._cache_bytes_used -= evicted.estimated_bytes()

    def execute_node(self, node: PlanNode, children: list[Table]) -> Table:
        """Evaluate one operator over already materialized operands."""
        if isinstance(node, BaseRelationNode):
            return self._scan(node)
        if isinstance(node, Projection):
            return self._project(node, children[0])
        if isinstance(node, Selection):
            return self._select(node, children[0])
        if isinstance(node, CartesianProduct):
            return self._product(children[0], children[1])
        if isinstance(node, Join):
            return self._join(node, children[0], children[1])
        if isinstance(node, GroupBy):
            return self._group_by(node, children[0])
        if isinstance(node, Udf):
            return self._udf(node, children[0])
        if isinstance(node, Encrypt):
            return self._encrypt(node, children[0])
        if isinstance(node, Decrypt):
            return self._decrypt(node, children[0])
        raise ExecutionError(f"no execution rule for {type(node).__name__}")

    def clear_cache(self) -> None:
        """Drop all memoized subtree results (after catalog changes)."""
        self._cache.clear()
        self._cache_bytes_used = 0

    def cache_info(self) -> dict[str, int | None]:
        """Hit/miss/size counters of the subtree result cache."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "capacity": self._cache_capacity,
            "bytes": self._cache_bytes_used,
            "capacity_bytes": self._cache_byte_budget,
        }

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def _scan(self, node: BaseRelationNode) -> Table:
        name = node.relation.name
        if name not in self.catalog:
            raise ExecutionError(f"no table {name!r} in the catalog")
        table = self.catalog[name]
        ordered = [a for a in node.relation.attribute_names
                   if a in node.projection]
        if tuple(ordered) != table.columns:
            return table.bulk_project(ordered)
        return table

    def _project(self, node: Projection, child: Table) -> Table:
        ordered = [c for c in child.columns if c in node.attributes]
        return child.bulk_project(ordered, name="π")

    def _select(self, node: Selection, child: Table) -> Table:
        keep = compile_predicate(node.predicate, child.columns,
                                 self._encryptor,
                                 local_keystore=self.keystore)
        return child.bulk_filter(keep, name="σ")

    def _product(self, left: Table, right: Table) -> Table:
        columns = left.columns + right.columns
        rows = [lr + rr for lr in left.rows for rr in right.rows]
        return Table._from_trusted("×", columns, rows)

    # -- joins ----------------------------------------------------------
    def _join(self, node: Join, left: Table, right: Table) -> Table:
        columns = left.columns + right.columns
        if self.join_strategy == "nested-loop":
            # Seed reference semantics: σ_C(L × R), one compiled predicate
            # over every operand pair.
            basics = list(node.condition.basic_conditions())
            checks = _compile_specs(_residual_specs(basics, left, right))
            rows = [
                lr + rr
                for lr in left.rows for rr in right.rows
                if _residuals_hold(checks, lr, rr)
            ]
            return Table._from_trusted("⋈", columns, rows)

        equalities, residual = node.partition_condition(left.columns,
                                                        right.columns)
        specs = _residual_specs(residual, left, right)
        checks = _compile_specs(specs)
        if equalities:
            rows = self._hash_join(left, right, equalities, checks, specs)
        else:
            # Pure theta-join: no hashable conjunct, fall back to a
            # filtered product (the predicate is still compiled once).
            rows = [
                lr + rr
                for lr in left.rows for rr in right.rows
                if _residuals_hold(checks, lr, rr)
            ]
        return Table._from_trusted("⋈", columns, rows)

    def _hash_join(self, left: Table, right: Table,
                   equalities: list[tuple[str, str]],
                   checks: list[_ResidualCheck],
                   specs: list[_ResidualSpec]) -> list[tuple]:
        left_positions = left.positions([l for l, _ in equalities])
        right_positions = right.positions([r for _, r in equalities])
        # Build on the smaller operand, probe with the larger one; the
        # output row is always assembled left-then-right.  Both loops
        # also accumulate per-column value-representation signatures so
        # incomparable keys raise (like the nested-loop reference does)
        # instead of silently never colliding — see _signature.
        build_is_left = len(left) <= len(right)
        if build_is_left:
            buckets, build_sigs = _build_buckets(left.rows, left_positions)
            probe_rows, probe_positions = right.rows, right_positions
        else:
            buckets, build_sigs = _build_buckets(right.rows, right_positions)
            probe_rows, probe_positions = left.rows, left_positions
        pool = self.pool
        if (self._join_strategy == "parallel-hash" and pool is not None
                and pool.should_parallelize(len(probe_rows))):
            # Contiguous probe slices against the shared build side:
            # concatenating chunk outputs in slice order reproduces the
            # sequential row order.  The build payload ships once per
            # chunk (workers memoize rehydration per payload); residuals
            # travel as specs because compiled closures don't pickle.
            from repro.parallel import kernels

            payload = kernels.dumps(
                (buckets, build_sigs, probe_positions, equalities, specs,
                 build_is_left))
            return pool.map_chunks(kernels.join_probe_chunk, payload,
                                   probe_rows)
        return probe_partition(buckets, build_sigs, probe_rows,
                               probe_positions, equalities, checks,
                               build_is_left)

    # -- grouping and aggregation ---------------------------------------
    def _group_by(self, node: GroupBy, child: Table) -> Table:
        group_columns = [c for c in child.columns
                         if c in node.group_attributes]
        positions = child.positions(group_columns)
        agg_positions = [
            child.column_position(a.attribute)
            if a.attribute is not None else None
            for a in node.aggregates
        ]
        out_columns = list(group_columns) + [
            a.output_name for a in node.aggregates
        ]

        if not child.rows and not group_columns:
            # SQL standard: a global aggregate over an empty input yields
            # one row — COUNT is 0, every other aggregate is NULL.
            output = tuple(
                0 if a.function is AggregateFunction.COUNT else None
                for a in node.aggregates
            )
            return Table._from_trusted("γ", tuple(out_columns), [output])

        groups: dict[tuple, list[tuple]] = {}
        originals: dict[tuple, tuple] = {}
        for row in child.rows:
            key = tuple(_join_key(row[p]) for p in positions)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [row]
                originals[key] = tuple(row[p] for p in positions)
            else:
                bucket.append(row)

        rows = []
        for key, members in groups.items():
            output_row: list[object] = list(originals[key])
            for aggregate, position in zip(node.aggregates, agg_positions):
                if position is None:
                    output_row.append(len(members))
                    continue
                values = [m[position] for m in members]
                output_row.append(self._aggregate(aggregate.function, values))
            rows.append(tuple(output_row))
        return Table._from_trusted("γ", tuple(out_columns), rows)

    def _aggregate(self, function: AggregateFunction,
                   values: list[object]) -> object:
        # SQL NULL semantics: aggregates skip NULLs; COUNT(attr) counts
        # the non-NULL values; every other aggregate over an all-NULL
        # (or empty) group is NULL.
        non_null = [v for v in values if v is not None]
        if function is AggregateFunction.COUNT:
            return len(non_null)
        if not non_null:
            return None
        if any(isinstance(v, EncryptedValue) for v in non_null):
            # _aggregate_encrypted re-checks every value, so a group
            # mixing representations raises the same diagnostic whatever
            # order the values arrive in.
            return self._aggregate_encrypted(function, non_null)
        if function is AggregateFunction.SUM:
            return sum(non_null)  # type: ignore[arg-type]
        if function is AggregateFunction.AVG:
            return sum(non_null) / len(non_null)  # type: ignore[arg-type]
        if function is AggregateFunction.MIN:
            return min(non_null)  # type: ignore[type-var]
        if function is AggregateFunction.MAX:
            return max(non_null)  # type: ignore[type-var]
        raise ExecutionError(f"unsupported aggregate {function}")

    def _aggregate_encrypted(self, function: AggregateFunction,
                             values: list[object]) -> object:
        encrypted = []
        for value in values:
            if value is None:
                # NULLs stay NULL under encryption; skip them before the
                # mix check so encrypted and plaintext grouping agree.
                continue
            if not isinstance(value, EncryptedValue):
                raise ExecutionError(
                    "aggregate mixes plaintext and encrypted values"
                )
            encrypted.append(value)
        if not encrypted:
            return None
        scheme = encrypted[0].scheme
        if function in (AggregateFunction.MIN, AggregateFunction.MAX):
            if scheme is not EncryptionScheme.OPE:
                raise ExecutionError(
                    f"min/max over {scheme} ciphertexts is not supported"
                )
            chosen = encrypted[0]
            for value in encrypted[1:]:
                if function is AggregateFunction.MIN:
                    if value.less_than(chosen):
                        chosen = value
                elif chosen.less_than(value):
                    chosen = value
            return chosen
        if function in (AggregateFunction.SUM, AggregateFunction.AVG):
            if scheme is not EncryptionScheme.PAILLIER:
                raise ExecutionError(
                    f"sum/avg over {scheme} ciphertexts is not supported"
                )
            from repro.crypto.paillier import PaillierCiphertext

            key_name = encrypted[0].key_name
            tokens = []
            for value in encrypted:
                if value.scheme is not EncryptionScheme.PAILLIER:
                    raise ExecutionError(
                        "homomorphic addition needs Paillier values"
                    )
                if value.key_name != key_name:
                    raise ExecutionError(
                        "adding ciphertexts under different keys"
                    )
                tokens.append(value.token)
            # PaillierCiphertext.__radd__ folds sum()'s integer 0 start
            # value to identity, so the whole group adds in one builtin.
            total = sum(tokens)
            assert isinstance(total, PaillierCiphertext)
            return EncryptedAggregate(
                key_name=key_name,
                ciphertext_sum=total,
                count=len(encrypted),
                is_average=function is AggregateFunction.AVG,
            )
        raise ExecutionError(f"unsupported encrypted aggregate {function}")

    def _udf(self, node: Udf, child: Table) -> Table:
        if node.name not in self.udfs:
            raise ExecutionError(f"unknown udf {node.name!r}")
        function = self.udfs[node.name]
        input_positions = {
            a: child.column_position(a) for a in node.inputs
        }
        out_columns = [c for c in child.columns
                       if c not in node.inputs or c == node.output]
        out_positions = child.positions(out_columns)
        output_index = out_columns.index(node.output)
        rows = []
        for row in child.rows:
            arguments = {a: row[p] for a, p in input_positions.items()}
            result = function(arguments)
            projected = [row[p] for p in out_positions]
            projected[output_index] = result
            rows.append(tuple(projected))
        return Table._from_trusted("µ", tuple(out_columns), rows)

    # ------------------------------------------------------------------
    # Encryption operators
    # ------------------------------------------------------------------
    def _require_keystore(self) -> KeyStore:
        if self.keystore is None:
            raise ExecutionError("this evaluator holds no keys")
        return self.keystore

    def _encrypt(self, node: Encrypt, child: Table) -> Table:
        # Whole-column kernels: one Python-level dispatch per column —
        # scheme routing, cipher lookup, and key checks resolve once,
        # not once per cell (NULLs pass through inside the kernel).
        keystore = self._require_keystore()
        replacements = {}
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            replacements[attribute] = encrypt_column(
                material, child.column_values(attribute), pool=self.pool)
        return child.replace_columns(replacements).rename("enc")

    def _decrypt(self, node: Decrypt, child: Table) -> Table:
        keystore = self._require_keystore()
        replacements = {}
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            replacements[attribute] = decrypt_column(
                material, child.column_values(attribute), pool=self.pool)
        return child.replace_columns(replacements).rename("dec")


class _InvalidatingDict(dict):
    """A dict (catalog, udfs) whose mutations invalidate the subtree cache.

    Cached subtree results are only valid for the inputs they were
    computed against; every mutating ``dict`` operation that actually
    changes content triggers ``on_change`` (the executor's
    ``clear_cache``).
    """

    def __init__(self, data: Mapping[str, object],
                 on_change: Callable[[], None]) -> None:
        super().__init__(data)
        self._on_change = on_change

    def __setitem__(self, key: str, value: object) -> None:
        super().__setitem__(key, value)
        self._on_change()

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self._on_change()

    def update(self, *args, **kwargs) -> None:
        if not kwargs and len(args) <= 1 and (
                not args or (isinstance(args[0], (dict, list, tuple))
                             and not args[0])):
            return  # nothing to merge (invalid args still reach dict)
        super().update(*args, **kwargs)
        self._on_change()

    def __ior__(self, other):
        result = super().__ior__(other)
        self._on_change()
        return result

    def pop(self, *args):
        result = super().pop(*args)
        self._on_change()
        return result

    def popitem(self):
        result = super().popitem()
        self._on_change()
        return result

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]  # pure read: nothing changed
        result = super().setdefault(key, default)
        self._on_change()
        return result

    def clear(self) -> None:
        super().clear()
        self._on_change()


def _residual_specs(residual: list, left: Table,
                    right: Table) -> list[_ResidualSpec]:
    """Residual conjuncts as (selector, op, selector) triples.

    Selectors address the *operand* rows directly, so residuals are
    tested on matched pairs before the output row is materialized; the
    op stays symbolic so the spec can cross a process boundary.
    """
    left_width = len(left.columns)
    combined = {c: i for i, c in enumerate(left.columns + right.columns)}
    specs: list[_ResidualSpec] = []
    for basic in residual:
        assert isinstance(basic, AttributeComparisonPredicate)
        lpos = combined[basic.left]
        rpos = combined[basic.right]
        specs.append((
            (lpos < left_width, lpos if lpos < left_width
             else lpos - left_width),
            basic.op,
            (rpos < left_width, rpos if rpos < left_width
             else rpos - left_width),
        ))
    return specs


def _compile_specs(specs: list[_ResidualSpec]) -> list[_ResidualCheck]:
    """Compile residual specs into executable checks."""
    return [
        (left_sel, compile_comparison(op), right_sel)
        for left_sel, op, right_sel in specs
    ]


def probe_partition(buckets: dict[object, list[tuple]],
                    build_sigs: list[set[object]],
                    probe_rows: list[tuple],
                    probe_positions: tuple[int, ...],
                    equalities: list[tuple[str, str]],
                    checks: list[_ResidualCheck],
                    build_is_left: bool) -> list[tuple]:
    """Probe rows against prebuilt hash buckets (one partition).

    The sequential probe loop of :meth:`Executor._hash_join`, shared
    verbatim with the ``parallel-hash`` workers: each worker probes one
    contiguous slice of the probe side, so concatenating partition
    outputs in slice order reproduces the sequential output exactly —
    rows, order, and the representation-mix diagnostics (a mixing value
    raises within whichever partition probes it).
    """
    probe_sigs: list[set[object]] = [set() for _ in probe_positions]

    def note_probe(index: int, value: object) -> None:
        signature = _signature(value)
        if signature is None or signature in probe_sigs[index]:
            return
        probe_sigs[index].add(signature)
        combined = build_sigs[index] | probe_sigs[index]
        if build_sigs[index] and len(combined) > 1:
            l, r = equalities[index]
            raise ExecutionError(
                f"join condition {l}={r} compares incompatible value "
                f"representations: {sorted(map(str, combined))}"
            )

    single = len(probe_positions) == 1
    position = probe_positions[0] if single else None
    joined: list[tuple] = []
    for prow in probe_rows:
        if single:
            value = prow[position]
            note_probe(0, value)
            key = _join_key(value)
        else:
            for index, p in enumerate(probe_positions):
                note_probe(index, prow[p])
            key = tuple(_join_key(prow[p]) for p in probe_positions)
        matches = buckets.get(key)
        if not matches:
            continue
        if build_is_left:
            for brow in matches:
                if _residuals_hold(checks, brow, prow):
                    joined.append(brow + prow)
        else:
            for brow in matches:
                if _residuals_hold(checks, prow, brow):
                    joined.append(prow + brow)
    return joined


def _signature(value: object) -> object | None:
    """The value's representation: a key/scheme pair, plaintext, or None.

    Incomparable representations can never hash-collide (different-key
    ciphertext group keys never match, plaintext never matches a token),
    so a hash join would silently return no matches where the σ_C(L×R)
    reference raises when it evaluates such a pair.  The join loops
    accumulate these signatures per key column and raise on the first
    mix observed across the operands — slightly *eager* versus the
    reference's conjunct short-circuiting, but refusing loudly beats a
    silently empty result.  NULLs are exempt: NULL vs anything is
    UNKNOWN, not a representation mix.
    """
    if value is None:
        return None
    if isinstance(value, EncryptedValue):
        return (value.key_name, value.scheme)
    return "plaintext"


def _build_buckets(rows: list[tuple], positions: tuple[int, ...],
                   ) -> tuple[dict[object, list[tuple]],
                              list[set[object]]]:
    """Partition ``rows`` by their (hashable) key on ``positions``.

    Also returns the per-column value-representation signatures observed
    while bucketing (see :func:`_signature`), so the probe loop can
    reject incomparable keys without a separate pass over the data.
    """
    buckets: dict[object, list[tuple]] = {}
    signatures: list[set[object]] = [set() for _ in positions]
    if len(positions) == 1:
        (position,) = positions
        column = signatures[0]
        for row in rows:
            value = row[position]
            sig = _signature(value)
            if sig is not None:
                column.add(sig)
            key = _join_key(value)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
        return buckets, signatures
    for row in rows:
        for index, position in enumerate(positions):
            sig = _signature(row[position])
            if sig is not None:
                signatures[index].add(sig)
        key = tuple(_join_key(row[p]) for p in positions)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets, signatures


def _residuals_hold(checks: list[_ResidualCheck],
                    lrow: tuple, rrow: tuple) -> bool:
    """Evaluate compiled residual conjuncts on one operand-row pair."""
    for (left_side, lpos), comparator, (right_side, rpos) in checks:
        left = lrow[lpos] if left_side else rrow[lpos]
        right = lrow[rpos] if right_side else rrow[rpos]
        if not comparator(left, right):
            return False
    return True


def _join_key(value: object) -> object:
    """A hashable grouping key for plaintext or encrypted values."""
    if isinstance(value, EncryptedValue):
        return value.group_key()
    if isinstance(value, (list, set, dict)):
        raise ExecutionError(f"unhashable join key {type(value).__name__}")
    return value

"""Plan execution over in-memory tables, plaintext or encrypted.

The :class:`Executor` evaluates a (possibly extended) query plan against a
catalog of base tables.  It understands the model's Encrypt/Decrypt
operators — applying real ciphers from a :class:`KeyStore` — and executes
relational operators over encrypted values whenever the scheme permits
(deterministic equality, OPE ranges and min/max, Paillier sums/averages),
so an extended plan produced by :func:`repro.core.extension.minimally_extend`
runs end to end and produces the same answers as its plaintext original.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.operators import (
    AggregateFunction,
    BaseRelationNode,
    CartesianProduct,
    Decrypt,
    Encrypt,
    GroupBy,
    Join,
    PlanNode,
    Projection,
    Selection,
    Udf,
)
from repro.core.plan import QueryPlan
from repro.core.predicates import (
    AttributeComparisonPredicate,
    ComparisonOp,
)
from repro.core.requirements import EncryptionScheme
from repro.crypto.keymanager import KeyStore
from repro.engine.codec import decrypt_value, encrypt_value
from repro.engine.expressions import (
    ConstantEncryptor,
    build_row_predicate,
    compare_values,
)
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import ExecutionError

#: A user-defined function: receives {input attribute: value}, returns one
#: value (named after the node's output attribute).
UdfCallable = Callable[[dict[str, object]], object]


class Executor:
    """Evaluates plans against a catalog of base tables.

    Parameters
    ----------
    catalog:
        Relation name → :class:`Table` holding its stored tuples.
    keystore:
        Key material available to this evaluator (encrypt/decrypt nodes
        and encrypted constants need the covering keys).
    udfs:
        Udf name → callable.
    """

    def __init__(self, catalog: Mapping[str, Table],
                 keystore: KeyStore | None = None,
                 udfs: Mapping[str, UdfCallable] | None = None,
                 constant_keystore: KeyStore | None = None) -> None:
        self.catalog = dict(catalog)
        self.keystore = keystore
        self.udfs = dict(udfs or {})
        # Constants in dispatched conditions arrive pre-encrypted by the
        # user (Figure 8); simulate that with a dedicated store.
        self._encryptor = ConstantEncryptor(constant_keystore or keystore)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, plan: QueryPlan | PlanNode) -> Table:
        """Evaluate a plan (or subtree) and return the result table."""
        node = plan.root if isinstance(plan, QueryPlan) else plan
        return self._execute(node)

    def _execute(self, node: PlanNode) -> Table:
        children = [self._execute(child) for child in node.children]
        return self.execute_node(node, children)

    def execute_node(self, node: PlanNode, children: list[Table]) -> Table:
        """Evaluate one operator over already materialized operands."""
        if isinstance(node, BaseRelationNode):
            return self._scan(node)
        if isinstance(node, Projection):
            return self._project(node, children[0])
        if isinstance(node, Selection):
            return self._select(node, children[0])
        if isinstance(node, CartesianProduct):
            return self._product(children[0], children[1])
        if isinstance(node, Join):
            return self._join(node, children[0], children[1])
        if isinstance(node, GroupBy):
            return self._group_by(node, children[0])
        if isinstance(node, Udf):
            return self._udf(node, children[0])
        if isinstance(node, Encrypt):
            return self._encrypt(node, children[0])
        if isinstance(node, Decrypt):
            return self._decrypt(node, children[0])
        raise ExecutionError(f"no execution rule for {type(node).__name__}")

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def _scan(self, node: BaseRelationNode) -> Table:
        name = node.relation.name
        if name not in self.catalog:
            raise ExecutionError(f"no table {name!r} in the catalog")
        table = self.catalog[name]
        ordered = [a for a in node.relation.attribute_names
                   if a in node.projection]
        if tuple(ordered) != table.columns:
            return table.project(ordered)
        return table

    def _project(self, node: Projection, child: Table) -> Table:
        ordered = [c for c in child.columns if c in node.attributes]
        return child.project(ordered, name="π")

    def _select(self, node: Selection, child: Table) -> Table:
        keep = build_row_predicate(node.predicate, child.columns,
                                   self._encryptor,
                                   local_keystore=self.keystore)
        return child.filter(keep, name="σ")

    def _product(self, left: Table, right: Table) -> Table:
        columns = left.columns + right.columns
        rows = [lr + rr for lr in left.rows for rr in right.rows]
        return Table("×", columns, rows)

    def _join(self, node: Join, left: Table, right: Table) -> Table:
        basics = list(node.condition.basic_conditions())
        equalities: list[tuple[str, str]] = []
        residual: list[AttributeComparisonPredicate] = []
        for basic in basics:
            assert isinstance(basic, AttributeComparisonPredicate)
            if basic.op is ComparisonOp.EQ:
                left_attr, right_attr = basic.left, basic.right
                if left_attr in right.columns and right_attr in left.columns:
                    left_attr, right_attr = right_attr, left_attr
                if left_attr in left.columns and right_attr in right.columns:
                    equalities.append((left_attr, right_attr))
                    continue
            residual.append(basic)

        columns = left.columns + right.columns
        if equalities:
            rows = self._hash_join(left, right, equalities)
        else:
            rows = [lr + rr for lr in left.rows for rr in right.rows]
        if residual:
            positions = {c: i for i, c in enumerate(columns)}
            filtered = []
            for row in rows:
                if all(
                    compare_values(row[positions[b.left]], b.op,
                                   row[positions[b.right]])
                    for b in residual
                ):
                    filtered.append(row)
            rows = filtered
        return Table("⋈", columns, rows)

    def _hash_join(self, left: Table, right: Table,
                   equalities: list[tuple[str, str]]) -> list[tuple]:
        left_positions = [left.column_position(l) for l, _ in equalities]
        right_positions = [right.column_position(r) for _, r in equalities]
        buckets: dict[tuple, list[tuple]] = {}
        for row in left.rows:
            key = tuple(_join_key(row[p]) for p in left_positions)
            buckets.setdefault(key, []).append(row)
        joined: list[tuple] = []
        for row in right.rows:
            key = tuple(_join_key(row[p]) for p in right_positions)
            for match in buckets.get(key, ()):
                joined.append(match + row)
        return joined

    def _group_by(self, node: GroupBy, child: Table) -> Table:
        group_columns = [c for c in child.columns
                         if c in node.group_attributes]
        positions = [child.column_position(c) for c in group_columns]
        agg_positions = [
            child.column_position(a.attribute)
            if a.attribute is not None else None
            for a in node.aggregates
        ]

        groups: dict[tuple, list[tuple]] = {}
        originals: dict[tuple, tuple] = {}
        for row in child.rows:
            key = tuple(_join_key(row[p]) for p in positions)
            groups.setdefault(key, []).append(row)
            originals.setdefault(key, tuple(row[p] for p in positions))

        out_columns = list(group_columns) + [
            a.output_name for a in node.aggregates
        ]
        rows = []
        for key, members in groups.items():
            output: list[object] = list(originals[key])
            for aggregate, position in zip(node.aggregates, agg_positions):
                if position is None:
                    output.append(len(members))
                    continue
                values = [m[position] for m in members]
                output.append(self._aggregate(aggregate.function, values))
            rows.append(tuple(output))
        return Table("γ", tuple(out_columns), rows)

    def _aggregate(self, function: AggregateFunction,
                   values: list[object]) -> object:
        if not values:
            raise ExecutionError("aggregate over an empty group")
        if function is AggregateFunction.COUNT:
            return len(values)
        first = values[0]
        if isinstance(first, EncryptedValue):
            return self._aggregate_encrypted(function, values)
        numeric = [v for v in values if v is not None]
        if function is AggregateFunction.SUM:
            return sum(numeric)  # type: ignore[arg-type]
        if function is AggregateFunction.AVG:
            return sum(numeric) / len(numeric)  # type: ignore[arg-type]
        if function is AggregateFunction.MIN:
            return min(numeric)  # type: ignore[type-var]
        if function is AggregateFunction.MAX:
            return max(numeric)  # type: ignore[type-var]
        raise ExecutionError(f"unsupported aggregate {function}")

    def _aggregate_encrypted(self, function: AggregateFunction,
                             values: list[object]) -> object:
        encrypted = []
        for value in values:
            if not isinstance(value, EncryptedValue):
                raise ExecutionError(
                    "aggregate mixes plaintext and encrypted values"
                )
            encrypted.append(value)
        scheme = encrypted[0].scheme
        if function in (AggregateFunction.MIN, AggregateFunction.MAX):
            if scheme is not EncryptionScheme.OPE:
                raise ExecutionError(
                    f"min/max over {scheme} ciphertexts is not supported"
                )
            chosen = encrypted[0]
            for value in encrypted[1:]:
                if function is AggregateFunction.MIN:
                    if value.less_than(chosen):
                        chosen = value
                elif chosen.less_than(value):
                    chosen = value
            return chosen
        if function in (AggregateFunction.SUM, AggregateFunction.AVG):
            if scheme is not EncryptionScheme.PAILLIER:
                raise ExecutionError(
                    f"sum/avg over {scheme} ciphertexts is not supported"
                )
            total = encrypted[0]
            for value in encrypted[1:]:
                total = total.add(value)
            from repro.crypto.paillier import PaillierCiphertext

            assert isinstance(total.token, PaillierCiphertext)
            if function is AggregateFunction.SUM:
                return EncryptedAggregate(
                    key_name=total.key_name,
                    ciphertext_sum=total.token,
                    count=len(encrypted),
                    is_average=False,
                )
            return EncryptedAggregate(
                key_name=total.key_name,
                ciphertext_sum=total.token,
                count=len(encrypted),
                is_average=True,
            )
        raise ExecutionError(f"unsupported encrypted aggregate {function}")

    def _udf(self, node: Udf, child: Table) -> Table:
        if node.name not in self.udfs:
            raise ExecutionError(f"unknown udf {node.name!r}")
        function = self.udfs[node.name]
        input_positions = {
            a: child.column_position(a) for a in node.inputs
        }
        out_columns = [c for c in child.columns
                       if c not in node.inputs or c == node.output]
        out_positions = [child.column_position(c) for c in out_columns]
        output_index = out_columns.index(node.output)
        rows = []
        for row in child.rows:
            arguments = {a: row[p] for a, p in input_positions.items()}
            result = function(arguments)
            projected = [row[p] for p in out_positions]
            projected[output_index] = result
            rows.append(tuple(projected))
        return Table("µ", tuple(out_columns), rows)

    # ------------------------------------------------------------------
    # Encryption operators
    # ------------------------------------------------------------------
    def _require_keystore(self) -> KeyStore:
        if self.keystore is None:
            raise ExecutionError("this evaluator holds no keys")
        return self.keystore

    def _encrypt(self, node: Encrypt, child: Table) -> Table:
        keystore = self._require_keystore()
        result = child
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            result = result.map_column(
                attribute, lambda v, m=material: encrypt_value(m, v)
            )
        return result.rename("enc")

    def _decrypt(self, node: Decrypt, child: Table) -> Table:
        keystore = self._require_keystore()
        result = child
        for attribute in sorted(node.attributes):
            material = keystore.material_for_attribute(attribute)
            result = result.map_column(
                attribute, lambda v, m=material: decrypt_value(m, v)
            )
        return result.rename("dec")


def _join_key(value: object) -> object:
    """A hashable grouping key for plaintext or encrypted values."""
    if isinstance(value, EncryptedValue):
        return value.group_key()
    if isinstance(value, (list, set, dict)):
        raise ExecutionError(f"unhashable join key {type(value).__name__}")
    return value

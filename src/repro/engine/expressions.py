"""Predicate evaluation over plaintext and encrypted rows.

Selections and joins are evaluated uniformly over plaintext values and
:class:`~repro.engine.values.EncryptedValue` tokens: equality works on
deterministic (and OPE) tokens, order works on OPE tokens, and anything
else raises — the engine physically cannot do what the model says it must
not.  Constants in predicates are encrypted on the fly when the evaluator
holds the covering key, mirroring §6's dispatch where conditions are
"formulated on encrypted values" for subjects without plaintext
visibility.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Predicate,
)
from repro.crypto.keymanager import KeyStore
from repro.crypto.ope import OpeCipher
from repro.engine.codec import try_decrypt
from repro.engine.values import EncryptedValue
from repro.exceptions import ExecutionError

Row = tuple


def compare_plain(left: object, op: ComparisonOp, right: object) -> bool:
    """Comparison of two plaintext values."""
    if op is ComparisonOp.EQ:
        return left == right
    if op is ComparisonOp.NEQ:
        return left != right
    if op is ComparisonOp.LIKE:
        if not isinstance(left, str) or not isinstance(right, str):
            raise ExecutionError("LIKE requires string operands")
        pattern = "^" + re.escape(right).replace("%", ".*").replace("_", ".") \
            + "$"
        return re.match(pattern, left) is not None
    if op is ComparisonOp.IN:
        if not isinstance(right, (tuple, list, set, frozenset)):
            raise ExecutionError("IN requires a collection right operand")
        return left in right
    if left is None or right is None:
        return False
    try:
        if op is ComparisonOp.LT:
            return left < right  # type: ignore[operator]
        if op is ComparisonOp.LE:
            return left <= right  # type: ignore[operator]
        if op is ComparisonOp.GT:
            return left > right  # type: ignore[operator]
        if op is ComparisonOp.GE:
            return left >= right  # type: ignore[operator]
    except TypeError as error:
        raise ExecutionError(f"incomparable values: {error}") from None
    raise ExecutionError(f"unsupported operator {op}")


def compare_encrypted(left: EncryptedValue, op: ComparisonOp,
                      right: EncryptedValue) -> bool:
    """Comparison of two encrypted tokens, capability-checked."""
    if op is ComparisonOp.EQ:
        return left.equals(right)
    if op is ComparisonOp.NEQ:
        return not left.equals(right)
    if op is ComparisonOp.LT:
        return left.less_than(right)
    if op is ComparisonOp.GT:
        return right.less_than(left)
    if op is ComparisonOp.LE:
        return not right.less_than(left)
    if op is ComparisonOp.GE:
        return not left.less_than(right)
    raise ExecutionError(
        f"operator {op} is not supported on encrypted values"
    )


def compare_values(left: object, op: ComparisonOp, right: object) -> bool:
    """Dispatch between plaintext and encrypted comparison."""
    left_enc = isinstance(left, EncryptedValue)
    right_enc = isinstance(right, EncryptedValue)
    if left_enc and right_enc:
        return compare_encrypted(left, op, right)
    if left_enc or right_enc:
        raise ExecutionError(
            "comparison mixes plaintext and encrypted values; the plan is "
            "missing an encryption or decryption step"
        )
    return compare_plain(left, op, right)


class ConstantEncryptor:
    """Encrypts predicate constants to match an encrypted column.

    Holds a :class:`KeyStore`; when a predicate compares an encrypted
    column against a plaintext constant, the constant is encrypted under
    the column's key (deterministic for equality, OPE token for ranges).
    Without the covering key the comparison is impossible — exactly the
    model's intent.
    """

    def __init__(self, keystore: KeyStore | None) -> None:
        self._keystore = keystore
        self._cache: dict[tuple[str, ComparisonOp, object], object] = {}

    @property
    def keystore(self) -> KeyStore | None:
        """The key material available to this evaluator."""
        return self._keystore

    def match_constant(self, sample: EncryptedValue, op: ComparisonOp,
                       constant: object) -> EncryptedValue:
        """An :class:`EncryptedValue` comparable against ``sample``."""
        if isinstance(constant, EncryptedValue):
            return constant
        if self._keystore is None \
                or sample.key_name not in self._keystore.names():
            raise ExecutionError(
                f"cannot encrypt constant: no key {sample.key_name} held"
            )
        cache_key = (sample.key_name, op, _freeze(constant))
        if cache_key in self._cache:
            return self._cache[cache_key]  # type: ignore[return-value]
        material = self._keystore.material(sample.key_name)
        scheme = sample.scheme
        from repro.core.requirements import EncryptionScheme
        from repro.crypto.symmetric import DeterministicCipher

        if scheme is EncryptionScheme.DETERMINISTIC:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            token: object = DeterministicCipher(
                material.symmetric
            ).encrypt(constant)
        elif scheme is EncryptionScheme.OPE:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            token = OpeCipher(material.symmetric).encrypt(constant)
        else:
            raise ExecutionError(
                f"constants cannot be compared under {scheme}"
            )
        value = EncryptedValue(
            key_name=sample.key_name, scheme=scheme, token=token
        )
        self._cache[cache_key] = value
        return value


def build_row_predicate(predicate: Predicate, columns: tuple[str, ...],
                        encryptor: ConstantEncryptor,
                        local_keystore: KeyStore | None = None,
                        ) -> Callable[[Row], bool]:
    """Compile ``predicate`` into a row-level boolean function.

    ``encryptor`` encrypts constants (§6: the dispatching user holds the
    keys and formulates conditions on encrypted values, so it may wrap a
    richer store than the evaluating subject's own); ``local_keystore``
    is the evaluating subject's own material, the only thing the note-2
    decrypt-and-compare fallback may use.
    """
    positions = {c: i for i, c in enumerate(columns)}
    basics = list(predicate.basic_conditions())
    for basic in basics:
        for attribute in basic.attributes():
            if attribute not in positions:
                raise ExecutionError(
                    f"predicate references missing column {attribute!r}"
                )

    keystore = local_keystore if local_keystore is not None         else encryptor.keystore

    def evaluate(row: Row) -> bool:
        for basic in basics:
            if isinstance(basic, AttributeValuePredicate):
                value = row[positions[basic.attribute]]
                constant = basic.value
                if isinstance(value, EncryptedValue) \
                        and not isinstance(constant, EncryptedValue):
                    if basic.op is ComparisonOp.IN and isinstance(
                            constant, (tuple, list, set, frozenset)):
                        try:
                            tokens = {
                                encryptor.match_constant(
                                    value, ComparisonOp.EQ, item
                                ).token
                                for item in constant
                            }
                            if value.token not in tokens:
                                return False
                            continue
                        except ExecutionError:
                            # Note 2 (§5): the key holder evaluates on
                            # plaintext values instead.
                            if not compare_plain(
                                    try_decrypt(keystore, value),
                                    basic.op, constant):
                                return False
                            continue
                    try:
                        constant = encryptor.match_constant(
                            value, basic.op, constant
                        )
                        if not compare_values(value, basic.op, constant):
                            return False
                        continue
                    except ExecutionError:
                        # Note 2 (§5): the key holder evaluates on
                        # plaintext values instead.
                        if not compare_plain(try_decrypt(keystore, value),
                                             basic.op, basic.value):
                            return False
                        continue
                if not compare_values(value, basic.op, constant):
                    return False
            elif isinstance(basic, AttributeComparisonPredicate):
                left = row[positions[basic.left]]
                right = row[positions[basic.right]]
                try:
                    if not compare_values(left, basic.op, right):
                        return False
                except ExecutionError:
                    # Note 2: decrypt locally when the keys are held.
                    if not compare_plain(try_decrypt(keystore, left),
                                         basic.op,
                                         try_decrypt(keystore, right)):
                        return False
            else:  # pragma: no cover - conjunctions are flattened
                raise ExecutionError(f"unsupported predicate {basic!r}")
        return True

    return evaluate


def _freeze(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(repr, value)))
    return value

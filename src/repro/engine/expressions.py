"""Predicate evaluation over plaintext and encrypted rows.

Selections and joins are evaluated uniformly over plaintext values and
:class:`~repro.engine.values.EncryptedValue` tokens: equality works on
deterministic (and OPE) tokens, order works on OPE tokens, and anything
else raises — the engine physically cannot do what the model says it must
not.  Constants in predicates are encrypted on the fly when the evaluator
holds the covering key, mirroring §6's dispatch where conditions are
"formulated on encrypted values" for subjects without plaintext
visibility.

Predicates are *compiled once per operator*: :func:`compile_predicate`
specializes each basic condition into a closure with the row positions,
the comparison operator, and the plaintext/encrypted dispatch strategy
resolved up front, so the per-row work is a plain function call instead
of re-dispatching on predicate and operator type for every tuple.
"""

from __future__ import annotations

import operator as _operator
import re
from functools import lru_cache
from typing import Callable

from repro.core.predicates import (
    AttributeComparisonPredicate,
    AttributeValuePredicate,
    ComparisonOp,
    Predicate,
)
from repro.crypto.keymanager import KeyStore
from repro.engine.codec import try_decrypt
from repro.engine.values import EncryptedValue
from repro.exceptions import ExecutionError

Row = tuple

#: Order comparisons short-circuit to False on NULL operands (SQL
#: three-valued logic collapses UNKNOWN to False in a filter).
_ORDERED_OPS: dict[ComparisonOp, Callable[[object, object], bool]] = {
    ComparisonOp.LT: _operator.lt,
    ComparisonOp.LE: _operator.le,
    ComparisonOp.GT: _operator.gt,
    ComparisonOp.GE: _operator.ge,
}

_EXACT_OPS: dict[ComparisonOp, Callable[[object, object], bool]] = {
    ComparisonOp.EQ: _operator.eq,
    ComparisonOp.NEQ: _operator.ne,
}


def _compare_ordered(fn: Callable[[object, object], bool],
                     left: object, right: object) -> bool:
    """Ordered comparison with the NULL guard — the single source of
    truth for ``<``/``<=``/``>``/``>=`` over plaintext values."""
    if left is None or right is None:
        return False
    try:
        return fn(left, right)
    except TypeError as error:
        raise ExecutionError(f"incomparable values: {error}") from None


def compare_plain(left: object, op: ComparisonOp, right: object) -> bool:
    """Comparison of two plaintext values."""
    if op is ComparisonOp.EQ:
        return left == right
    if op is ComparisonOp.NEQ:
        return left != right
    if op is ComparisonOp.LIKE:
        if left is None or right is None:
            return False  # NULL LIKE p is UNKNOWN
        if not isinstance(left, str) or not isinstance(right, str):
            raise ExecutionError("LIKE requires string operands")
        pattern = "^" + re.escape(right).replace("%", ".*").replace("_", ".") \
            + "$"
        return re.match(pattern, left) is not None
    if op is ComparisonOp.IN:
        if not isinstance(right, (tuple, list, set, frozenset)):
            raise ExecutionError("IN requires a collection right operand")
        return left in right
    ordered = _ORDERED_OPS.get(op)
    if ordered is not None:
        return _compare_ordered(ordered, left, right)
    raise ExecutionError(f"unsupported operator {op}")


def compare_encrypted(left: EncryptedValue, op: ComparisonOp,
                      right: EncryptedValue) -> bool:
    """Comparison of two encrypted tokens, capability-checked."""
    if op is ComparisonOp.EQ:
        return left.equals(right)
    if op is ComparisonOp.NEQ:
        return not left.equals(right)
    if op is ComparisonOp.LT:
        return left.less_than(right)
    if op is ComparisonOp.GT:
        return right.less_than(left)
    if op is ComparisonOp.LE:
        return not right.less_than(left)
    if op is ComparisonOp.GE:
        return not left.less_than(right)
    raise ExecutionError(
        f"operator {op} is not supported on encrypted values"
    )


def compare_values(left: object, op: ComparisonOp, right: object) -> bool:
    """Dispatch between plaintext and encrypted comparison.

    Delegates to the memoized compiled comparator so the dispatch and
    NULL/mix semantics have a single source of truth.
    """
    return compile_comparison(op)(left, right)


@lru_cache(maxsize=None)
def compile_comparison(op: ComparisonOp,
                       ) -> Callable[[object, object], bool]:
    """Specialize :func:`compare_values` for one operator.

    The returned two-argument comparator still dispatches on the *values*
    (a column may hold encrypted tokens), but the operator resolution —
    the long ``if op is ...`` chain — happens once, at compile time.
    """
    exact = _EXACT_OPS.get(op)
    ordered = _ORDERED_OPS.get(op)

    def compare(left: object, right: object) -> bool:
        if isinstance(left, EncryptedValue):
            if isinstance(right, EncryptedValue):
                return compare_encrypted(left, op, right)
        elif not isinstance(right, EncryptedValue):
            if exact is not None:
                return exact(left, right)
            if ordered is not None:
                return _compare_ordered(ordered, left, right)
            return compare_plain(left, op, right)
        # NULL vs a ciphertext is not a representation mix (Encrypt
        # passes NULL through); mirror the plaintext NULL semantics so
        # encrypted and plaintext plans agree: only ≠ holds.
        if left is None or right is None:
            return op is ComparisonOp.NEQ
        raise ExecutionError(
            "comparison mixes plaintext and encrypted values; the plan is "
            "missing an encryption or decryption step"
        )

    return compare


class ConstantEncryptor:
    """Encrypts predicate constants to match an encrypted column.

    Holds a :class:`KeyStore`; when a predicate compares an encrypted
    column against a plaintext constant, the constant is encrypted under
    the column's key (deterministic for equality, OPE token for ranges).
    Without the covering key the comparison is impossible — exactly the
    model's intent.
    """

    def __init__(self, keystore: KeyStore | None) -> None:
        self._keystore = keystore
        self._cache: dict[tuple[str, ComparisonOp, object], object] = {}

    @property
    def keystore(self) -> KeyStore | None:
        """The key material available to this evaluator."""
        return self._keystore

    def match_constant(self, sample: EncryptedValue, op: ComparisonOp,
                       constant: object) -> EncryptedValue:
        """An :class:`EncryptedValue` comparable against ``sample``."""
        if isinstance(constant, EncryptedValue):
            return constant
        if self._keystore is None \
                or sample.key_name not in self._keystore.names():
            raise ExecutionError(
                f"cannot encrypt constant: no key {sample.key_name} held"
            )
        cache_key = (sample.key_name, op, _freeze(constant))
        if cache_key in self._cache:
            return self._cache[cache_key]  # type: ignore[return-value]
        material = self._keystore.material(sample.key_name)
        scheme = sample.scheme
        from repro.core.requirements import EncryptionScheme

        if scheme is EncryptionScheme.DETERMINISTIC:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            # Memoized per-material cipher: the subkeys derive once and
            # the deterministic memo is shared with the column kernels.
            token: object = material.deterministic_cipher().encrypt(constant)
        elif scheme is EncryptionScheme.OPE:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            token = material.ope_cipher().encrypt(constant)
        else:
            raise ExecutionError(
                f"constants cannot be compared under {scheme}"
            )
        value = EncryptedValue(
            key_name=sample.key_name, scheme=scheme, token=token
        )
        self._cache[cache_key] = value
        return value

    def match_tokens(self, sample: EncryptedValue,
                     constants: tuple[object, ...]) -> frozenset[object]:
        """The encrypted-token set of an IN collection, memoized.

        Bulk-encrypts the whole collection under the sample's key via
        the ciphers' ``encrypt_many`` (one dispatch), so the per-row IN
        check is a single set-membership test.
        """
        cache_key = (sample.key_name, sample.scheme, "in",
                     tuple(_freeze(c) for c in constants))
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        if self._keystore is None \
                or sample.key_name not in self._keystore.names():
            raise ExecutionError(
                f"cannot encrypt constant: no key {sample.key_name} held"
            )
        from repro.core.requirements import EncryptionScheme

        material = self._keystore.material(sample.key_name)
        if sample.scheme is EncryptionScheme.DETERMINISTIC:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            tokens = frozenset(
                material.deterministic_cipher().encrypt_many(constants)
            )
        elif sample.scheme is EncryptionScheme.OPE:
            if material.symmetric is None:
                raise ExecutionError(
                    f"key {material.name} lacks symmetric material"
                )
            tokens = frozenset(
                material.ope_cipher().encrypt_many(constants)
            )
        else:
            raise ExecutionError(
                f"constants cannot be compared under {sample.scheme}"
            )
        self._cache[cache_key] = tokens  # type: ignore[assignment]
        return tokens


def compile_predicate(predicate: Predicate, columns: tuple[str, ...],
                      encryptor: ConstantEncryptor,
                      local_keystore: KeyStore | None = None,
                      ) -> Callable[[Row], bool]:
    """Compile ``predicate`` into a row-level boolean function.

    Each basic condition becomes one specialized closure (positions,
    operator, and constant resolved once); the composite predicate is
    their conjunction.  ``encryptor`` encrypts constants (§6: the
    dispatching user holds the keys and formulates conditions on
    encrypted values, so it may wrap a richer store than the evaluating
    subject's own); ``local_keystore`` is the evaluating subject's own
    material, the only thing the note-2 decrypt-and-compare fallback may
    use.
    """
    positions = {c: i for i, c in enumerate(columns)}
    basics = list(predicate.basic_conditions())
    for basic in basics:
        for attribute in basic.attributes():
            if attribute not in positions:
                raise ExecutionError(
                    f"predicate references missing column {attribute!r}"
                )

    keystore = local_keystore if local_keystore is not None \
        else encryptor.keystore

    checks = [
        _compile_basic(basic, positions, encryptor, keystore)
        for basic in basics
    ]
    if len(checks) == 1:
        return checks[0]

    def evaluate(row: Row) -> bool:
        for check in checks:
            if not check(row):
                return False
        return True

    return evaluate


def _compile_basic(basic: Predicate, positions: dict[str, int],
                   encryptor: ConstantEncryptor,
                   keystore: KeyStore | None) -> Callable[[Row], bool]:
    """One basic condition → one specialized row closure."""
    if isinstance(basic, AttributeValuePredicate):
        return _compile_value_check(basic, positions[basic.attribute],
                                    encryptor, keystore)
    if isinstance(basic, AttributeComparisonPredicate):
        return _compile_attribute_check(basic, positions[basic.left],
                                        positions[basic.right], keystore)
    raise ExecutionError(f"unsupported predicate {basic!r}")


def _compile_value_check(basic: AttributeValuePredicate, position: int,
                         encryptor: ConstantEncryptor,
                         keystore: KeyStore | None) -> Callable[[Row], bool]:
    op = basic.op
    constant = basic.value
    comparator = compile_comparison(op)
    constant_encrypted = isinstance(constant, EncryptedValue)
    in_collection = (op is ComparisonOp.IN
                     and isinstance(constant,
                                    (tuple, list, set, frozenset)))

    def check(row: Row) -> bool:
        value = row[position]
        if isinstance(value, EncryptedValue) and not constant_encrypted:
            if in_collection:
                try:
                    tokens = encryptor.match_tokens(
                        value, tuple(constant)  # type: ignore[arg-type]
                    )
                    return value.token in tokens
                except ExecutionError:
                    # Note 2 (§5): the key holder evaluates on plaintext
                    # values instead.
                    return compare_plain(try_decrypt(keystore, value),
                                         op, constant)
            try:
                matched = encryptor.match_constant(value, op, constant)
                return comparator(value, matched)
            except ExecutionError:
                # Note 2 (§5): decrypt locally when the keys are held.
                return compare_plain(try_decrypt(keystore, value),
                                     op, constant)
        return comparator(value, constant)

    return check


def _compile_attribute_check(basic: AttributeComparisonPredicate,
                             left_position: int, right_position: int,
                             keystore: KeyStore | None,
                             ) -> Callable[[Row], bool]:
    op = basic.op
    comparator = compile_comparison(op)

    def check(row: Row) -> bool:
        left = row[left_position]
        right = row[right_position]
        try:
            return comparator(left, right)
        except ExecutionError:
            # Note 2: decrypt locally when the keys are held.
            return compare_plain(try_decrypt(keystore, left), op,
                                 try_decrypt(keystore, right))

    return check


def _freeze(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(repr, value)))
    return value

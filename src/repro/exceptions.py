"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or attributes clash across relations."""


class AuthorizationError(ReproError):
    """An authorization rule is malformed (e.g., overlapping P and E sets)."""


class ProfileError(ReproError):
    """A profile operation was applied to incompatible inputs."""


class PlanError(ReproError):
    """A query plan is structurally invalid."""


class OperationRequirementError(PlanError):
    """An operator references attributes that its operand cannot provide."""


class UnauthorizedError(ReproError):
    """A subject attempted to access a relation it is not authorized for."""

    def __init__(self, message: str, *, subject: str | None = None,
                 violations: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.subject = subject
        self.violations = violations


class NoCandidateError(ReproError):
    """No subject is a candidate for some operation of the plan."""

    def __init__(self, message: str, *, node: object | None = None) -> None:
        super().__init__(message)
        self.node = node


class KeyManagementError(ReproError):
    """Key establishment or distribution violated its constraints."""


class DispatchError(ReproError):
    """Sub-query dispatch failed (bad envelope, missing key, tampering)."""


class ProviderFaultError(DispatchError):
    """A provider failed while executing a fragment (base class).

    Carries the failing ``subject`` so retry/failover layers can feed
    health state and pick replacement assignees.
    """

    def __init__(self, message: str, *, subject: str | None = None) -> None:
        super().__init__(message)
        self.subject = subject


class TransientProviderError(ProviderFaultError):
    """A retryable provider failure (timeout, dropped message, overload).

    The only failure the runtime may retry: authorization violations and
    envelope tampering are never classified as transient.
    """


class ProviderDeadError(ProviderFaultError):
    """A provider is permanently gone; retrying it is pointless."""


class ProviderUnavailableError(ProviderFaultError):
    """A fragment lost its provider and no in-place takeover succeeded.

    Raised by the runtime after retries and fragment-level failover are
    exhausted; the service layer catches it to attempt a standby plan or
    a full re-plan over the remaining healthy subjects.  ``excluded``
    names every subject that was tried and failed.
    """

    def __init__(self, message: str, *, subject: str | None = None,
                 fragment_id: str | None = None,
                 excluded: frozenset[str] = frozenset(),
                 trace: object | None = None) -> None:
        super().__init__(message, subject=subject)
        self.fragment_id = fragment_id
        self.excluded = excluded
        self.trace = trace


class UnrecoverableAssignmentError(NoCandidateError):
    """No authorized candidate remains for some operation of the plan.

    The terminal failover outcome: raised only after warm standby plans
    and a full re-plan over the healthy subject pool have both failed to
    produce an assignment that passes ``verify_assignment``.
    """


class QueryAbortedError(ReproError):
    """A query stopped before completion (base for deadline/cancel).

    ``where`` names the cooperative checkpoint that observed the abort
    (see :mod:`repro.core.budget` for the checkpoint contract).
    ``trace`` carries the partial
    :class:`~repro.distributed.runtime.ExecutionTrace` of whatever ran
    before the abort when the query was already executing (``None``
    when it never reached the runtime), attached by the layer that
    owns the trace as the abort unwinds.
    """

    def __init__(self, message: str, *, where: str = "",
                 trace: object | None = None) -> None:
        super().__init__(message)
        self.where = where
        self.trace = trace


class DeadlineExceededError(QueryAbortedError):
    """A query's end-to-end deadline expired before it completed.

    Raised at the first cooperative checkpoint past the deadline —
    queue dequeue, planning, a fragment boundary, a retry iteration, a
    failover tier, or a parallel-map chunk boundary — never mid-chunk.
    """

    def __init__(self, message: str, *, where: str = "",
                 trace: object | None = None,
                 deadline_seconds: float | None = None,
                 elapsed_seconds: float | None = None) -> None:
        super().__init__(message, where=where, trace=trace)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class QueryCancelledError(QueryAbortedError):
    """The client cancelled the query; it unwound at a checkpoint."""

    def __init__(self, message: str, *, where: str = "",
                 trace: object | None = None,
                 reason: str | None = None) -> None:
        super().__init__(message, where=where, trace=trace)
        self.reason = reason


class CostCeilingExceededError(QueryAbortedError):
    """The §7-costed plan exceeds the query budget's cost ceiling.

    Raised after planning, before any key material is generated or a
    single fragment is dispatched: the assignment search already
    produced the exact cost, so an over-budget query is refused at the
    cheapest possible point.
    """

    def __init__(self, message: str, *, where: str = "planning",
                 cost_usd: float | None = None,
                 ceiling_usd: float | None = None) -> None:
        super().__init__(message, where=where)
        self.cost_usd = cost_usd
        self.ceiling_usd = ceiling_usd


class GatewayError(ReproError):
    """Base class for multi-tenant gateway failures."""


class AdmissionRejected(GatewayError):
    """A tenant's queue is full; the query was refused before planning.

    Carries the ``tenant`` and the configured ``queue_depth`` so callers
    can implement client-side backoff.  Rejection is explicit and
    load-shedding is lossless: a query is either admitted (and will
    produce an outcome or an error) or rejected with this exception —
    never silently dropped.
    """

    def __init__(self, message: str, *, tenant: str,
                 queue_depth: int) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.queue_depth = queue_depth


class QuotaExceeded(GatewayError):
    """A tenant is out of rate tokens or credit; rejected pre-planning.

    ``reason`` is ``"rate"`` (token bucket empty) or ``"credits"``
    (credit account exhausted).  ``spent_usd`` is the tenant's metered
    spend so far; ``retry_after_seconds`` is the token-bucket refill
    time for rate rejections (``None`` for credit exhaustion — credit
    comes back only via a deposit, not by waiting).
    """

    def __init__(self, message: str, *, tenant: str, reason: str,
                 spent_usd: float,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.spent_usd = spent_usd
        self.retry_after_seconds = retry_after_seconds


class SheddedError(GatewayError):
    """The gateway predicted the query would blow its budget and shed it.

    Raised at :meth:`~repro.gateway.Gateway.submit`, before the query
    is queued (and therefore before any planning): the admission
    predictor — per-SQL latency/cost EWMAs backed by the gateway's
    query-latency histograms — concluded the query could not finish
    inside its deadline (``reason="predicted_deadline"``) or under its
    cost ceiling (``reason="predicted_cost"``).  ``retry_after_seconds``
    estimates when the standing backlog will have drained enough for
    the prediction to clear (``None`` when waiting cannot help, e.g. a
    cost-ceiling shed).
    """

    def __init__(self, message: str, *, tenant: str, reason: str,
                 predicted_seconds: float | None = None,
                 remaining_seconds: float | None = None,
                 retry_after_seconds: float | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.predicted_seconds = predicted_seconds
        self.remaining_seconds = remaining_seconds
        self.retry_after_seconds = retry_after_seconds


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, *, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlAnalysisError(SqlError):
    """The SQL parsed but references unknown relations or attributes."""


class ExecutionError(ReproError):
    """The in-memory engine failed to evaluate a plan."""


class CryptoError(ReproError):
    """An encryption primitive was misused (wrong key, corrupt ciphertext)."""


class EstimationError(ReproError):
    """Cost or cardinality estimation failed for a plan node."""

"""Deterministic fault injection for chaos-testing the runtime.

A :class:`FaultInjector` sits between the runtime and a
:class:`~repro.distributed.runtime.SubjectNode`'s execution: before a
subject evaluates a fragment, the runtime calls
:meth:`FaultInjector.on_execute`, which either returns extra simulated
latency or raises one of the provider fault errors —
:class:`~repro.exceptions.TransientProviderError` for retryable faults,
:class:`~repro.exceptions.ProviderDeadError` for permanent provider
death.

Determinism is the point: every random draw comes from a *per-subject*
stream seeded from ``(seed, subject)``, so a given schedule replays
identically regardless of the interleaving of other subjects' fragments
(the concurrent scheduler may order them differently run to run).
Fragment-count triggers (``crash_on_call``, ``die_after_calls``) count
that subject's executions only.

Supported fault shapes (composable per subject):

* ``crash_on_call=N`` — the subject's Nth execution raises; transient
  by default, permanent death with ``crash_is_fatal=True``;
* ``transient_error_rate=p`` — each execution independently fails with
  probability ``p`` (retryable);
* ``latency_spike_seconds=s`` / ``latency_spike_rate=p`` — with
  probability ``p`` an execution takes ``s`` extra seconds;
* ``die_after_calls=N`` — the provider permanently dies after its Nth
  successful admission (the (N+1)-th raises);
* :meth:`FaultInjector.kill` — immediate permanent death, usable
  mid-run ("pull the plug now").
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.exceptions import ProviderDeadError, TransientProviderError


@dataclass(frozen=True)
class FaultSpec:
    """The fault schedule of one subject (all shapes composable)."""

    crash_on_call: int | None = None
    crash_is_fatal: bool = False
    transient_error_rate: float = 0.0
    latency_spike_seconds: float = 0.0
    latency_spike_rate: float = 0.0
    die_after_calls: int | None = None

    def __post_init__(self) -> None:
        for rate in (self.transient_error_rate, self.latency_spike_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate must be in [0, 1], got {rate}")


class FaultInjector:
    """Seedable, thread-safe source of injected provider faults."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        self._dead: set[str] = set()
        self._lock = threading.Lock()

    def set_fault(self, subject: str, spec: FaultSpec | None = None,
                  **kwargs) -> None:
        """Install ``subject``'s fault schedule (replacing any prior one)."""
        if spec is not None and kwargs:
            raise ValueError("pass a FaultSpec or keyword fields, not both")
        with self._lock:
            self._specs[subject] = spec or FaultSpec(**kwargs)

    def kill(self, subject: str) -> None:
        """Permanently kill ``subject`` effective immediately."""
        with self._lock:
            self._dead.add(subject)

    def revive(self, subject: str) -> None:
        """Undo :meth:`kill` / a triggered death (call counts persist)."""
        with self._lock:
            self._dead.discard(subject)

    def is_dead(self, subject: str) -> bool:
        with self._lock:
            return subject in self._dead

    def calls(self, subject: str) -> int:
        """Executions ``subject`` has attempted (faulted ones included)."""
        with self._lock:
            return self._calls.get(subject, 0)

    def on_execute(self, subject: str) -> float:
        """Gate one execution of ``subject``.

        Returns the extra latency (seconds) this execution suffers;
        raises :class:`TransientProviderError` or
        :class:`ProviderDeadError` when the schedule says so.
        """
        with self._lock:
            if subject in self._dead:
                raise ProviderDeadError(
                    f"provider {subject} is dead", subject=subject)
            count = self._calls.get(subject, 0) + 1
            self._calls[subject] = count
            spec = self._specs.get(subject)
            if spec is None:
                return 0.0
            if spec.die_after_calls is not None \
                    and count > spec.die_after_calls:
                self._dead.add(subject)
                raise ProviderDeadError(
                    f"provider {subject} died after "
                    f"{spec.die_after_calls} executions", subject=subject)
            if spec.crash_on_call == count:
                if spec.crash_is_fatal:
                    self._dead.add(subject)
                    raise ProviderDeadError(
                        f"provider {subject} crashed fatally on "
                        f"execution {count}", subject=subject)
                raise TransientProviderError(
                    f"provider {subject} crashed on execution {count}",
                    subject=subject)
            rng = self._rngs.get(subject)
            if rng is None:
                rng = random.Random(f"{self.seed}:{subject}")
                self._rngs[subject] = rng
            # Fixed draw order keeps subject streams replayable even
            # when only some shapes are configured.
            transient_draw = rng.random()
            spike_draw = rng.random()
            if spec.transient_error_rate \
                    and transient_draw < spec.transient_error_rate:
                raise TransientProviderError(
                    f"transient fault at provider {subject} "
                    f"(execution {count})", subject=subject)
            if spec.latency_spike_rate \
                    and spike_draw < spec.latency_spike_rate:
                return spec.latency_spike_seconds
            return 0.0

"""Distributed execution simulator: subjects, envelopes, enforcement.

Runs a dispatched query across simulated subjects with real signed and
encrypted sub-query envelopes, per-subject key stores, and runtime
re-checking of the paper's authorization conditions.
"""

from repro.distributed.messages import (
    SubQueryPayload,
    decode_payload,
    encode_payload,
    keystore_signature,
    open_envelope,
    seal_envelope,
)
from repro.distributed.runtime import (
    DistributedRuntime,
    ExecutionTrace,
    SubjectNode,
    build_runtime,
    generate_subject_keys,
)

__all__ = [
    "DistributedRuntime", "ExecutionTrace", "SubQueryPayload",
    "SubjectNode", "build_runtime", "decode_payload", "encode_payload",
    "generate_subject_keys", "keystore_signature", "open_envelope",
    "seal_envelope",
]

"""Distributed execution simulator: subjects, envelopes, enforcement.

Runs a dispatched query across simulated subjects with real signed and
encrypted sub-query envelopes, per-subject key stores, and runtime
re-checking of the paper's authorization conditions — plus the
resilience layer: per-subject health state and circuit breakers,
deterministic fault injection, transient-fault retries, and policy-aware
mid-query fragment failover.
"""

from repro.distributed.faults import FaultInjector, FaultSpec
from repro.distributed.health import (
    HealthRegistry,
    RetryPolicy,
    SubjectHealth,
)
from repro.distributed.messages import (
    SubQueryPayload,
    decode_payload,
    encode_payload,
    keystore_signature,
    open_envelope,
    seal_envelope,
)
from repro.distributed.runtime import (
    DistributedRuntime,
    ExecutionTrace,
    FailoverEvent,
    SubjectNode,
    build_runtime,
    generate_subject_keys,
)

__all__ = [
    "DistributedRuntime", "ExecutionTrace", "FailoverEvent",
    "FaultInjector", "FaultSpec", "HealthRegistry", "RetryPolicy",
    "SubQueryPayload", "SubjectHealth", "SubjectNode", "build_runtime",
    "decode_payload", "encode_payload", "generate_subject_keys",
    "keystore_signature", "open_envelope", "seal_envelope",
]

"""Per-provider health state and circuit breakers for the runtime.

Every fragment execution feeds a :class:`HealthRegistry`: successes
update a latency EWMA and reset the consecutive-error count, failures
increment it, and crossing ``failure_threshold`` trips the subject's
circuit breaker.  The breaker is the classic three-state machine:

``closed``
    Normal operation; every execution is admitted.
``open``
    The subject is out of rotation.  ``admit`` refuses execution until
    ``reset_timeout_seconds`` have elapsed since the trip, at which
    point the breaker moves to half-open.
``half_open``
    At most ``half_open_probes`` concurrent probe executions are
    admitted.  A probe success closes the breaker (full recovery); a
    probe failure re-opens it and restarts the timeout.

A subject can also be marked *dead* (a permanent provider loss, fed by
:class:`~repro.distributed.faults.FaultInjector` or repeated fatal
errors): a dead subject is never admitted again until ``revive``.

Time is injected: the registry only ever reads the ``clock`` callable
it was constructed with, so breaker transitions are unit-testable with
a fake clock instead of wall-clock sleeps.  All methods are
thread-safe — the concurrent schedule feeds the registry from many
worker threads at once.

:class:`RetryPolicy` lives here too: the bounded-exponential-backoff
parameters the runtime applies between transient-fault retries, with
*deterministic* jitter (hash-derived from the attempt and a caller
salt) so chaos runs are reproducible.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline parameters for transient fragment faults.

    ``backoff(attempt)`` grows exponentially from ``base`` by
    ``multiplier`` up to ``cap``, minus a deterministic jitter of at
    most ``jitter_fraction`` of the raw delay (derived by hashing the
    attempt number with the caller's salt — reproducible, yet distinct
    fragments desynchronize instead of retrying in lockstep).
    ``fragment_deadline_seconds`` bounds the whole retry loop of one
    fragment; ``None`` disables the deadline.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.02
    backoff_cap_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.25
    fragment_deadline_seconds: float | None = None

    def backoff(self, attempt: int, salt: str = "",
                remaining_seconds: float | None = None) -> float:
        """Delay before retry number ``attempt`` (1-based), in seconds.

        ``remaining_seconds`` clamps the delay to whatever is left of a
        deadline (fragment or end-to-end query budget), so a backoff
        sleep can never overshoot it — the runtime then re-checks the
        deadline after the (possibly truncated) sleep.
        """
        raw = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds
            * self.backoff_multiplier ** max(0, attempt - 1),
        )
        if self.jitter_fraction:
            digest = hashlib.sha256(f"{salt}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            raw *= 1.0 - self.jitter_fraction * unit
        if remaining_seconds is not None:
            raw = min(raw, max(0.0, remaining_seconds))
        return raw


@dataclass
class SubjectHealth:
    """Mutable health record of one provider subject."""

    subject: str
    state: str = CLOSED
    latency_ewma_seconds: float | None = None
    consecutive_errors: int = 0
    successes: int = 0
    failures: int = 0
    breaker_trips: int = 0
    opened_at: float = 0.0
    probes_in_flight: int = 0
    dead: bool = False

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.state,
            "dead": self.dead,
            "latency_ewma_seconds": self.latency_ewma_seconds,
            "consecutive_errors": self.consecutive_errors,
            "successes": self.successes,
            "failures": self.failures,
            "breaker_trips": self.breaker_trips,
        }


class HealthRegistry:
    """Thread-safe per-subject health state + circuit breakers."""

    def __init__(self, clock=time.monotonic, *, ewma_alpha: float = 0.2,
                 failure_threshold: int = 3,
                 reset_timeout_seconds: float = 0.5,
                 half_open_probes: int = 1) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], "
                             f"got {ewma_alpha}")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self._clock = clock
        self.ewma_alpha = ewma_alpha
        self.failure_threshold = failure_threshold
        self.reset_timeout_seconds = reset_timeout_seconds
        self.half_open_probes = half_open_probes
        self._subjects: dict[str, SubjectHealth] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def subject(self, name: str) -> SubjectHealth:
        """The (live, mutable) health record for ``name``."""
        with self._lock:
            return self._record(name)

    def _record(self, name: str) -> SubjectHealth:
        record = self._subjects.get(name)
        if record is None:
            record = SubjectHealth(subject=name)
            self._subjects[name] = record
        return record

    def state(self, name: str) -> str:
        return self.subject(name).state

    def is_dead(self, name: str) -> bool:
        return self.subject(name).dead

    def latency_hint(self, name: str) -> float:
        """EWMA latency for candidate ordering (0.0 when unobserved)."""
        ewma = self.subject(name).latency_ewma_seconds
        return 0.0 if ewma is None else ewma

    def available(self, name: str) -> bool:
        """Whether an execution *could* currently be admitted.

        Unlike :meth:`admit` this never mutates state: an open breaker
        past its reset timeout counts as available (a probe would be
        admitted), a dead subject never does.
        """
        with self._lock:
            record = self._record(name)
            if record.dead:
                return False
            if record.state == CLOSED:
                return True
            if record.state == OPEN:
                return (self._clock() - record.opened_at
                        >= self.reset_timeout_seconds)
            return record.probes_in_flight < self.half_open_probes

    def unavailable_subjects(self) -> frozenset[str]:
        """Subjects failover planning must route around right now."""
        with self._lock:
            names = list(self._subjects)
        return frozenset(n for n in names if not self.available(n))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Point-in-time copy of every record (``health_info()`` body)."""
        with self._lock:
            return {name: record.snapshot()
                    for name, record in sorted(self._subjects.items())}

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def admit(self, name: str) -> bool:
        """Whether one execution may proceed now; reserves probe slots.

        In ``half_open`` (including an ``open`` breaker whose timeout
        just elapsed) an admission reserves one of the probe slots; the
        subsequent :meth:`record_success` / :meth:`record_failure` (or
        :meth:`release_probe` on a non-verdict exit) releases it.
        """
        with self._lock:
            record = self._record(name)
            if record.dead:
                return False
            if record.state == OPEN:
                if (self._clock() - record.opened_at
                        < self.reset_timeout_seconds):
                    return False
                record.state = HALF_OPEN
                record.probes_in_flight = 0
            if record.state == HALF_OPEN:
                if record.probes_in_flight >= self.half_open_probes:
                    return False
                record.probes_in_flight += 1
            return True

    def record_success(self, name: str,
                       latency_seconds: float | None = None) -> None:
        """An execution finished cleanly; closes a half-open breaker."""
        with self._lock:
            record = self._record(name)
            record.successes += 1
            record.consecutive_errors = 0
            if latency_seconds is not None:
                if record.latency_ewma_seconds is None:
                    record.latency_ewma_seconds = latency_seconds
                else:
                    alpha = self.ewma_alpha
                    record.latency_ewma_seconds = (
                        alpha * latency_seconds
                        + (1.0 - alpha) * record.latency_ewma_seconds
                    )
            if record.probes_in_flight > 0:
                record.probes_in_flight -= 1
            if record.state != CLOSED:
                record.state = CLOSED
                record.probes_in_flight = 0

    def record_failure(self, name: str, *, fatal: bool = False) -> bool:
        """An execution failed; returns True when the breaker tripped.

        A failure in ``half_open`` re-opens immediately (the probe
        disproved recovery); in ``closed``, reaching
        ``failure_threshold`` consecutive errors — or any ``fatal``
        failure — trips the breaker open.
        """
        with self._lock:
            record = self._record(name)
            record.failures += 1
            record.consecutive_errors += 1
            if record.probes_in_flight > 0:
                record.probes_in_flight -= 1
            if record.state == OPEN:
                return False
            tripped = (
                record.state == HALF_OPEN
                or fatal
                or record.consecutive_errors >= self.failure_threshold
            )
            if tripped:
                record.state = OPEN
                record.opened_at = self._clock()
                record.probes_in_flight = 0
                record.breaker_trips += 1
            return tripped

    def release_probe(self, name: str) -> None:
        """Release a probe slot reserved by :meth:`admit` without a verdict.

        For executions that exit through an exception that says nothing
        about provider health (e.g. an authorization violation).
        """
        with self._lock:
            record = self._record(name)
            if record.probes_in_flight > 0:
                record.probes_in_flight -= 1

    def mark_dead(self, name: str) -> bool:
        """Permanent provider loss; returns True on the dead transition."""
        with self._lock:
            record = self._record(name)
            if record.dead:
                return False
            record.dead = True
            if record.state != OPEN:
                record.state = OPEN
                record.opened_at = self._clock()
                record.breaker_trips += 1
            record.probes_in_flight = 0
            return True

    def revive(self, name: str) -> None:
        """Bring a dead subject back (fresh closed breaker)."""
        with self._lock:
            record = self._record(name)
            record.dead = False
            record.state = CLOSED
            record.consecutive_errors = 0
            record.probes_in_flight = 0

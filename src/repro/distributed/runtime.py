"""Simulated multi-provider query execution with runtime enforcement.

Each subject of the scenario becomes a :class:`SubjectNode` with its own
RSA keypair, its own stored tables (for data authorities), and — crucially
— only the query keys its envelope delivered.  The
:class:`DistributedRuntime` drives a dispatch plan the way §6 describes:
the user seals one envelope per fragment; each subject opens its envelope,
verifies the user's signature, pulls its input fragments from the subjects
below, and evaluates its own operators locally.

Two enforcement layers make violations fail loudly rather than silently:

* **model-level** — before producing a relation, a subject re-checks
  Definition 4.1 against the relation's profile;
* **value-level** — on receiving a table, a subject verifies it can
  legitimately see every column in the representation it arrives in
  (plaintext columns require plaintext authorization, encrypted columns
  at least encrypted authorization).

Together they turn the paper's theorems into executable assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.authorization import Policy, Subject, SubjectView
from repro.core.dispatch import DispatchPlan, SubQuery
from repro.core.extension import ExtendedPlan
from repro.core.keys import KeyAssignment
from repro.core.lineage import Lineage, augment_view, derived_lineage
from repro.core.operators import BaseRelationNode, PlanNode
from repro.core.visibility import check_relation
from repro.crypto.keymanager import DistributedKeys, KeyStore
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.distributed.messages import (
    SubQueryPayload,
    open_envelope,
    seal_envelope,
)
from repro.engine.executor import Executor, UdfCallable
from repro.engine.table import Table
from repro.engine.values import EncryptedAggregate, EncryptedValue
from repro.exceptions import DispatchError, UnauthorizedError


@dataclass
class SubjectNode:
    """One participant: identity, RSA keys, stored data, local state."""

    subject: Subject
    rsa_public: RsaPublicKey
    rsa_private: RsaPrivateKey
    tables: dict[str, Table] = field(default_factory=dict)
    udfs: dict[str, UdfCallable] = field(default_factory=dict)

    @classmethod
    def create(cls, subject: Subject,
               tables: Mapping[str, Table] | None = None,
               udfs: Mapping[str, UdfCallable] | None = None,
               rsa_bits: int = 1024) -> "SubjectNode":
        """Create a node with a fresh RSA keypair."""
        public, private = generate_keypair(rsa_bits)
        return cls(
            subject=subject,
            rsa_public=public,
            rsa_private=private,
            tables=dict(tables or {}),
            udfs=dict(udfs or {}),
        )

    @property
    def name(self) -> str:
        return self.subject.name


@dataclass
class ExecutionTrace:
    """Observability: what moved where during a distributed run."""

    messages: int = 0
    envelope_bytes: int = 0
    rows_transferred: int = 0
    fragments_run: list[tuple[str, str]] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)


class DistributedRuntime:
    """Executes a dispatch plan across simulated subjects."""

    def __init__(self, policy: Policy, nodes: Mapping[str, SubjectNode],
                 user: str, enforce: bool = True) -> None:
        self.policy = policy
        self.nodes = dict(nodes)
        self.user = user
        self.enforce = enforce
        if user not in self.nodes:
            raise DispatchError(f"no runtime node for user {user!r}")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, dispatch_plan: DispatchPlan, extended: ExtendedPlan,
            keys: KeyAssignment, distributed_keys: DistributedKeys,
            ) -> tuple[Table, ExecutionTrace]:
        """Seal envelopes, execute every fragment, return the result.

        The user signs each fragment's payload and encrypts it for the
        fragment's subject; fragments then execute demand-driven from the
        root down, exactly like the nested ``req`` calls of Figure 8.
        """
        trace = ExecutionTrace()
        user_node = self.nodes[self.user]
        profiles = extended.plan.profiles()
        self._lineage = derived_lineage(extended.plan)

        envelopes: dict[str, bytes] = {}
        for fragment in dispatch_plan.fragments.values():
            subject_node = self._node_for(fragment.subject)
            payload = SubQueryPayload(
                fragment_id=fragment.fragment_id,
                query_text=fragment.text,
                keystore=distributed_keys.store_for(fragment.subject),
            )
            blob = seal_envelope(
                payload, user_node.rsa_private, subject_node.rsa_public
            )
            envelopes[fragment.fragment_id] = blob
            trace.messages += 1
            trace.envelope_bytes += len(blob)

        self._constant_store = distributed_keys.master
        result = self._run_fragment(
            dispatch_plan, dispatch_plan.root_fragment_id, envelopes,
            profiles, trace,
        )
        # Final delivery to the user: the user must be entitled to the
        # root relation, and to every column representation it contains.
        if self.enforce:
            root_view = augment_view(self.policy.view(self.user),
                                     self._lineage)
            self._check_profile(
                root_view, profiles[extended.plan.root],
                "query result", trace,
            )
            self._check_values(root_view, result, trace)
        trace.rows_transferred += len(result)
        return result, trace

    # ------------------------------------------------------------------
    # Fragment execution
    # ------------------------------------------------------------------
    def _run_fragment(self, dispatch_plan: DispatchPlan, fragment_id: str,
                      envelopes: dict[str, bytes],
                      profiles: Mapping[PlanNode, object],
                      trace: ExecutionTrace) -> Table:
        fragment = dispatch_plan.fragment(fragment_id)
        node = self._node_for(fragment.subject)
        payload = open_envelope(
            envelopes[fragment_id], node.rsa_private,
            self.nodes[self.user].rsa_public,
        )
        trace.fragments_run.append((fragment_id, fragment.subject))
        view = augment_view(self.policy.view(fragment.subject),
                            self._lineage)

        # Pull the inputs produced by other subjects.
        inputs: dict[int, Table] = {}
        for boundary_id, child_fragment_id in fragment.requests.items():
            table = self._run_fragment(
                dispatch_plan, child_fragment_id, envelopes, profiles, trace
            )
            trace.messages += 1
            trace.rows_transferred += len(table)
            if self.enforce and not fragment.subject.startswith("authority:"):
                self._check_values(view, table, trace)
            inputs[boundary_id] = table

        executor = Executor(
            node.tables, keystore=payload.keystore, udfs=node.udfs,
            constant_keystore=getattr(self, "_constant_store", None),
        )
        result = self._evaluate(fragment, fragment.root, executor, inputs,
                                profiles, view, trace)
        return result

    def _evaluate(self, fragment: SubQuery, node: PlanNode,
                  executor: Executor, inputs: dict[int, Table],
                  profiles: Mapping[PlanNode, object],
                  view: SubjectView, trace: ExecutionTrace) -> Table:
        if id(node) in inputs:
            return inputs[id(node)]
        children = [
            self._evaluate(fragment, child, executor, inputs, profiles,
                           view, trace)
            for child in node.children
        ]
        result = executor.execute_node(node, children)
        if self.enforce and not isinstance(node, BaseRelationNode) \
                and not fragment.subject.startswith("authority:"):
            self._check_profile(
                view, profiles[node], f"relation at {node.label()}", trace
            )
        return result

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def _node_for(self, subject: str) -> SubjectNode:
        if subject not in self.nodes:
            raise DispatchError(f"no runtime node for subject {subject!r}")
        return self.nodes[subject]

    def _check_profile(self, view: SubjectView, profile, context: str,
                       trace: ExecutionTrace) -> None:
        check = check_relation(view, profile)
        if not check.authorized:
            trace.violations.extend(check.violations)
            raise UnauthorizedError(
                f"{view.subject} is not authorized for {context}: "
                + "; ".join(check.violations),
                subject=view.subject,
                violations=check.violations,
            )

    def _check_values(self, view: SubjectView, table: Table,
                      trace: ExecutionTrace) -> None:
        """Value-level guard: representations must match authorizations."""
        for column in table.columns:
            values = table.column_values(column)
            sample = next((v for v in values if v is not None), None)
            if sample is None:
                continue
            if isinstance(sample, (EncryptedValue, EncryptedAggregate)):
                if not view.can_view_encrypted(column):
                    message = (f"{view.subject} received encrypted column "
                               f"{column} without any authorization")
                    trace.violations.append(message)
                    raise UnauthorizedError(message, subject=view.subject)
            else:
                if not view.can_view_plaintext(column):
                    message = (f"{view.subject} received plaintext column "
                               f"{column} without plaintext authorization")
                    trace.violations.append(message)
                    raise UnauthorizedError(message, subject=view.subject)


def build_runtime(policy: Policy, subjects: list[Subject],
                  authority_tables: Mapping[str, Mapping[str, Table]],
                  user: str,
                  udfs: Mapping[str, UdfCallable] | None = None,
                  rsa_bits: int = 512) -> DistributedRuntime:
    """Convenience constructor: one node per subject, tables at owners.

    ``authority_tables`` maps authority name → {relation name → table}.
    """
    nodes: dict[str, SubjectNode] = {}
    for subject in subjects:
        tables = authority_tables.get(subject.name, {})
        nodes[subject.name] = SubjectNode.create(
            subject, tables=tables, udfs=udfs, rsa_bits=rsa_bits
        )
    return DistributedRuntime(policy, nodes, user)
